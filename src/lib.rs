//! Facade crate for the `mfod` workspace: re-exports the batch pipeline
//! ([`mfod`]) and the online scoring subsystem ([`mfod_stream`]) so the
//! repository-level examples and integration tests have a single anchor.
//!
//! The actual library code lives in `crates/` — see `crates/README.md` for
//! the dependency diagram.

pub use mfod;
pub use mfod_stream;
