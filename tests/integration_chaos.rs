//! Seeded chaos soak for the supervised serving runtime.
//!
//! Each schedule arms a deterministic `mfod-faultline` plan covering every
//! subsystem (persist reads, torn writes, mmap failures, CRC corruption,
//! registry sweeps, stream flushes/delays/poison, pool panics/stragglers)
//! and then drives a full serving session against it. Acceptance, per
//! schedule:
//!
//! * **zero panics** escape — every injected failure surfaces as a typed
//!   error (the test completing is the proof);
//! * the **active model is never unseated** by torn writes or failing
//!   sweeps — generation and identity are stable while faults fly;
//! * once the capped stream/pool fault rules are exhausted, a clean
//!   session scores **bit-identically** to a no-faults reference (a
//!   straggler-only fault that stays armed must not change results);
//! * after the plan is disarmed the registry **heals**: a valid new
//!   generation installs and the watcher returns to its steady state.
//!
//! Runs 3 schedules by default; `MFOD_CHAOS_FULL=1` runs 12. With
//! `MFOD_CHAOS_JSON=<path>` a JSON report artifact (per-schedule error
//! counts plus the faultline hit/fire report) is written at the end.

use mfod::fda::RawSample;
use mfod::persist::{ModelRegistry, WatchConfig};
use mfod::FittedPipeline;
use mfod_faultline::{points, FaultPlan, FaultRule};
use mfod_fixtures::{sine_pipeline, FixtureConfig};
use mfod_stream::{
    BatchConfig, OnlineScorer, ScoringDeadline, StreamConfig, StreamError, WindowConfig,
};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn fixture() -> &'static (Arc<FittedPipeline>, Vec<RawSample>, Vec<f64>) {
    static FIXTURE: OnceLock<(Arc<FittedPipeline>, Vec<RawSample>, Vec<f64>)> = OnceLock::new();
    FIXTURE.get_or_init(|| sine_pipeline(&FixtureConfig::default()))
}

/// A second, differently-configured model for the post-fault upgrade.
/// `fixture()` saved twice produces byte-identical snapshots, which the
/// registry's content hash would (correctly) treat as "unchanged" — the
/// heal phase needs a snapshot with genuinely new content to install.
fn upgrade_fixture() -> &'static Arc<FittedPipeline> {
    static UPGRADE: OnceLock<Arc<FittedPipeline>> = OnceLock::new();
    UPGRADE.get_or_init(|| {
        let (fitted, _, _) = sine_pipeline(&FixtureConfig {
            n_samples: 30,
            m: 20,
            n_trees: 15,
            grid_len: 12,
        });
        fitted
    })
}

fn offline_scores() -> &'static Vec<f64> {
    static SCORES: OnceLock<Vec<f64>> = OnceLock::new();
    SCORES.get_or_init(|| {
        let (fitted, windows, _) = fixture();
        fitted.score(windows).unwrap()
    })
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfod-it-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pushes every observation of window `i` into the scorer, splitting the
/// outcomes into released verdicts and typed errors. Injected ingest
/// rejections shift the window alignment, so a flush (and with it any
/// flush-stage fault) can surface on *any* push — the driver must accept
/// errors anywhere, which is exactly the recovery contract.
fn push_window(
    scorer: &mut OnlineScorer,
    i: usize,
) -> (Vec<mfod_stream::Verdict>, Vec<StreamError>) {
    let (_, windows, ts) = fixture();
    let w = &windows[i % windows.len()];
    let mut verdicts = Vec::new();
    let mut errors = Vec::new();
    for j in 0..ts.len() {
        match scorer.push(&[w.channels[0][j], w.channels[1][j]]) {
            Ok(v) => verdicts.extend(v),
            Err(e) => errors.push(e),
        }
    }
    (verdicts, errors)
}

struct ScheduleOutcome {
    seed: u64,
    typed_errors: usize,
    quarantined_batches: usize,
    fault_report: mfod_faultline::FaultReport,
}

/// One full chaos schedule: arm → torn upgrade → dirty session → clean
/// session (bit parity) → disarm → heal.
fn run_schedule(seed: u64) -> ScheduleOutcome {
    let (fitted, windows, ts) = fixture();
    let dir = tmpdir(&format!("s{seed}"));

    // Generation 1 installs cleanly before any fault is armed.
    fitted.save(&dir.join("model-001.mfod")).unwrap();
    let registry: Arc<ModelRegistry<FittedPipeline>> = Arc::new(ModelRegistry::new());
    registry.load_dir(&dir).unwrap();
    let gen0 = registry.generation();
    let active0 = registry.active().unwrap();
    let mut watch_config = WatchConfig::new(Duration::from_millis(2));
    watch_config.jitter_seed = seed;
    let handle = registry.watch_dir_with(&dir, watch_config);

    // Arm the full-spectrum plan. Stream/pool rules are capped so the
    // dirty session can exhaust them; persist rules are probabilistic but
    // bounded; the straggler stays armed through the clean session.
    mfod_faultline::install(
        FaultPlan::new(seed)
            .rule(
                points::PERSIST_READ,
                FaultRule::with_probability(0.3).times(4),
            )
            .rule(
                points::PERSIST_MMAP,
                FaultRule::with_probability(0.5).times(4),
            )
            .rule(
                points::PERSIST_CRC,
                FaultRule::with_probability(0.3).times(4),
            )
            .rule(
                points::REGISTRY_SWEEP,
                FaultRule::with_probability(0.3).times(4),
            )
            .rule(points::PERSIST_TORN_WRITE, FaultRule::once())
            .rule(points::STREAM_POISON, FaultRule::always().times(2))
            .rule(
                points::STREAM_DELAY,
                FaultRule::once().delay(Duration::from_millis(60)),
            )
            .rule(points::STREAM_FLUSH, FaultRule::always().times(2))
            .rule(points::POOL_PANIC, FaultRule::once())
            .rule(
                points::POOL_STRAGGLE,
                FaultRule::with_probability(0.1).delay(Duration::from_millis(1)),
            ),
    );

    // A model upgrade lands on the torn-write fault: the save fails with
    // a typed error and leaves a truncated file for the watcher to chew
    // on. It must never unseat the active generation.
    let torn = fitted.save(&dir.join("model-002.mfod"));
    assert!(torn.is_err(), "torn write must surface as an error");
    assert!(
        dir.join("model-002.mfod").exists(),
        "the torn file must be on disk for sweeps to reject"
    );

    // Dirty session: deadline-bounded scoring against the active model
    // while every fault fires. Everything lands as a typed error.
    let mut scorer = OnlineScorer::new(
        Arc::clone(&active0),
        StreamConfig {
            window: WindowConfig::tumbling(ts.clone(), 2),
            batch: BatchConfig {
                batch_size: 4,
                deadline: Some(ScoringDeadline::new(Duration::from_millis(10))),
                max_flush_retries: 1,
                ..Default::default()
            },
        },
    )
    .unwrap();
    let mut typed_errors = Vec::new();
    for pass in 0..2 {
        for i in 0..windows.len() {
            let (_, errors) = push_window(&mut scorer, pass * windows.len() + i);
            typed_errors.extend(errors);
        }
    }
    // Settle: retry the final flush a few times (injected faults may hit
    // it), then drain whatever is left. Never a hang, never a panic.
    for _ in 0..5 {
        match scorer.finish() {
            Ok(_) => break,
            Err(e) => typed_errors.push(e),
        }
    }
    let _ = scorer.take_pending();
    let quarantined_batches = scorer.drain_quarantine().len();

    // The injected menu was actually served.
    assert!(
        typed_errors
            .iter()
            .any(|e| matches!(e, StreamError::DeadlineExceeded { .. })),
        "seed {seed}: expected a deadline miss, got {typed_errors:?}"
    );
    assert!(
        typed_errors
            .iter()
            .any(|e| matches!(e, StreamError::Ingest(_))),
        "seed {seed}: expected a poison rejection, got {typed_errors:?}"
    );
    assert!(
        typed_errors
            .iter()
            .any(|e| e.to_string().contains("injected fault: stream.flush")),
        "seed {seed}: expected an injected flush failure, got {typed_errors:?}"
    );
    assert!(
        quarantined_batches >= 1,
        "seed {seed}: repeated flush failures must quarantine"
    );

    // Wait for the capped stream/pool faults to exhaust (the deadline
    // helper thread may still be consuming its scheduled fire).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = mfod_faultline::report().unwrap();
        if report.fires(points::STREAM_DELAY) == 1
            && report.fires(points::STREAM_FLUSH) == 2
            && report.fires(points::STREAM_POISON) == 2
            && report.fires(points::POOL_PANIC) == 1
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: capped faults never exhausted: {}",
            report.to_json()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The active model was never unseated while faults were flying.
    assert_eq!(registry.generation(), gen0, "seed {seed}");
    assert!(
        Arc::ptr_eq(&registry.active().unwrap(), &active0),
        "seed {seed}: active generation must be identity-stable under faults"
    );

    // Clean session: with only the straggler left armed, streaming must
    // be bit-identical to the no-faults offline reference.
    let mut clean = OnlineScorer::new(
        Arc::clone(&active0),
        StreamConfig {
            window: WindowConfig::tumbling(ts.clone(), 2),
            batch: BatchConfig {
                batch_size: 4,
                ..Default::default()
            },
        },
    )
    .unwrap();
    let mut verdicts = Vec::new();
    for i in 0..windows.len() {
        let (v, errors) = push_window(&mut clean, i);
        assert!(errors.is_empty(), "seed {seed}: clean session: {errors:?}");
        verdicts.extend(v);
    }
    verdicts.extend(clean.finish().unwrap());
    let reference = offline_scores();
    assert_eq!(verdicts.len(), reference.len(), "seed {seed}");
    for (v, r) in verdicts.iter().zip(reference) {
        assert_eq!(
            v.score.to_bits(),
            r.to_bits(),
            "seed {seed}: fault-free session drifted from the reference at seq {}",
            v.seq
        );
    }

    // Disarm and heal: a valid new generation installs and the watcher
    // settles back to its steady state.
    let fault_report = mfod_faultline::disarm().unwrap();
    upgrade_fixture().save(&dir.join("model-003.mfod")).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = handle.health();
        if registry.generation() > gen0 && health.healthy && health.backoff_level == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: registry never healed (gen {} vs {gen0}, health {health:?})",
            registry.generation()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let health = handle.health();
    if fault_report.fires(points::REGISTRY_SWEEP) > 0 {
        assert!(
            health.recoveries >= 1,
            "seed {seed}: failing sweeps must be followed by a recovery"
        );
        assert!(
            health.last_error.is_some(),
            "seed {seed}: the last sweep error is retained for post-mortems"
        );
    }
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();

    ScheduleOutcome {
        seed,
        typed_errors: typed_errors.len(),
        quarantined_batches,
        fault_report,
    }
}

#[test]
fn chaos_soak_serving_runtime_survives_seeded_fault_schedules() {
    let _guard = mfod_faultline::serial_guard();
    let full = std::env::var("MFOD_CHAOS_FULL").is_ok_and(|v| v == "1");
    let schedules: u64 = if full { 12 } else { 3 };
    let mut outcomes = Vec::new();
    for i in 0..schedules {
        outcomes.push(run_schedule(1000 + 97 * i));
    }
    if let Ok(path) = std::env::var("MFOD_CHAOS_JSON") {
        let per_schedule: Vec<String> = outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"seed\":{},\"typed_errors\":{},\"quarantined_batches\":{},\"faults\":{}}}",
                    o.seed,
                    o.typed_errors,
                    o.quarantined_batches,
                    o.fault_report.to_json()
                )
            })
            .collect();
        let json = format!(
            "{{\"schedules\":{},\"full\":{},\"results\":[{}]}}\n",
            schedules,
            full,
            per_schedule.join(",")
        );
        std::fs::write(&path, json).unwrap();
    }
}
