//! Cross-crate tests over the outlier-taxonomy generators: every outlier
//! class must be detectable by at least one pipeline configuration, and the
//! mapping ablation must show the expected specializations.

use mfod::prelude::*;
use std::sync::Arc;

fn cfg(m: usize) -> PipelineConfig {
    PipelineConfig {
        selector: BasisSelector {
            sizes: vec![12],
            lambdas: vec![1e-2],
            ..Default::default()
        },
        grid_len: m,
        ..Default::default()
    }
}

fn resub_auc(mapping: Arc<dyn MappingFunction>, data: &LabeledDataSet, m: usize) -> f64 {
    let p = GeomOutlierPipeline::new(cfg(m), mapping, Arc::new(IsolationForest::default()));
    let fitted = p.fit(data.samples()).unwrap();
    let scores = fitted.score(data.samples()).unwrap();
    auc(&scores, data.labels()).unwrap()
}

#[test]
fn every_taxonomy_class_is_detectable() {
    let m = 50;
    for ty in OutlierType::ALL {
        let data = TaxonomyConfig { m, noise_std: 0.03 }
            .generate(ty, 60, 12, 21)
            .unwrap();
        let data = if ty.dim() == 1 {
            data.augment_with(0, |y| y * y).unwrap()
        } else {
            data
        };
        // best of two complementary mappings must catch every class
        let a_curv = resub_auc(Arc::new(Curvature), &data, m);
        let a_speed = resub_auc(Arc::new(Speed), &data, m);
        let best = a_curv.max(a_speed);
        assert!(
            best > 0.8,
            "{}: best mapping AUC {best} (curv {a_curv}, speed {a_speed})",
            ty.name()
        );
    }
}

#[test]
fn correlation_outliers_need_the_path_view() {
    // Correlation-mixed outliers are the motivating case: a single-channel
    // (component) mapping must do clearly worse than the curvature mapping.
    let m = 50;
    let data = TaxonomyConfig { m, noise_std: 0.02 }
        .generate(OutlierType::CorrelationMixed, 60, 12, 23)
        .unwrap();
    let a_curv = resub_auc(Arc::new(Curvature), &data, m);
    let a_comp = resub_auc(Arc::new(ComponentMapping::value(0)), &data, m);
    assert!(
        a_curv > a_comp + 0.1,
        "curvature {a_curv} must clearly beat channel-0-only {a_comp}"
    );
}

#[test]
fn speed_mapping_sees_amplitude_outliers() {
    let m = 50;
    let data = TaxonomyConfig { m, noise_std: 0.03 }
        .generate(OutlierType::AmplitudePersistent, 60, 12, 25)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap();
    let a_speed = resub_auc(Arc::new(Speed), &data, m);
    assert!(a_speed > 0.9, "speed on amplitude outliers: {a_speed}");
}

#[test]
fn ecg_modes_cover_the_taxonomy() {
    // each single-mode ECG dataset must be separable by the pipeline or a
    // depth baseline — no degenerate mode
    use mfod::datasets::AbnormalMode;
    for mode in AbnormalMode::ALL {
        let data = EcgSimulator::new(EcgConfig {
            m: 50,
            modes: vec![mode],
            ..Default::default()
        })
        .unwrap()
        .generate(60, 15, 27)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap();
        let a_curv = resub_auc(Arc::new(Curvature), &data, 50);
        let g = DepthBaseline::gridded(&data).unwrap();
        let a_dir = auc(&DirOut::new().score(&g).unwrap(), data.labels()).unwrap();
        let best = a_curv.max(a_dir);
        assert!(best > 0.6, "{}: curv {a_curv}, dirout {a_dir}", mode.name());
    }
}

#[test]
fn csv_roundtrip_preserves_detectability() {
    let m = 40;
    let data = TaxonomyConfig { m, noise_std: 0.03 }
        .generate(OutlierType::ShapePersistent, 40, 8, 29)
        .unwrap()
        .augment_with(0, |y| y * y)
        .unwrap();
    let dir = std::env::temp_dir().join("mfod_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("taxonomy.csv");
    data.save_csv(&path).unwrap();
    let loaded = LabeledDataSet::load_csv(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let a_orig = resub_auc(Arc::new(Curvature), &data, m);
    let a_load = resub_auc(Arc::new(Curvature), &loaded, m);
    assert!((a_orig - a_load).abs() < 1e-9, "{a_orig} vs {a_load}");
}
