//! Integration tests of the depth baselines under the train/test protocol,
//! including the paper's qualitative claims about what each method can and
//! cannot see (Sec. 1.2).

use mfod::prelude::*;
use std::sync::Arc;

#[test]
fn dirout_catches_magnitude_but_funta_does_not() {
    // FUNTA only reacts to crossing-angle (shape) information; a pure
    // magnitude outlier that exits the bundle entirely is invisible to it
    // (Sec. 1.2: FUNTA "is only focused on shape persistent outliers").
    let data = TaxonomyConfig {
        m: 40,
        noise_std: 0.02,
    }
    .generate(OutlierType::AmplitudePersistent, 40, 8, 3)
    .unwrap();
    let (train, test) = SplitConfig {
        train_size: 24,
        contamination: 0.08,
    }
    .split_datasets(&data, 1)
    .unwrap();
    let dirout = DepthBaseline::new(Arc::new(DirOut::new()));
    let funta = DepthBaseline::new(Arc::new(Funta::new()));
    let auc_dirout = dirout.auc(&train, &test).unwrap();
    let auc_funta = funta.auc(&train, &test).unwrap();
    assert!(
        auc_dirout > 0.9,
        "Dir.out on amplitude outliers: {auc_dirout}"
    );
    assert!(
        auc_dirout > auc_funta,
        "Dir.out {auc_dirout} should beat FUNTA {auc_funta} on magnitude outliers"
    );
}

#[test]
fn funta_sees_shape_outliers() {
    let data = TaxonomyConfig {
        m: 40,
        noise_std: 0.02,
    }
    .generate(OutlierType::ShapePersistent, 40, 8, 5)
    .unwrap();
    let (train, test) = SplitConfig {
        train_size: 24,
        contamination: 0.08,
    }
    .split_datasets(&data, 2)
    .unwrap();
    let funta = DepthBaseline::new(Arc::new(Funta::new()));
    let auc_funta = funta.auc(&train, &test).unwrap();
    assert!(auc_funta > 0.85, "FUNTA on shape outliers: {auc_funta}");
}

#[test]
fn curvature_beats_baselines_on_correlation_outliers() {
    // The paper's headline case (issue (3) of Sec. 1.2): outliers caused by
    // abnormal correlation between the channels, invisible channel-wise.
    let data = TaxonomyConfig {
        m: 50,
        noise_std: 0.02,
    }
    .generate(OutlierType::CorrelationMixed, 50, 12, 7)
    .unwrap();
    let (train, test) = SplitConfig {
        train_size: 30,
        contamination: 0.10,
    }
    .split_datasets(&data, 3)
    .unwrap();

    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig {
            selector: BasisSelector {
                sizes: vec![12],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len: 50,
            ..Default::default()
        },
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    );
    let auc_curv = pipeline.fit_score_auc(&train, &test).unwrap();
    assert!(
        auc_curv > 0.85,
        "curvature on correlation outliers: {auc_curv}"
    );
    // the same detector on a single channel must do clearly worse: the
    // outlyingness lives in the *relationship* between the channels
    let single = GeomOutlierPipeline::new(
        PipelineConfig {
            selector: BasisSelector {
                sizes: vec![12],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len: 50,
            ..Default::default()
        },
        Arc::new(ComponentMapping::value(0)),
        Arc::new(IsolationForest::default()),
    );
    let auc_single = single.fit_score_auc(&train, &test).unwrap();
    assert!(
        auc_curv > auc_single + 0.1,
        "curvature {auc_curv} must clearly beat the channel-0 view {auc_single}"
    );
}

#[test]
fn reference_scoring_matches_joint_scoring_direction() {
    // Both protocols must agree on who the outliers are in easy settings.
    let data = TaxonomyConfig {
        m: 30,
        noise_std: 0.02,
    }
    .generate(OutlierType::MagnitudeIsolated, 30, 6, 11)
    .unwrap();
    let (train, test) = SplitConfig {
        train_size: 18,
        contamination: 0.1,
    }
    .split_datasets(&data, 4)
    .unwrap();
    let train_g = DepthBaseline::gridded(&train).unwrap();
    let test_g = DepthBaseline::gridded(&test).unwrap();
    let dirout = DirOut::new();
    let via_reference = dirout.score_against(&train_g, &test_g).unwrap();
    // joint fallback through the default trait implementation
    let joint = train_g.concat(&test_g).unwrap();
    let joint_scores = dirout.score(&joint).unwrap();
    let via_joint = &joint_scores[train_g.n()..];
    let auc_ref = auc(&via_reference, test.labels()).unwrap();
    let auc_joint = auc(via_joint, test.labels()).unwrap();
    assert!(
        auc_ref > 0.85 && auc_joint > 0.85,
        "ref {auc_ref}, joint {auc_joint}"
    );
}

#[test]
fn contamination_degrades_baseline_reference() {
    // With the training set as reference, heavy contamination inflates the
    // pointwise MAD and shrinks outlier scores — Dir.out's AUC at c = 25%
    // must not exceed its AUC at c = 5% by any meaningful margin.
    let data = EcgSimulator::new(EcgConfig {
        m: 50,
        ..Default::default()
    })
    .unwrap()
    .generate(80, 40, 13)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap();
    let dirout = DepthBaseline::new(Arc::new(DirOut::new()));
    let mut auc_low = 0.0;
    let mut auc_high = 0.0;
    for seed in 0..3u64 {
        let (tr, te) = SplitConfig {
            train_size: 60,
            contamination: 0.05,
        }
        .split_datasets(&data, seed)
        .unwrap();
        auc_low += dirout.auc(&tr, &te).unwrap();
        let (tr, te) = SplitConfig {
            train_size: 60,
            contamination: 0.25,
        }
        .split_datasets(&data, seed)
        .unwrap();
        auc_high += dirout.auc(&tr, &te).unwrap();
    }
    assert!(
        auc_high <= auc_low + 0.05 * 3.0,
        "Dir.out should not improve under contamination: c=5% {auc_low} vs c=25% {auc_high}"
    );
}

#[test]
fn modified_band_depth_as_extra_baseline() {
    use mfod::depth::aggregate::ModifiedBandDepth;
    let data = TaxonomyConfig {
        m: 30,
        noise_std: 0.02,
    }
    .generate(OutlierType::AmplitudePersistent, 40, 8, 17)
    .unwrap();
    let g = DepthBaseline::gridded(&data).unwrap();
    let scores = ModifiedBandDepth.score(&g).unwrap();
    let auc_v = auc(&scores, data.labels()).unwrap();
    assert!(auc_v > 0.85, "MBD on amplitude outliers: {auc_v}");
}

#[test]
fn infimum_aggregation_beats_integral_on_isolated_outliers() {
    // Issue (2) of Sec. 1.2: the integral masks isolated outliers; the
    // infimum is the fix. Verified end-to-end on taxonomy data.
    use mfod::depth::aggregate::IntegratedDepth;
    let data = TaxonomyConfig {
        m: 40,
        noise_std: 0.02,
    }
    .generate(OutlierType::MagnitudeIsolated, 50, 10, 19)
    .unwrap();
    let g = DepthBaseline::gridded(&data).unwrap();
    let auc_inf = auc(
        &IntegratedDepth::infimum().score(&g).unwrap(),
        data.labels(),
    )
    .unwrap();
    let auc_int = auc(
        &IntegratedDepth::integral().score(&g).unwrap(),
        data.labels(),
    )
    .unwrap();
    assert!(
        auc_inf >= auc_int - 0.02,
        "infimum {auc_inf} should be >= integral {auc_int} on isolated outliers"
    );
    assert!(auc_inf > 0.85, "infimum depth AUC {auc_inf}");
}
