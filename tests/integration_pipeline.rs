//! End-to-end integration tests of the geometric-aggregation pipeline
//! across crates: datasets → fda → geometry → detect → eval.

use mfod::prelude::*;
use std::sync::Arc;

fn ecg_data(seed: u64) -> LabeledDataSet {
    EcgSimulator::new(EcgConfig {
        m: 50,
        ..Default::default()
    })
    .unwrap()
    .generate(60, 30, seed)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap()
}

fn pipeline(detector: Arc<dyn Detector>) -> GeomOutlierPipeline {
    GeomOutlierPipeline::new(
        PipelineConfig {
            selector: BasisSelector {
                sizes: vec![12],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len: 50,
            ..Default::default()
        },
        Arc::new(Curvature),
        detector,
    )
}

#[test]
fn curvature_iforest_detects_ecg_outliers() {
    let data = ecg_data(11);
    let (train, test) = SplitConfig {
        train_size: 45,
        contamination: 0.10,
    }
    .split_datasets(&data, 3)
    .unwrap();
    let p = pipeline(Arc::new(IsolationForest::default()));
    let auc_v = p.fit_score_auc(&train, &test).unwrap();
    assert!(auc_v > 0.8, "iFor(Curvmap) AUC {auc_v}");
}

#[test]
fn curvature_ocsvm_detects_ecg_outliers() {
    let data = ecg_data(13);
    let (train, test) = SplitConfig {
        train_size: 45,
        contamination: 0.10,
    }
    .split_datasets(&data, 5)
    .unwrap();
    let p = pipeline(Arc::new(OcSvm::with_nu(0.1).unwrap()));
    let auc_v = p.fit_score_auc(&train, &test).unwrap();
    assert!(auc_v > 0.75, "OCSVM(Curvmap) AUC {auc_v}");
}

#[test]
fn pipeline_beats_raw_feature_detector() {
    // The geometric representation should beat iForest applied directly to
    // the raw measurement vectors of the same samples.
    let data = ecg_data(17);
    let (train, test) = SplitConfig {
        train_size: 45,
        contamination: 0.10,
    }
    .split_datasets(&data, 7)
    .unwrap();
    let p = pipeline(Arc::new(IsolationForest::default()));
    let auc_geom = p.fit_score_auc(&train, &test).unwrap();

    // raw features: concatenated channel values
    let raw = |set: &LabeledDataSet| {
        let rows: Vec<Vec<f64>> = set.samples().iter().map(|s| s.channels.concat()).collect();
        mfod::detect::features::matrix_from_rows(&rows).unwrap()
    };
    let model = IsolationForest::default().fit(&raw(&train)).unwrap();
    let raw_scores = model.score_batch(&raw(&test)).unwrap();
    let auc_raw = auc(&raw_scores, test.labels()).unwrap();
    // allow a small tolerance: the claim is "at least as good", typically better
    assert!(
        auc_geom > auc_raw - 0.05,
        "geometric {auc_geom} vs raw {auc_raw}"
    );
}

#[test]
fn scores_are_deterministic_given_seeds() {
    let data = ecg_data(19);
    let p = pipeline(Arc::new(IsolationForest {
        seed: 1234,
        ..Default::default()
    }));
    let f1 = p.fit(data.samples()).unwrap();
    let f2 = p.fit(data.samples()).unwrap();
    let s1 = f1.score(data.samples()).unwrap();
    let s2 = f2.score(data.samples()).unwrap();
    assert_eq!(s1, s2);
}

#[test]
fn robustness_across_contamination_levels() {
    // iFor(Curvmap) must stay useful as training contamination rises — the
    // robustness claim of the paper's Fig. 3.
    let data = ecg_data(23);
    let p = pipeline(Arc::new(IsolationForest::default()));
    for c in [0.05, 0.15, 0.25] {
        let (train, test) = SplitConfig {
            train_size: 45,
            contamination: c,
        }
        .split_datasets(&data, 9)
        .unwrap();
        let auc_v = p.fit_score_auc(&train, &test).unwrap();
        assert!(auc_v > 0.75, "c = {c}: AUC {auc_v}");
    }
}

#[test]
fn mapped_features_are_finite_and_shaped() {
    let data = ecg_data(29);
    let p = pipeline(Arc::new(IsolationForest::default()));
    let f = p.features(data.samples()).unwrap();
    assert_eq!(f.shape(), (90, 50));
    assert!(f.is_finite());
    // log1p transform keeps features non-negative for curvature
    assert!(f.as_slice().iter().all(|&v| v >= 0.0));
}

#[test]
fn ensemble_end_to_end() {
    let data = ecg_data(31);
    let (train, test) = SplitConfig {
        train_size: 45,
        contamination: 0.10,
    }
    .split_datasets(&data, 11)
    .unwrap();
    let cfg = PipelineConfig {
        selector: BasisSelector {
            sizes: vec![12],
            lambdas: vec![1e-2],
            ..Default::default()
        },
        grid_len: 50,
        ..Default::default()
    };
    let ensemble = MappingEnsemble::new()
        .with_member(GeomOutlierPipeline::new(
            cfg.clone(),
            Arc::new(Curvature),
            Arc::new(IsolationForest::default()),
        ))
        .with_member(GeomOutlierPipeline::new(
            cfg,
            Arc::new(Speed),
            Arc::new(IsolationForest::default()),
        ));
    let fitted = ensemble.fit(train.samples()).unwrap();
    let scores = fitted.score(test.samples()).unwrap();
    let auc_v = auc(&scores, test.labels()).unwrap();
    assert!(auc_v > 0.75, "ensemble AUC {auc_v}");
}
