//! Kill-and-recover chaos harness for the crash-consistent model store.
//!
//! Each schedule re-invokes this test binary as a **child process** that
//! loops fit → promote against a `ModelStore`, with a seeded
//! `mfod-faultline` plan armed in `park_on_fire` mode at one of the four
//! store crash points (`persist.fsync`, `persist.rename`,
//! `manifest.append.torn`, `store.commit`). When the fault fires the
//! child freezes mid-syscall-sequence and announces the parked point;
//! the parent then **SIGKILLs** it, leaving the store directory exactly
//! as a power loss would. Acceptance, per schedule:
//!
//! * recovery (`ModelStore::open`) never fails and never panics —
//!   whatever the kill left behind is quarantined, not deleted;
//! * the recovered active generation is **committed and hash-valid**:
//!   at least the last generation the child reported `COMMITTED`, at
//!   most the last it reported `PROMOTING` (a commit record may be
//!   durable before the child got to print its confirmation);
//! * the served model scores the fixture windows **bit-identically** to
//!   a deterministic refit of the tagged variant — recovery hands back
//!   real model content, not merely a plausible file;
//! * `fsck` on the recovered directory is clean, and the store accepts
//!   a fresh promotion afterwards (it healed, not just limped);
//! * recovery is idempotent: a second open changes nothing.
//!
//! Runs 8 schedules by default; `MFOD_CHAOS_FULL=1` runs 16. With
//! `MFOD_CRASH_JSON=<path>` a JSON recovery-report artifact is written,
//! embedding each killed child's `FaultReport` (hit/fire counts per
//! crash point) harvested via the `MFOD_FAULT_REPORT` handshake.

use mfod::persist::{ModelStore, QuarantineReason};
use mfod::FittedPipeline;
use mfod_faultline::{points, FaultPlan, FaultRule};
use mfod_fixtures::{sine_pipeline, FixtureConfig};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Environment handshake between the parent harness and the child.
const ENV_CHILD_DIR: &str = "MFOD_CRASH_CHILD_DIR";
const ENV_CHILD_SEED: &str = "MFOD_CRASH_CHILD_SEED";
const ENV_CHILD_POINT: &str = "MFOD_CRASH_CHILD_POINT";

/// Promotions the child attempts per schedule.
const CHILD_PROMOTIONS: usize = 5;

/// The four store crash points, rotated across schedules.
const CRASH_POINTS: [&str; 4] = [
    points::PERSIST_FSYNC,
    points::PERSIST_RENAME,
    points::MANIFEST_APPEND_TORN,
    points::STORE_COMMIT,
];

fn variant_config(variant: usize) -> FixtureConfig {
    if variant.is_multiple_of(2) {
        FixtureConfig::default()
    } else {
        FixtureConfig {
            n_samples: 30,
            m: 20,
            n_trees: 15,
            grid_len: 12,
        }
    }
}

fn variant_tag(variant: usize) -> String {
    format!("variant-{}", variant % 2)
}

fn variant_from_tag(tag: &str) -> usize {
    match tag {
        "variant-0" => 0,
        "variant-1" => 1,
        other => panic!("unrecognized manifest tag {other:?}"),
    }
}

/// Deterministic refit of a variant — identical in parent and child, so
/// snapshot bytes and scores are comparable across processes.
fn refit(variant: usize) -> &'static (Arc<FittedPipeline>, Vec<mfod::fda::RawSample>, Vec<f64>) {
    static V0: OnceLock<(Arc<FittedPipeline>, Vec<mfod::fda::RawSample>, Vec<f64>)> =
        OnceLock::new();
    static V1: OnceLock<(Arc<FittedPipeline>, Vec<mfod::fda::RawSample>, Vec<f64>)> =
        OnceLock::new();
    let slot = if variant.is_multiple_of(2) { &V0 } else { &V1 };
    slot.get_or_init(|| sine_pipeline(&variant_config(variant)))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfod-it-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Child entry point. A no-op under a normal test run; when the parent
/// harness re-invokes the binary with the handshake env set, this arms
/// the parking fault plan and loops fit → promote until it either parks
/// (awaiting SIGKILL) or finishes all promotions cleanly.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var(ENV_CHILD_DIR) else {
        return;
    };
    let seed: u64 = std::env::var(ENV_CHILD_SEED).unwrap().parse().unwrap();
    let point = std::env::var(ENV_CHILD_POINT).unwrap();

    // Fit both variants before arming: the fault plan targets persist
    // crash points only, but a fixed pre-fault fit keeps the schedule's
    // crash window focused on the promotion path.
    let snapshots = [
        refit(0).0.snapshot().unwrap(),
        refit(1).0.snapshot().unwrap(),
    ];

    let (mut store, _) = ModelStore::open(&dir).unwrap();
    // Even seeds crash deterministically at the first hit of the point;
    // odd seeds use the seeded coin so the crash lands at a different
    // promotion (or not at all) per schedule.
    let rule = if seed.is_multiple_of(2) {
        FaultRule::once()
    } else {
        FaultRule::with_probability(0.25).times(1)
    };
    mfod_faultline::install(FaultPlan::new(seed).rule(point, rule).park_on_fire());

    use std::io::Write as _;
    for i in 0..CHILD_PROMOTIONS {
        let variant = i % 2;
        let tag = variant_tag(variant);
        {
            let mut out = std::io::stdout().lock();
            writeln!(
                out,
                "PROMOTING {} {tag}",
                store.manifest().next_generation()
            )
            .unwrap();
            out.flush().unwrap();
        }
        let entry = store
            .promote(&snapshots[variant], variant as u64, &tag)
            .unwrap();
        let mut out = std::io::stdout().lock();
        writeln!(out, "COMMITTED {} {}", entry.generation, entry.tag).unwrap();
        out.flush().unwrap();
    }
    mfod_faultline::disarm();
}

struct ScheduleOutcome {
    seed: u64,
    point: &'static str,
    killed: bool,
    last_promoting: Option<u64>,
    last_committed: Option<u64>,
    recovered_active: Option<u64>,
    quarantined: usize,
    fell_back: bool,
    fault_json: Option<String>,
}

/// One schedule: spawn child → watch its progress → SIGKILL at the
/// parked crash point → recover → verify the committed, hash-valid,
/// bit-identical serving contract.
fn run_schedule(index: u64) -> ScheduleOutcome {
    let seed = 7000 + 131 * index;
    let point = CRASH_POINTS[(index as usize) % CRASH_POINTS.len()];
    let dir = tmpdir(&format!("s{seed}"));
    let fault_report_path = dir.join("fault-report.json");

    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["crash_child", "--exact", "--nocapture", "--test-threads=1"])
        .env(ENV_CHILD_DIR, &dir)
        .env(ENV_CHILD_SEED, seed.to_string())
        .env(ENV_CHILD_POINT, point)
        .env(mfod_faultline::ENV_FAULT_REPORT, &fault_report_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = mpsc::channel::<String>();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });

    // Follow the child's progress in order: PROMOTING/COMMITTED markers
    // track the commit frontier; the faultline park announcement is the
    // kill signal. A child whose probabilistic rule never fires exits
    // cleanly and is validated as a crash-free baseline.
    let mut last_promoting = None;
    let mut last_committed = None;
    let mut killed = false;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => {
                // libtest writes its `test crash_child ... ` banner with
                // no trailing newline, so the child's first marker can
                // land on the same line — match markers anywhere.
                let gen_after = |marker: &str| {
                    line.split(marker).nth(1).map(|rest| {
                        rest.split_whitespace()
                            .next()
                            .unwrap()
                            .parse::<u64>()
                            .unwrap()
                    })
                };
                if let Some(g) = gen_after("PROMOTING ") {
                    last_promoting = Some(g);
                }
                if let Some(g) = gen_after("COMMITTED ") {
                    last_committed = Some(g);
                }
                if line.contains("mfod-faultline: parked at") {
                    child.kill().unwrap();
                    killed = true;
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                assert!(
                    Instant::now() < deadline,
                    "seed {seed} @ {point}: child made no progress within the deadline"
                );
                if child.try_wait().unwrap().is_some() {
                    // Exited; drain whatever is still buffered, then stop.
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                let status = child.wait().unwrap();
                assert!(
                    status.success(),
                    "seed {seed} @ {point}: un-killed child must exit cleanly, got {status}"
                );
                break;
            }
        }
    }
    let _ = child.wait();
    reader.join().unwrap();

    // Recovery: open must succeed on whatever the SIGKILL left behind.
    let (store, recovery) = ModelStore::open(&dir).unwrap();
    let active = store.active_generation();

    // Committed state is never lost: once the child printed COMMITTED,
    // that generation's commit record was durable, so recovery must land
    // on it or on a later committed generation.
    if let Some(committed) = last_committed {
        let served = active.unwrap_or_else(|| {
            panic!("seed {seed} @ {point}: committed generation {committed} vanished")
        });
        assert!(
            served >= committed,
            "seed {seed} @ {point}: recovered gen {served} < durable commit {committed}"
        );
    }
    // ...and never invented: the active can be at most the in-flight
    // promotion the child announced last.
    if let (Some(served), Some(frontier)) = (active, last_promoting) {
        assert!(
            served <= frontier,
            "seed {seed} @ {point}: recovered gen {served} beyond the promotion frontier {frontier}"
        );
    }
    if !killed {
        assert_eq!(
            active, last_committed,
            "seed {seed} @ {point}: crash-free child must leave its last commit active"
        );
        assert!(
            recovery.quarantined.is_empty(),
            "seed {seed} @ {point}: crash-free store quarantined {:?}",
            recovery.quarantined
        );
    }

    // Nothing is deleted during recovery: every quarantined artifact is
    // preserved under quarantine/ with its reason.
    for (path, reason) in &recovery.quarantined {
        assert!(
            path.exists(),
            "seed {seed} @ {point}: quarantined {path:?} ({reason}) was not preserved"
        );
        let _: &QuarantineReason = reason;
    }

    // The recovered directory fscks clean — every surviving catalog
    // entry is hash-valid, no stray temps, no torn tails.
    let fsck = store.fsck().unwrap();
    assert!(
        fsck.is_clean(),
        "seed {seed} @ {point}: post-recovery fsck found {:?}",
        fsck.issues
    );

    // Bit-identical serving: the recovered model must score exactly like
    // a deterministic refit of the variant its manifest entry tags.
    if let Some(generation) = active {
        let entry = store.manifest().entry(generation).unwrap().clone();
        let loaded = FittedPipeline::load(&store.generation_path(generation).unwrap()).unwrap();
        let (fitted, windows, _) = refit(variant_from_tag(&entry.tag));
        let got = loaded.score(windows).unwrap();
        let want = fitted.score(windows).unwrap();
        assert_eq!(got.len(), want.len(), "seed {seed} @ {point}");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "seed {seed} @ {point}: recovered model drifted from refit at row {i}"
            );
        }
    }

    // Recovery is idempotent and the store heals: a second open changes
    // nothing, and a fresh promotion lands cleanly on top.
    let manifest_once = store.manifest().clone();
    drop(store);
    let (mut store, second) = ModelStore::open(&dir).unwrap();
    assert_eq!(
        store.manifest(),
        &manifest_once,
        "seed {seed} @ {point}: second recovery changed the catalog"
    );
    assert!(
        second.quarantined.is_empty(),
        "seed {seed} @ {point}: second recovery re-quarantined {:?}",
        second.quarantined
    );
    let healed = store
        .promote(&refit(0).0.snapshot().unwrap(), 0, "post-recovery")
        .unwrap();
    assert_eq!(store.active_generation(), Some(healed.generation));
    assert!(store.fsck().unwrap().is_clean(), "seed {seed} @ {point}");

    let fault_json = std::fs::read_to_string(&fault_report_path).ok();
    if killed {
        assert!(
            fault_json.is_some(),
            "seed {seed} @ {point}: parked child must dump its fault report"
        );
    }

    let outcome = ScheduleOutcome {
        seed,
        point,
        killed,
        last_promoting,
        last_committed,
        recovered_active: active,
        quarantined: recovery.quarantined.len(),
        fell_back: recovery.fell_back,
        fault_json,
    };
    std::fs::remove_dir_all(&dir).unwrap();
    outcome
}

fn option_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |g| g.to_string())
}

#[test]
fn kill_and_recover_store_serves_committed_state_across_seeded_crashes() {
    // Guard against recursing when the parent itself runs under the
    // child handshake (a filtered child run executes only crash_child).
    if std::env::var(ENV_CHILD_DIR).is_ok() {
        return;
    }
    let full = std::env::var("MFOD_CHAOS_FULL").is_ok_and(|v| v == "1");
    let schedules: u64 = if full { 16 } else { 8 };
    let mut outcomes = Vec::new();
    for i in 0..schedules {
        outcomes.push(run_schedule(i));
    }

    // The harness only proves something if kills actually happened: the
    // deterministic even-seed schedules alone guarantee half the runs
    // die at their crash point.
    let kills = outcomes.iter().filter(|o| o.killed).count();
    assert!(
        kills >= (schedules as usize) / 2,
        "only {kills}/{schedules} schedules were killed"
    );
    // ...and every crash point got at least one kill.
    for point in CRASH_POINTS {
        assert!(
            outcomes.iter().any(|o| o.killed && o.point == point),
            "no schedule was killed at {point}"
        );
    }

    if let Ok(path) = std::env::var("MFOD_CRASH_JSON") {
        let per_schedule: Vec<String> = outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"seed\":{},\"point\":\"{}\",\"killed\":{},\"last_promoting\":{},\
                     \"last_committed\":{},\"recovered_active\":{},\"quarantined\":{},\
                     \"fell_back\":{},\"faults\":{}}}",
                    o.seed,
                    o.point,
                    o.killed,
                    option_json(o.last_promoting),
                    option_json(o.last_committed),
                    option_json(o.recovered_active),
                    o.quarantined,
                    o.fell_back,
                    o.fault_json.as_deref().unwrap_or("null"),
                )
            })
            .collect();
        let json = format!(
            "{{\"schedules\":{},\"full\":{},\"kills\":{},\"results\":[{}]}}\n",
            schedules,
            full,
            kills,
            per_schedule.join(",")
        );
        std::fs::write(&path, json).unwrap();
    }
}
