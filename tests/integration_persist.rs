//! End-to-end acceptance tests for the persistence subsystem: a fitted
//! pipeline saved to disk and reloaded must score the ECG test split
//! **bit-identically** to the in-memory original — on the exact path and
//! the frozen serving path — and malformed snapshot bytes must fail with
//! typed errors, never a panic.

use mfod::persist::{ModelRegistry, PersistError};
use mfod::prelude::*;
use mfod_fixtures::{ecg_fitted, ecg_split};
use std::path::PathBuf;
use std::sync::Arc;

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} row {i}: {x} != {y}");
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mfod-it-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn saved_and_reloaded_pipeline_scores_ecg_bit_identically() {
    let dir = tmpdir("exact");
    let (train, test) = ecg_split();
    let fitted = ecg_fitted(&train);
    let in_memory = fitted.score(test.samples()).unwrap();

    let path = dir.join("ecg-pipeline.mfod");
    fitted.save(&path).unwrap();
    let reloaded = FittedPipeline::load(&path).unwrap();

    // exact path, sequential and parallel
    let from_disk = reloaded.score(test.samples()).unwrap();
    assert_bits_eq(&in_memory, &from_disk, "exact path after reload");
    let par_from_disk = reloaded.par_score(test.samples()).unwrap();
    assert_bits_eq(
        &in_memory,
        &par_from_disk,
        "parallel exact path after reload",
    );

    // the reloaded model is still a healthy detector (sanity beyond bits)
    let auc_disk = mfod::eval::auc(&from_disk, test.labels()).unwrap();
    assert!(auc_disk > 0.6, "reloaded AUC {auc_disk}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn saved_and_reloaded_frozen_scorer_scores_ecg_bit_identically() {
    let dir = tmpdir("frozen");
    let (train, test) = ecg_split();
    let fitted = ecg_fitted(&train);
    let ts = train.samples()[0].t.clone();
    let frozen = FrozenScorer::new(Arc::clone(&fitted), &ts).unwrap();
    let in_memory = frozen.score(test.samples()).unwrap();

    let path = dir.join("ecg-frozen.mfod");
    frozen.save(&path).unwrap();
    let reloaded = FrozenScorer::load(&path).unwrap();
    let from_disk = reloaded.score(test.samples()).unwrap();
    assert_bits_eq(&in_memory, &from_disk, "frozen path after reload");
    let par_from_disk = reloaded.par_score(test.samples()).unwrap();
    assert_bits_eq(
        &in_memory,
        &par_from_disk,
        "parallel frozen path after reload",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn registry_hot_swaps_pipelines_under_scoring_traffic() {
    let dir = tmpdir("registry");
    let (train, test) = ecg_split();
    let gen1 = ecg_fitted(&train);
    // a second generation fitted with a different forest size
    let gen2 = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 30,
            ..Default::default()
        }),
    )
    .fit(train.samples())
    .unwrap();
    gen1.save(&dir.join("model-001.mfod")).unwrap();
    gen2.save(&dir.join("model-002.mfod")).unwrap();

    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    let report = registry.load_dir(&dir).unwrap();
    assert_eq!(report.considered, 2);
    assert!(report.rejected.is_empty(), "{:?}", report.rejected);
    let (winner, _) = report.installed.as_ref().unwrap();
    assert!(winner.ends_with("model-002.mfod"), "newest must win");

    // live traffic: a batch in flight keeps its generation while a swap
    // lands, and the next batch sees the new one
    let active = registry.active().unwrap();
    let before = active.score(test.samples()).unwrap();
    assert_bits_eq(
        &before,
        &gen2.score(test.samples()).unwrap(),
        "active generation",
    );
    registry.load_file(&dir.join("model-001.mfod")).unwrap();
    let in_flight = active.score(test.samples()).unwrap();
    assert_bits_eq(&before, &in_flight, "in-flight batch after swap");
    let after = registry.active().unwrap().score(test.samples()).unwrap();
    assert_bits_eq(
        &after,
        &gen1.score(test.samples()).unwrap(),
        "post-swap generation",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mapped_install_hot_swaps_bit_identically_across_paths() {
    let dir = tmpdir("mapped");
    let (train, test) = ecg_split();
    let gen1 = ecg_fitted(&train);
    gen1.save(&dir.join("model-001.mfod")).unwrap();
    let eager = FittedPipeline::load(&dir.join("model-001.mfod")).unwrap();

    // mmap-install into the registry (zero-copy decode tier)
    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    registry
        .install_mapped(&dir.join("model-001.mfod"))
        .unwrap();
    let mapped = registry.active().unwrap();

    // exact path, sequential and parallel: the mapped generation matches
    // both the never-persisted original and the eager reload, bit for bit
    let want = gen1.score(test.samples()).unwrap();
    assert_bits_eq(
        &want,
        &eager.score(test.samples()).unwrap(),
        "eager reload (exact)",
    );
    assert_bits_eq(
        &want,
        &mapped.score(test.samples()).unwrap(),
        "mapped install (exact)",
    );
    assert_bits_eq(
        &want,
        &mapped.par_score(test.samples()).unwrap(),
        "mapped install (parallel exact)",
    );

    // frozen serving path: freeze the mapped generation and a mapped
    // reload of a frozen artifact, sequential and parallel
    let ts = train.samples()[0].t.clone();
    let frozen_mem = FrozenScorer::new(Arc::clone(&gen1), &ts).unwrap();
    let fwant = frozen_mem.score(test.samples()).unwrap();
    let frozen_over_mapped = FrozenScorer::new(Arc::clone(&mapped), &ts).unwrap();
    assert_bits_eq(
        &fwant,
        &frozen_over_mapped.score(test.samples()).unwrap(),
        "frozen over mapped generation",
    );
    let fpath = dir.join("frozen.mfod");
    frozen_mem.save(&fpath).unwrap();
    let frozen_mapped = FrozenScorer::load_mapped(&fpath).unwrap();
    assert_bits_eq(
        &fwant,
        &frozen_mapped.score(test.samples()).unwrap(),
        "mapped frozen reload",
    );
    assert_bits_eq(
        &fwant,
        &frozen_mapped.par_score(test.samples()).unwrap(),
        "mapped frozen reload (parallel)",
    );

    // hot-swap mid-stream: an in-flight batch keeps the mapped gen1
    // while a mapped gen2 install lands; the next batch sees gen2
    let gen2 = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 30,
            ..Default::default()
        }),
    )
    .fit(train.samples())
    .unwrap();
    gen2.save(&dir.join("model-002.mfod")).unwrap();
    registry
        .install_mapped(&dir.join("model-002.mfod"))
        .unwrap();
    let in_flight = mapped.score(test.samples()).unwrap();
    assert_bits_eq(&want, &in_flight, "in-flight batch after mapped swap");
    assert_bits_eq(
        &registry.active().unwrap().score(test.samples()).unwrap(),
        &gen2.score(test.samples()).unwrap(),
        "post-swap mapped generation",
    );

    // the decoded generations own their mappings: deleting every file
    // must not disturb models already serving
    std::fs::remove_dir_all(&dir).unwrap();
    assert_bits_eq(
        &want,
        &mapped.score(test.samples()).unwrap(),
        "mapped generation after file deletion",
    );
}

#[test]
fn malformed_snapshots_yield_typed_errors_never_panics() {
    let dir = tmpdir("malformed");
    let (train, _) = ecg_split();
    let fitted = ecg_fitted(&train);
    let path = dir.join("good.mfod");
    fitted.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();

    // wrong magic
    let mut bad = good.clone();
    bad[..4].copy_from_slice(b"ELF\x7f");
    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    assert!(matches!(
        registry.install_bytes(&bad),
        Err(PersistError::BadMagic { .. })
    ));

    // future format version (CRC repaired so the version check fires)
    let mut bad = good.clone();
    bad[4..8].copy_from_slice(&777u32.to_le_bytes());
    let n = bad.len();
    let crc = mfod::persist::crc32(&bad[..n - 4]);
    bad[n - 4..].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        registry.install_bytes(&bad),
        Err(PersistError::UnsupportedVersion { got: 777, .. })
    ));

    // flipped payload byte → checksum mismatch
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x10;
    assert!(matches!(
        registry.install_bytes(&bad),
        Err(PersistError::ChecksumMismatch { .. })
    ));

    // truncation at every 97th prefix (cheap but dense coverage)
    for n in (0..good.len()).step_by(97) {
        assert!(
            registry.install_bytes(&good[..n]).is_err(),
            "truncation to {n} bytes was accepted"
        );
    }

    // nothing installed along the way
    assert!(registry.active().is_none());
    assert_eq!(registry.generation(), 0);

    // and the pristine file still loads
    registry.install_bytes(&good).unwrap();
    assert_eq!(registry.generation(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn calibrator_snapshots_ride_the_same_format() {
    use mfod_stream::ThresholdCalibrator;
    let (train, test) = ecg_split();
    let fitted = ecg_fitted(&train);
    let calibrator = ThresholdCalibrator::fit(&fitted, train.samples(), 0.1).unwrap();
    let bytes = mfod::persist::to_bytes(&calibrator);
    let back: ThresholdCalibrator = mfod::persist::from_bytes(&bytes).unwrap();
    assert_eq!(calibrator.threshold().to_bits(), back.threshold().to_bits());
    // alarms agree on every test score
    let scores = fitted.score(test.samples()).unwrap();
    for &s in &scores {
        assert_eq!(calibrator.is_alarm(s), back.is_alarm(s));
    }
    // a pipeline snapshot fed to the calibrator type is rejected by kind
    let wrong = mfod::persist::to_bytes(&fitted.snapshot().unwrap());
    assert!(matches!(
        mfod::persist::from_bytes::<ThresholdCalibrator>(&wrong),
        Err(PersistError::WrongKind { .. })
    ));
}

#[test]
fn store_rollback_re_points_serving_under_in_flight_traffic() {
    use mfod::persist::{FsckIssue, ModelStore};
    let dir = tmpdir("store-rollback");
    let (train, test) = ecg_split();
    let gen1 = ecg_fitted(&train);
    let gen2 = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 30,
            ..Default::default()
        }),
    )
    .fit(train.samples())
    .unwrap();
    let want1 = gen1.score(test.samples()).unwrap();
    let want2 = gen2.score(test.samples()).unwrap();

    let (mut store, _) = ModelStore::open(&dir).unwrap();
    let e1 = store
        .promote(&gen1.snapshot().unwrap(), 1, "baseline")
        .unwrap();
    let e2 = store
        .promote(&gen2.snapshot().unwrap(), 2, "wider-forest")
        .unwrap();
    assert_eq!(e2.parent, Some(e1.generation), "lineage records the parent");

    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    assert_eq!(
        store.install_active(&registry).unwrap(),
        Some(e2.generation)
    );
    let serving = registry.active().unwrap();
    assert_bits_eq(
        &serving.score(test.samples()).unwrap(),
        &want2,
        "active generation before rollback",
    );

    // a batch in flight keeps its generation while the rollback lands
    let in_flight = Arc::clone(&serving);
    store.rollback(e1.generation).unwrap();
    assert_eq!(
        store.install_active(&registry).unwrap(),
        Some(e1.generation)
    );
    assert_bits_eq(
        &in_flight.score(test.samples()).unwrap(),
        &want2,
        "in-flight batch across the rollback",
    );
    assert_bits_eq(
        &registry.active().unwrap().score(test.samples()).unwrap(),
        &want1,
        "post-rollback generation",
    );

    // the rollback is durable: a reopen re-serves generation 1 with no
    // quarantine traffic, and the rolled-back-from snapshot is retained
    drop(store);
    let (store, recovery) = ModelStore::open(&dir).unwrap();
    assert_eq!(store.active_generation(), Some(e1.generation));
    assert!(
        recovery.quarantined.is_empty(),
        "{:?}",
        recovery.quarantined
    );
    assert!(store.generation_path(e2.generation).unwrap().exists());
    assert!(store.fsck().unwrap().is_clean());

    // tampering with a retained snapshot surfaces as a typed fsck issue
    // (never a panic), while the active generation stays clean
    let path2 = store.generation_path(e2.generation).unwrap();
    let mut bytes = std::fs::read(&path2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path2, &bytes).unwrap();
    let report = store.fsck().unwrap();
    assert!(!report.is_clean());
    assert!(
        report.issues.iter().any(|i| matches!(
            i,
            FsckIssue::HashMismatch { generation, .. } if *generation == e2.generation
        )),
        "{:?}",
        report.issues
    );
    assert_eq!(report.clean, vec![e1.generation]);
    std::fs::remove_dir_all(&dir).unwrap();
}
