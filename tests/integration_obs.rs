//! The observability contract: instrumentation is a pure *observer*.
//! Scores must be bit-for-bit identical with the recorder on and off,
//! the pool counters must satisfy their conservation law, and the
//! disabled path must record nothing at all.

use mfod::linalg::par::Pool;
use mfod::persist::ModelRegistry;
use mfod::prelude::*;
use mfod_fixtures::{ecg_fitted, ecg_split, sine_pipeline, FixtureConfig};
use mfod_obs::{journal, Phase, Recorder};
use mfod_stream::{BatchConfig, OnlineScorer, StreamConfig, WindowConfig};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

/// The recorder is process-global; tests that toggle it must not
/// interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} row {i}: {x} != {y}");
    }
}

/// Fits, batch-scores (both paths) and streams the ECG fixture,
/// returning every floating-point output the run produces.
fn full_run() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let (train, test) = ecg_split();
    let fitted = ecg_fitted(&train);
    let exact = fitted.score(test.samples()).unwrap();
    let par = fitted.par_score(test.samples()).unwrap();
    let train_scores = fitted.par_score(train.samples()).unwrap();
    let ts = test.samples()[0].t.clone();
    let mut scorer = OnlineScorer::new(
        Arc::clone(&fitted),
        StreamConfig {
            window: WindowConfig::tumbling(ts, 2),
            batch: BatchConfig {
                batch_size: 4,
                ..Default::default()
            },
        },
    )
    .unwrap();
    scorer.calibrate(&train_scores, 0.2).unwrap();
    let mut stream_scores = Vec::new();
    for beat in test.samples() {
        for j in 0..beat.t.len() {
            let obs = [beat.channels[0][j], beat.channels[1][j]];
            stream_scores.extend(scorer.push(&obs).unwrap().into_iter().map(|v| v.score));
        }
    }
    stream_scores.extend(scorer.finish().unwrap().into_iter().map(|v| v.score));
    (exact, par, stream_scores)
}

/// Scores the ECG test split through the frozen serving path,
/// sequential and parallel.
fn frozen_run() -> (Vec<f64>, Vec<f64>) {
    let (train, test) = ecg_split();
    let fitted = ecg_fitted(&train);
    let ts = test.samples()[0].t.clone();
    let frozen = FrozenScorer::new(Arc::clone(&fitted), &ts).unwrap();
    let seq = frozen.score(test.samples()).unwrap();
    let par = frozen.par_score(test.samples()).unwrap();
    (seq, par)
}

/// One blocking HTTP GET against the scrape endpoint, returning the
/// response head and body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    let (head, body) = resp.split_once("\r\n\r\n").expect("no header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn scores_are_bit_identical_with_obs_on_and_off() {
    let _g = locked();
    Recorder::install(false);
    let (exact_off, par_off, stream_off) = full_run();
    Recorder::install(true);
    Recorder::reset();
    let (exact_on, par_on, stream_on) = full_run();
    Recorder::install(false);
    assert_bits_eq(&exact_off, &exact_on, "exact path");
    assert_bits_eq(&par_off, &par_on, "parallel path");
    assert_bits_eq(&stream_off, &stream_on, "streaming path");
}

#[test]
fn pool_counters_satisfy_conservation() {
    let _g = locked();
    Recorder::install(true);
    let pool = Pool::with_threads(3);
    let before = Recorder::snapshot();
    let n = 4096;
    for _ in 0..5 {
        let out = pool.map(n, |i| i as u64 * 3);
        assert_eq!(out[n - 1], (n as u64 - 1) * 3);
    }
    let d = Recorder::snapshot().diff(&before);
    Recorder::install(false);
    assert_eq!(d.pool.maps, 5);
    assert!(d.pool.chunks_queued > 0, "multi-chunk maps must queue work");
    // Every queued sub-chunk is executed exactly once — either stolen
    // back by the caller while helping, or run by a pool worker.
    assert_eq!(
        d.pool.caller_steals + d.pool.worker_runs,
        d.pool.chunks_queued,
        "steals {} + runs {} != queued {}",
        d.pool.caller_steals,
        d.pool.worker_runs,
        d.pool.chunks_queued
    );
    // Queue wait is recorded per queued sub-chunk; run time also covers
    // the chunk the caller executes inline (one per map).
    assert_eq!(d.pool.queue_wait.count, d.pool.chunks_queued);
    assert_eq!(d.pool.chunk_run.count, d.pool.chunks_queued + d.pool.maps);
}

#[test]
fn disabled_recorder_records_nothing() {
    let _g = locked();
    Recorder::install(false);
    Recorder::reset();
    let (train, test) = ecg_split();
    let fitted = ecg_fitted(&train);
    fitted.par_score(test.samples()).unwrap();
    let pool = Pool::with_threads(2);
    pool.map(1000, |i| i + 1);
    let dir = std::env::temp_dir().join(format!("mfod-it-obs-off-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.mfod");
    fitted.save(&path).unwrap();
    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    registry.install_mapped(&path).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    let snap = Recorder::snapshot();
    assert_eq!(snap.pool.maps, 0);
    assert_eq!(snap.pool.chunks_queued, 0);
    assert_eq!(snap.plan_cache.hits + snap.plan_cache.misses, 0);
    assert_eq!(snap.persist.sections_eager + snap.persist.sections_lazy, 0);
    assert_eq!(snap.persist.mapped_bytes, 0);
    assert_eq!(snap.registry.install_time.count, 0);
    assert!(snap.phases.iter().all(|p| p.exclusive.count == 0));
}

#[test]
fn live_run_populates_every_report_section() {
    let _g = locked();
    Recorder::install(true);
    Recorder::reset();
    let (fitted, train, ts) = sine_pipeline(&FixtureConfig::default());
    let train_scores = fitted.par_score(&train).unwrap();
    let mut scorer = OnlineScorer::new(
        Arc::clone(&fitted),
        StreamConfig {
            window: WindowConfig::tumbling(ts.clone(), 2),
            batch: BatchConfig {
                batch_size: 3,
                ..Default::default()
            },
        },
    )
    .unwrap();
    scorer.calibrate(&train_scores, 0.25).unwrap();
    for s in &train {
        for j in 0..s.t.len() {
            scorer.push(&[s.channels[0][j], s.channels[1][j]]).unwrap();
        }
    }
    scorer.finish().unwrap();
    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    registry
        .install_bytes(&mfod::persist::to_bytes(&fitted.snapshot().unwrap()))
        .unwrap();
    // and a mapped install, so the lazy-tier metrics move too
    let dir = std::env::temp_dir().join(format!("mfod-it-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.mfod");
    fitted.save(&path).unwrap();
    registry.install_mapped(&path).unwrap();
    let mapped = registry.active().unwrap();
    // hold a mapping open so the resident-bytes gauge has a live level
    // to report (a mapped install only pins pages while borrowed views
    // survive the restore)
    let held = mfod::persist::SharedBytes::map(&path).unwrap();
    // a lazy first-touch decode, so the deferred-tier metrics move
    let fleet = mfod_fixtures::persist::tenant_fleet_bytes(
        &mfod_fixtures::persist::TenantFleetConfig::default(),
    );
    let shared = mfod::persist::SharedBytes::from_vec(fleet);
    let lazy = mfod::persist::LazySnapshot::open_shared(&shared).unwrap();
    mfod_fixtures::persist::lazy_tenant_digest(&lazy, 0).unwrap();
    let snap = Recorder::snapshot();
    Recorder::install(false);
    drop(held);
    std::fs::remove_dir_all(&dir).unwrap();

    // fit + scoring phases were traced
    assert!(snap.phases[Phase::FitFeatures.index()].exclusive.count >= 1);
    assert!(snap.phases[Phase::FitDetector.index()].exclusive.count >= 1);
    assert!(snap.phases[Phase::ScoreFeatures.index()].exclusive.count >= 1);
    assert!(snap.phases[Phase::ScoreDetector.index()].exclusive.count >= 1);
    // the plan cache saw the scoring lookups
    assert!(snap.plan_cache.hits + snap.plan_cache.misses > 0);
    // the stream flushed micro-batches and measured their latency
    let flushes = snap.stream.flush_full + snap.stream.flush_expired + snap.stream.flush_manual;
    assert!(flushes > 0, "no micro-batch flushes recorded");
    assert_eq!(snap.stream.batch_score.count, flushes);
    assert!(snap.stream.batch_score.quantile(0.99).is_some());
    // the registry swaps bumped the generation gauge and were timed
    assert_eq!(snap.registry.swaps, 2);
    assert_eq!(snap.registry.generation, 2);
    assert_eq!(snap.registry.install_time.count, 2);
    // the eager install decoded through the owned tier; the mapped
    // install pinned the snapshot file while the model serves from it
    assert!(snap.persist.sections_eager >= 1, "no eager section decodes");
    assert!(
        snap.persist.mapped_bytes > 0,
        "mapped install left no bytes pinned"
    );
    // the fleet touch decoded exactly one section lazily, and timed it
    assert_eq!(snap.persist.sections_lazy, 1);
    assert_eq!(snap.persist.first_touch.count, 1);
    drop(mapped);

    // and both renderings carry the headline numbers
    let report = snap.format_report();
    for needle in [
        "pool",
        "plan cache",
        "hit rate",
        "registry   generation 2",
        "persist    sections:",
        "bytes mapped",
        "p95",
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle}:\n{report}"
        );
    }
    let json = snap.to_json();
    assert!(json.contains("\"generation\": 2"));
    assert!(json.contains("\"mapped_bytes\""));
    assert!(json.contains("\"install_ns\""));
    assert!(json.contains("\"p99\""));
}

/// The full telemetry stack — event journal, rotating windows and the
/// live scrape endpoint — must still be a pure observer: every scoring
/// path (exact/frozen × sequential/parallel, plus streaming) produces
/// the same bits as a run with the recorder fully disabled.
#[test]
fn scores_are_bit_identical_with_full_telemetry_stack_live() {
    let _g = locked();
    Recorder::install(false);
    let (exact_off, par_off, stream_off) = full_run();
    let (fseq_off, fpar_off) = frozen_run();

    Recorder::install(true);
    Recorder::reset();
    journal::reset();
    let http = Recorder::serve("127.0.0.1:0").unwrap();
    let (exact_on, par_on, stream_on) = full_run();
    let (fseq_on, fpar_on) = frozen_run();
    // Scrape mid-flight state and export the trace while the recorder
    // is still live — neither may perturb anything scored afterwards.
    let (head, _) = http_get(http.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let _ = journal::chrome_trace_json();
    let (exact_again, ..) = full_run();
    drop(http);
    journal::reset();
    Recorder::install(false);

    assert_bits_eq(&exact_off, &exact_on, "exact sequential path");
    assert_bits_eq(&par_off, &par_on, "exact parallel path");
    assert_bits_eq(&stream_off, &stream_on, "streaming path");
    assert_bits_eq(&fseq_off, &fseq_on, "frozen sequential path");
    assert_bits_eq(&fpar_off, &fpar_on, "frozen parallel path");
    assert_bits_eq(&exact_off, &exact_again, "exact path after scrape");
}

/// `/metrics` after a real workload is valid Prometheus text
/// exposition: well-formed lines, headered families, cumulative `le`
/// series ending in `+Inf`, and the windowed/journal families present.
#[test]
fn scrape_endpoint_serves_valid_prometheus_exposition() {
    let _g = locked();
    Recorder::install(true);
    Recorder::reset();
    journal::reset();
    let pool = Pool::with_threads(2);
    pool.map(2048, |i| i as u64 + 1);
    let http = Recorder::serve("127.0.0.1:0").unwrap();
    let (head, body) = http_get(http.addr(), "/metrics");
    drop(http);
    journal::reset();
    Recorder::install(false);

    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    let mut typed = std::collections::HashSet::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split(' ').next().unwrap().to_string());
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect(line);
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        let name = name_and_labels.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name: {line}"
        );
        // Every sample belongs to a declared family (histogram series
        // reuse their family name with a _bucket/_sum/_count suffix).
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            typed.contains(base) || typed.contains(name),
            "sample without # TYPE header: {line}"
        );
    }
    for family in [
        "mfod_pool_maps_total",
        "mfod_pool_chunk_run_ns",
        "mfod_phase_exclusive_ns",
        "mfod_window_windows_per_sec",
        "mfod_window_score_dist_nanoscore",
        "mfod_journal_recorded_total",
    ] {
        assert!(typed.contains(family), "missing family {family}:\n{body}");
    }
    // Cumulative histograms: counts never decrease down a `le` series
    // and every series closes with +Inf.
    let buckets: Vec<u64> = body
        .lines()
        .filter(|l| l.starts_with("mfod_pool_chunk_run_ns_bucket"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(!buckets.is_empty(), "pool chunk histogram missing");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    assert!(body.contains("mfod_pool_chunk_run_ns_bucket{le=\"+Inf\"}"));
}

/// The exported trace after a full pipeline run is valid Chrome
/// trace-event JSON: every span begin is matched by an end (globally
/// and per thread, with proper nesting), and the drop accounting
/// conserves.
#[test]
fn exported_trace_is_balanced_chrome_trace_json() {
    let _g = locked();
    Recorder::install(true);
    Recorder::reset();
    journal::reset();
    full_run();
    let json = journal::chrome_trace_json();
    let stats = journal::stats();
    journal::reset();
    Recorder::install(false);

    assert_eq!(stats.recorded + stats.dropped, stats.emitted);
    assert!(stats.recorded > 0, "pipeline run journalled nothing");

    // Pull the traceEvents array apart without a JSON dependency: the
    // exporter emits one flat object per event, no nesting.
    let start = json.find("\"traceEvents\":[").expect("no traceEvents") + 15;
    let end = json[start..].find(']').expect("unterminated array") + start;
    let events: Vec<&str> = json[start..end]
        .split("},\n{")
        .map(str::trim)
        .filter(|e| !e.is_empty())
        .collect();
    let field = |ev: &str, key: &str| -> String {
        let at = ev.find(&format!("\"{key}\":")).unwrap_or_else(|| {
            panic!("event missing {key}: {ev}");
        }) + key.len()
            + 3;
        ev[at..]
            .trim_start_matches('"')
            .chars()
            .take_while(|&c| c != ',' && c != '"' && c != '}')
            .collect()
    };
    let mut depth: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
    let mut begins = 0u64;
    let mut ends = 0u64;
    for ev in &events {
        let (ph, tid) = (field(ev, "ph"), field(ev, "tid"));
        assert!(!field(ev, "name").is_empty(), "unnamed event: {ev}");
        field(ev, "ts").parse::<f64>().expect("non-numeric ts");
        let d = depth.entry(tid).or_insert(0);
        match ph.as_str() {
            "B" => {
                begins += 1;
                *d += 1;
            }
            "E" => {
                ends += 1;
                *d -= 1;
                assert!(*d >= 0, "span end without begin on a thread: {ev}");
            }
            "i" => {}
            other => panic!("unexpected phase {other}: {ev}"),
        }
    }
    assert_eq!(begins, ends, "unbalanced spans in exported trace");
    assert!(begins > 0, "pipeline run produced no spans");
    assert!(
        depth.values().all(|&d| d == 0),
        "unclosed spans per thread: {depth:?}"
    );
    // Drop-free run with every span closed → nothing was excluded as an
    // orphan, so the export carries exactly the recorded events. With
    // drops, begins whose ends fell off the ring are excluded.
    if stats.dropped == 0 {
        assert_eq!(events.len() as u64, stats.recorded);
    } else {
        assert!(events.len() as u64 <= stats.recorded);
    }
}
