//! The parallel runtime must be a pure wall-clock optimization: fitted
//! models and pipeline scores have to be **bit-for-bit identical** no
//! matter how many pool threads fit or score them, and a panicking job
//! must neither poison the global pool nor lose its payload.

use mfod::depth::projection::{
    projection_outlyingness_full, projection_outlyingness_on, ProjectionConfig,
};
use mfod::detect::prelude::*;
use mfod::linalg::par::{self, Pool};
use mfod::linalg::Matrix;
use mfod::prelude::{Curvature, DirOut, GeomOutlierPipeline, PipelineConfig};
use mfod_fixtures::{ecg_fitted, ecg_split};
use std::sync::Arc;

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} row {i}: {x} != {y}");
    }
}

#[test]
fn fitted_pipeline_scores_are_identical_across_pool_sizes() {
    let (train, test) = ecg_split();
    // The pipeline's detector (isolation forest) is fitted on the global
    // pool; two fits of the same config must agree with each other all
    // the way through scoring.
    let a = ecg_fitted(&train);
    let b = ecg_fitted(&train);
    let scores_a = a.score(test.samples()).unwrap();
    let scores_b = b.score(test.samples()).unwrap();
    assert_bits_eq(&scores_a, &scores_b, "refit through global pool");
    // Parallel scoring reproduces sequential scoring on the same artifact.
    let par_scores = a.par_score(test.samples()).unwrap();
    assert_bits_eq(&scores_a, &par_scores, "par_score vs score");
}

#[test]
fn pipeline_fit_is_identical_across_pool_sizes() {
    // The grid-cached selection engine fans per-(sample × channel) basis
    // selection out over the pool; fitted artifacts and scores must be
    // bit-for-bit identical at pool sizes 1 / 2 / 8 and on the global
    // pool.
    let (train, test) = ecg_split();
    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 60,
            ..Default::default()
        }),
    );
    let fitted: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&k| {
            pipeline
                .fit_on(&Pool::with_threads(k), train.samples())
                .unwrap()
        })
        .collect();
    let global = pipeline.fit(train.samples()).unwrap();
    let reference = fitted[0].score(test.samples()).unwrap();
    for (what, f) in [("2 threads", &fitted[1]), ("8 threads", &fitted[2])] {
        assert_eq!(f.selected_bases(), fitted[0].selected_bases(), "{what}");
        assert_bits_eq(&f.score(test.samples()).unwrap(), &reference, what);
    }
    assert_eq!(global.selected_bases(), fitted[0].selected_bases());
    assert_bits_eq(&global.score(test.samples()).unwrap(), &reference, "global");
    // feature extraction too, through the explicit-pool entry point
    let f_seq = pipeline
        .features_on(&Pool::with_threads(1), train.samples())
        .unwrap();
    let f_wide = pipeline
        .features_on(&Pool::with_threads(8), train.samples())
        .unwrap();
    assert_bits_eq(f_seq.as_slice(), f_wide.as_slice(), "features 1 vs 8");
}

#[test]
fn dirout_grid_fanout_is_identical_across_pool_sizes() {
    let (train, _) = ecg_split();
    let gridded = mfod::DepthBaseline::gridded(&train).unwrap();
    let scorer = DirOut::new();
    let seq = scorer
        .decompose_on(&Pool::with_threads(1), &gridded)
        .unwrap();
    let wide = scorer
        .decompose_on(&Pool::with_threads(8), &gridded)
        .unwrap();
    assert_bits_eq(&seq.fo, &wide.fo, "dirout FO 1 vs 8 threads");
    assert_bits_eq(&seq.vo, &wide.vo, "dirout VO 1 vs 8 threads");
    assert_eq!(seq.degenerate_directions, wide.degenerate_directions);
}

#[test]
fn iforest_fit_on_explicit_pools_matches_global_fit() {
    let x = Matrix::from_fn(120, 5, |i, j| {
        ((i * 13 + j * 5) as f64 * 0.41).sin() + if i % 19 == 0 { 6.0 } else { 0.0 }
    });
    let forest = IsolationForest {
        n_trees: 50,
        subsample: 64,
        seed: 3,
    };
    let seq = forest.fit_on(&Pool::with_threads(1), &x).unwrap();
    let wide = forest.fit_on(&Pool::with_threads(8), &x).unwrap();
    let global = forest.fit(&x).unwrap();
    let s_seq = seq.score_batch(&x).unwrap();
    assert_bits_eq(&s_seq, &wide.score_batch(&x).unwrap(), "1 vs 8 threads");
    assert_bits_eq(&s_seq, &global.score_batch(&x).unwrap(), "1 vs global");
}

#[test]
fn projection_fit_is_identical_across_pool_sizes() {
    let x = Matrix::from_fn(64, 4, |i, j| {
        ((i * 7 + j * 3) as f64 * 0.23).cos() * (j + 1) as f64
    });
    let cfg = ProjectionConfig {
        n_directions: 64,
        seed: 21,
    };
    let seq = projection_outlyingness_on(&Pool::with_threads(1), &x, &cfg).unwrap();
    let wide = projection_outlyingness_on(&Pool::with_threads(8), &x, &cfg).unwrap();
    let global = projection_outlyingness_full(&x, &cfg).unwrap();
    assert_bits_eq(&seq.scores, &wide.scores, "projection 1 vs 8 threads");
    assert_bits_eq(&seq.scores, &global.scores, "projection 1 vs global");
    assert_eq!(seq.used_directions, wide.used_directions);
    assert_eq!(seq.degenerate_directions, wide.degenerate_directions);
}

#[test]
fn panicking_job_propagates_its_payload_and_spares_the_pool() {
    let caught = std::panic::catch_unwind(|| {
        par::par_map(32, |i| {
            if i == 17 {
                std::panic::panic_any("original payload");
            }
            i
        })
    })
    .expect_err("panic must reach the caller");
    assert_eq!(
        *caught.downcast::<&str>().expect("payload preserved"),
        "original payload"
    );
    // The global pool survives: real work still runs after the panic.
    let out = par::par_map(64, |i| i * 2);
    assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
}
