//! Integration tests of the Fig. 3 experiment harness (smoke-scale) and of
//! the qualitative claims the figure supports.

use mfod::experiment::{format_fig3, run_fig3, run_fig3_on, Fig3Config};
use mfod::prelude::*;

#[test]
fn smoke_experiment_runs_and_reports() {
    let cfg = Fig3Config::smoke();
    let rows = run_fig3(&cfg).unwrap();
    assert_eq!(rows.len(), cfg.contamination_levels.len());
    for row in &rows {
        for m in ["iFor(Curvmap)", "OCSVM(Curvmap)", "FUNTA", "Dir.out"] {
            let s = row.summary.get(m).unwrap();
            assert!((0.0..=1.0).contains(&s.mean), "{m}: {}", s.mean);
            assert_eq!(s.values.len(), cfg.repetitions);
        }
    }
    let table = format_fig3(&rows);
    assert!(table.contains("AUC vs. contamination level"));
}

#[test]
fn experiment_is_reproducible() {
    let cfg = Fig3Config::smoke();
    let a = run_fig3(&cfg).unwrap();
    let b = run_fig3(&cfg).unwrap();
    for (ra, rb) in a.iter().zip(&b) {
        for m in ["iFor(Curvmap)", "FUNTA"] {
            assert_eq!(
                ra.summary.get(m).unwrap().values,
                rb.summary.get(m).unwrap().values,
                "method {m} not reproducible"
            );
        }
    }
}

#[test]
fn external_data_entrypoint() {
    // run_fig3_on accepts pre-built (e.g. real ECG200) data.
    let data = EcgSimulator::new(EcgConfig {
        m: 30,
        ..Default::default()
    })
    .unwrap()
    .generate(40, 20, 5)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap();
    let cfg = Fig3Config {
        contamination_levels: vec![0.10],
        repetitions: 2,
        train_size: 30,
        pipeline: PipelineConfig {
            selector: BasisSelector {
                sizes: vec![10],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len: 30,
            ..Default::default()
        },
        nu_tuner: NuTuner {
            folds: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let rows = run_fig3_on(&cfg, &data).unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn geometric_methods_competitive_at_moderate_scale() {
    // A mid-size run (not the full 50 reps) checking the figure's key
    // qualitative content: the curvature pipeline is competitive with the
    // best depth baseline and clearly better than FUNTA.
    let cfg = Fig3Config {
        contamination_levels: vec![0.10],
        repetitions: 4,
        train_size: 60,
        n_normal: 80,
        n_abnormal: 40,
        ecg: EcgConfig {
            m: 60,
            ..Default::default()
        },
        pipeline: PipelineConfig {
            selector: BasisSelector {
                sizes: vec![14],
                lambdas: vec![1e-2],
                ..Default::default()
            },
            grid_len: 60,
            ..Default::default()
        },
        nu_tuner: NuTuner {
            folds: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let rows = run_fig3(&cfg).unwrap();
    let s = &rows[0].summary;
    let ifor = s.get("iFor(Curvmap)").unwrap().mean;
    let funta = s.get("FUNTA").unwrap().mean;
    let dirout = s.get("Dir.out").unwrap().mean;
    assert!(ifor > funta, "iFor(Curvmap) {ifor} must beat FUNTA {funta}");
    assert!(
        ifor > dirout - 0.08,
        "iFor(Curvmap) {ifor} vs Dir.out {dirout}"
    );
    assert!(ifor > 0.85, "iFor(Curvmap) {ifor}");
}

#[test]
fn invalid_configs_rejected() {
    let mut cfg = Fig3Config::smoke();
    cfg.contamination_levels = vec![1.5];
    assert!(run_fig3(&cfg).is_err());
    let mut cfg = Fig3Config::smoke();
    cfg.repetitions = 0;
    assert!(run_fig3(&cfg).is_err());
    let mut cfg = Fig3Config::smoke();
    cfg.train_size = 10_000;
    assert!(run_fig3(&cfg).is_err());
}
