//! The paper's complete ECG experiment at one contamination level,
//! comparing all four methods of Fig. 3 — a domain-specific walk-through of
//! the evaluation protocol (Sec. 4.1).
//!
//! ```sh
//! cargo run --release --example ecg_pipeline
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let contamination = 0.10;
    println!(
        "== ECG outlier detection at c = {:.0}% ==\n",
        contamination * 100.0
    );

    // ECG200 stand-in, augmented with the squared series (Sec. 4.1).
    let data = EcgSimulator::new(EcgConfig::default())?
        .generate(128, 64, 2020)?
        .augment_with(0, |y| y * y)?;
    let (train, test) = SplitConfig {
        train_size: 96,
        contamination,
    }
    .split_datasets(&data, 1)?;

    // --- geometric pipelines -------------------------------------------
    let for_pipeline = GeomOutlierPipeline::new(
        PipelineConfig::default(),
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    );
    let auc_ifor = for_pipeline.fit_score_auc(&train, &test)?;
    println!("{:<18} AUC = {auc_ifor:.3}", for_pipeline.label());

    // OCSVM with ν tuned by 5-fold self-consistency CV on the training set
    // (Sec. 4.3), on standardized curvature features.
    let features_train = for_pipeline.features(train.samples())?;
    let features_test = for_pipeline.features(test.samples())?;
    let standardizer =
        mfod::detect::features::Standardizer::fit(&features_train).map_err(MfodError::Detect)?;
    let train_z = standardizer
        .transform(&features_train)
        .map_err(MfodError::Detect)?;
    let test_z = standardizer
        .transform(&features_test)
        .map_err(MfodError::Detect)?;
    let tuner = NuTuner::default();
    let (selection, ocsvm) = tuner.tune_and_fit(&OcSvm::default(), &train_z)?;
    let scores = ocsvm.score_batch(&test_z).map_err(MfodError::Detect)?;
    let auc_ocsvm = auc(&scores, test.labels())?;
    println!(
        "{:<18} AUC = {auc_ocsvm:.3}   (selected ν = {:.2})",
        "ocsvm(curvature)", selection.nu
    );

    // --- depth baselines ------------------------------------------------
    for scorer in [
        DepthBaseline::new(Arc::new(DirOut::new())),
        DepthBaseline::new(Arc::new(Funta::new())),
    ] {
        let auc_b = scorer.auc(&train, &test)?;
        println!("{:<18} AUC = {auc_b:.3}", scorer.name());
    }

    // --- the Sec. 5 ensemble (future work implemented) -------------------
    let ensemble = MappingEnsemble::new()
        .with_member(GeomOutlierPipeline::new(
            PipelineConfig::default(),
            Arc::new(Curvature),
            Arc::new(IsolationForest::default()),
        ))
        .with_member(GeomOutlierPipeline::new(
            PipelineConfig::default(),
            Arc::new(Speed),
            Arc::new(IsolationForest::default()),
        ));
    let fitted = ensemble.fit(train.samples())?;
    let (combined, contributions) = fitted.score_decomposed(test.samples())?;
    let auc_ens = auc(&combined, test.labels())?;
    println!(
        "{:<18} AUC = {auc_ens:.3}   (members: {:?})",
        "ensemble",
        fitted.member_labels()
    );

    // interpretability: which member drives the top-ranked outlier?
    let top = combined
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0;
    println!(
        "\ntop outlier (test #{top}): curvature contribution {:.2}, speed contribution {:.2}",
        contributions[(top, 0)],
        contributions[(top, 1)]
    );
    Ok(())
}
