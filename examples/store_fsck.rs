//! Crash-consistent store walkthrough: transactional promotion, one-call
//! rollback, `fsck` verification of a tampered directory, and recovery
//! that quarantines (never deletes) everything it cannot trust.
//!
//! Run with: `cargo run --release --example store_fsck [DIR]`
//!
//! With no argument the demo builds (and removes) a store under the
//! system temp dir; pass a directory to fsck an existing store instead.

use mfod::persist::{fsck_dir, ModelStore};
use mfod_fixtures::{sine_pipeline, FixtureConfig};

fn main() {
    // ---- fsck-only mode on an operator-supplied directory ------------
    if let Some(dir) = std::env::args().nth(1) {
        let report = fsck_dir(std::path::Path::new(&dir)).unwrap();
        println!("fsck {dir}: {} clean generation(s)", report.clean.len());
        for issue in &report.issues {
            println!("  issue: {issue}");
        }
        std::process::exit(if report.is_clean() { 0 } else { 1 });
    }

    let dir = std::env::temp_dir().join(format!("mfod-store-fsck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- transactional promotion -------------------------------------
    // Each promotion is write-snapshot → fsync(file + dir) → append
    // intent → append commit → checkpoint; a crash anywhere leaves
    // either the previous or the new generation committed, never a torn
    // half-state.
    let (mut store, recovery) = ModelStore::open(&dir).unwrap();
    println!(
        "opened fresh store at {} (replayed {} log records)",
        dir.display(),
        recovery.replayed_records
    );
    let (v0, windows, _) = sine_pipeline(&FixtureConfig::default());
    let (v1, _, _) = sine_pipeline(&FixtureConfig {
        n_samples: 30,
        m: 20,
        n_trees: 15,
        grid_len: 12,
    });
    let e1 = store
        .promote(&v0.snapshot().unwrap(), 0, "baseline")
        .unwrap();
    let e2 = store
        .promote(&v1.snapshot().unwrap(), 1, "wider-grid")
        .unwrap();
    for e in store.manifest().entries.iter() {
        println!(
            "  gen {} [{}] {} — {} bytes, hash {:016x}, parent {:?}",
            e.generation, e.tag, e.file, e.len, e.content_hash, e.parent
        );
    }
    println!("active: generation {:?}", store.active_generation());

    // ---- one-call rollback -------------------------------------------
    store.rollback(e1.generation).unwrap();
    println!(
        "rolled back: generation {:?} active, generation {} retained on disk",
        store.active_generation(),
        e2.generation
    );

    // ---- fsck on a healthy store -------------------------------------
    let report = store.fsck().unwrap();
    println!(
        "fsck (healthy): clean={:?}, {} issue(s)",
        report.clean,
        report.issues.len()
    );
    assert!(report.is_clean());

    // ---- tamper, then fsck again -------------------------------------
    // Flip one payload byte in the rolled-back-from generation, drop an
    // orphan snapshot and a stray temp file — every problem surfaces as
    // a typed issue, and the active generation stays verifiably clean.
    let p2 = store.generation_path(e2.generation).unwrap();
    let mut bytes = std::fs::read(&p2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&p2, &bytes).unwrap();
    std::fs::write(dir.join("orphan.mfod"), b"not a snapshot").unwrap();
    std::fs::write(dir.join("gen-000001.mfod-tmp-999-0"), b"leftover").unwrap();
    let report = store.fsck().unwrap();
    println!("fsck (tampered): clean={:?}", report.clean);
    for issue in &report.issues {
        println!("  issue: {issue}");
    }
    assert!(!report.is_clean());

    // ---- recovery quarantines, never deletes -------------------------
    drop(store);
    let (store, recovery) = ModelStore::open(&dir).unwrap();
    for (path, reason) in &recovery.quarantined {
        println!("quarantined: {} ({reason})", path.display());
    }
    println!(
        "recovered: active generation {:?}, fell_back={}, fsck clean={}",
        store.active_generation(),
        recovery.fell_back,
        store.fsck().unwrap().is_clean()
    );
    // the recovered active model still serves
    let loaded = mfod::FittedPipeline::load(
        &store
            .generation_path(store.active_generation().unwrap())
            .unwrap(),
    )
    .unwrap();
    let scores = loaded.score(&windows).unwrap();
    println!(
        "served {} scores from the recovered generation",
        scores.len()
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
