//! Tour of the mapping-function family on the outlier taxonomy of Hubert
//! et al. (Sec. 1.1): which geometric aggregation sees which outlier class?
//!
//! ```sh
//! cargo run --release --example mapping_zoo
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let mappings: Vec<(Arc<dyn MappingFunction>, &str)> = vec![
        (Arc::new(Curvature), "curvature"),
        (Arc::new(Speed), "speed"),
        (Arc::new(Acceleration), "acceleration"),
        (Arc::new(ArcLength), "arc-length"),
        (Arc::new(TurningAngle), "turning-angle"),
    ];

    println!("resubstitution AUC of iForest on each mapping (rows) per outlier type (cols)\n");
    print!("{:<14}", "");
    for ty in OutlierType::ALL {
        print!("{:>22}", ty.name());
    }
    println!();

    for (mapping, name) in &mappings {
        print!("{name:<14}");
        for ty in OutlierType::ALL {
            // univariate types are augmented to p=2 with the square channel
            // so every mapping is applicable (the paper's Sec. 4.1 recipe)
            let data = TaxonomyConfig::default().generate(ty, 80, 20, 99)?;
            let data = if ty.dim() == 1 {
                data.augment_with(0, |y| y * y)?
            } else {
                data
            };
            let pipeline = GeomOutlierPipeline::new(
                PipelineConfig::default(),
                Arc::clone(mapping),
                Arc::new(IsolationForest::default()),
            );
            match pipeline
                .fit(data.samples())
                .and_then(|f| f.score(data.samples()))
            {
                Ok(scores) => {
                    let v = auc(&scores, data.labels())?;
                    print!("{v:>22.3}");
                }
                Err(_) => print!("{:>22}", "n/a"),
            }
        }
        println!();
    }

    println!(
        "\nReading guide: curvature shines on correlation-mixed outliers (the\n\
         paper's headline case); speed/acceleration track isolated magnitude\n\
         spikes; arc length accumulates persistent amplitude deviations."
    );
    Ok(())
}
