//! Regenerates the paper's **Fig. 1**: 21 bivariate functional samples with
//! one shape-persistent outlier, printed both as `(t, x1, x2)` series and as
//! summary statistics of the `(x1, x2)` projection.
//!
//! ```sh
//! cargo run --release --example fig1_data
//! ```
//!
//! Pipe the output into your plotting tool of choice to reproduce the two
//! panels; the assertions at the bottom verify the figure's defining
//! property (the outlier is invisible channel-wise but obvious as a path).

use mfod::datasets::fig1::{self, Fig1Config};
use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    let cfg = Fig1Config::default();
    let data = fig1::generate(&cfg, 2020)?;
    println!("# Fig. 1 data: {} samples, outlier index = 20", data.len());
    println!("# columns: sample, label, t, x1, x2   (every 10th grid point)");
    for (i, (s, label)) in data.samples().iter().zip(data.labels()).enumerate() {
        for (j, &t) in s.t.iter().enumerate().step_by(10) {
            println!(
                "{i} {} {t:.3} {:+.4} {:+.4}",
                u8::from(*label),
                s.channels[0][j],
                s.channels[1][j]
            );
        }
    }

    // The figure's point: channel ranges overlap (panel a looks innocent)…
    let range = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let out = &data.samples()[20];
    println!(
        "\n# outlier channel ranges: x1 {:?}, x2 {:?}",
        range(&out.channels[0]),
        range(&out.channels[1])
    );
    println!(
        "# inlier 0 channel ranges: x1 {:?}, x2 {:?}",
        range(&data.samples()[0].channels[0]),
        range(&data.samples()[0].channels[1])
    );

    // …while the curvature mapping separates the outlier immediately.
    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig {
            grid_len: 101,
            ..PipelineConfig::default()
        },
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    );
    let fitted = pipeline.fit(data.samples())?;
    let scores = fitted.score(data.samples())?;
    let top = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0;
    println!("\n# curvature pipeline's most outlying sample: {top} (true outlier: 20)");
    assert_eq!(
        top, 20,
        "the Fig. 1 outlier must rank first under the curvature mapping"
    );
    println!("# OK: shape-persistent outlier correctly isolated");
    Ok(())
}
