//! Online scoring demo: fit the paper's pipeline offline on simulated ECG
//! beats, then serve it — stream the test split observation by
//! observation through sliding windows and parallel micro-batches, and
//! raise calibrated alarms.
//!
//! Run with: `cargo run --release --example streaming_scoring`

use mfod::prelude::*;
use mfod_stream::{BatchConfig, OnlineScorer, StreamConfig, WindowConfig};
use std::sync::Arc;

fn main() {
    // ---- offline: fit once -------------------------------------------
    let data = EcgSimulator::new(EcgConfig {
        m: 40,
        ..Default::default()
    })
    .unwrap()
    .generate(48, 16, 2020)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap();
    let split = SplitConfig {
        train_size: 32,
        contamination: 0.1,
    };
    let (train, test) = split.split_datasets(&data, 1).unwrap();

    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 60,
            ..Default::default()
        }),
    );
    let fitted = pipeline.fit(train.samples()).unwrap().into_shared();
    let train_scores = fitted.par_score(train.samples()).unwrap();
    println!(
        "fitted {} on {} training beats (selected bases per channel: {:?})",
        fitted.label(),
        train.len(),
        fitted.selected_bases(),
    );

    // ---- online: stream the test split -------------------------------
    let contamination = 0.20;
    let ts = test.samples()[0].t.clone();
    let mut scorer = OnlineScorer::new(
        Arc::clone(&fitted),
        StreamConfig {
            window: WindowConfig::tumbling(ts, 2),
            batch: BatchConfig {
                batch_size: 8,
                ..Default::default()
            },
        },
    )
    .unwrap();
    scorer.calibrate(&train_scores, contamination).unwrap();
    let threshold = scorer.calibrator().unwrap().threshold();
    println!("calibrated alarm threshold {threshold:.4} (contamination {contamination})\n");

    let mut verdicts = Vec::new();
    for beat in test.samples() {
        for j in 0..beat.t.len() {
            let obs = [beat.channels[0][j], beat.channels[1][j]];
            verdicts.extend(scorer.push(&obs).unwrap());
        }
    }
    verdicts.extend(scorer.finish().unwrap());

    // ---- report -------------------------------------------------------
    println!("window  score    alarm  truth");
    let labels = test.labels();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for v in &verdicts {
        let truth = labels[v.seq as usize];
        match (v.is_outlier, truth) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
        println!(
            "{:>5}   {:>7.4}  {}      {}",
            v.seq,
            v.score,
            if v.is_outlier { "YES" } else { " - " },
            if truth { "outlier" } else { "normal" },
        );
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    let snap = scorer.stats();
    println!(
        "\n{} windows in {} micro-batches · {} alarms · precision {:.2} · recall {:.2}",
        snap.windows, snap.batches, snap.alarms, precision, recall,
    );
    if let (Some(wps), Some(lat)) = (snap.windows_per_sec(), snap.mean_latency()) {
        println!("throughput {wps:.0} windows/s · mean scoring latency {lat:?}/window");
    }
}
