//! Regenerates the geometry of the paper's **Fig. 2**: the curvature as the
//! inverse radius of the tangent (osculating) circle, on a curve with a
//! slow bend followed by a sharp one.
//!
//! ```sh
//! cargo run --release --example fig2_curvature
//! ```

use mfod::fda::prelude::*;
use mfod::geometry::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planar path that starts almost straight and then turns sharply:
    // x(t) = t, y(t) = exp-like ramp implemented in a polynomial basis.
    // y = t⁴ bends gently near 0 and hard near 1.
    let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 5)?);
    let x = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, 1.0, 0.0, 0.0, 0.0])?;
    let y = FunctionalDatum::new(basis, vec![0.0, 0.0, 0.0, 0.0, 1.0])?;
    let path = MultiFunctionalDatum::new(vec![x, y])?;

    let grid = Grid::uniform(0.0, 1.0, 21)?;
    let kappa = Curvature.map(&path, &grid)?;
    let radius = RadiusOfCurvature.map(&path, &grid)?;

    println!("# Fig. 2: curvature κ(t) and tangent-circle radius r(t) = 1/κ(t)");
    println!("{:>6} {:>12} {:>14}", "t", "kappa", "radius");
    for ((t, k), r) in grid.iter().zip(&kappa).zip(&radius) {
        println!("{t:>6.2} {k:>12.5} {r:>14.3}");
    }

    // The figure's statement: where the tangent direction changes slowly the
    // circle is large (small κ); where it turns fast the circle is small.
    let early = kappa[2]; // t = 0.1: nearly straight
    let late = kappa[18]; // t = 0.9: strong bend
    println!("\n# κ(0.1) = {early:.5} (large tangent circle)");
    println!("# κ(0.9) = {late:.5} (small tangent circle)");
    assert!(
        late > early * 3.0,
        "curvature must grow sharply along this path"
    );

    // Analytic cross-check at t where y = t⁴: κ = |y''| / (1 + y'²)^{3/2}.
    for &t in &[0.25f64, 0.5, 0.75] {
        let yp = 4.0 * t * t * t;
        let ypp = 12.0 * t * t;
        let analytic = ypp / (1.0 + yp * yp).powf(1.5);
        let j = (t * 20.0).round() as usize;
        println!("# t={t}: analytic {analytic:.5} vs mapped {:.5}", kappa[j]);
        assert!((analytic - kappa[j]).abs() < 1e-6);
    }
    println!("# OK: Eq. 5 curvature matches the analytic plane-curve formula");
    Ok(())
}
