//! Quickstart: the full geometric-aggregation pipeline on simulated ECG
//! data, start to finish.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mfod::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MfodError> {
    // 1. Data: simulated ECG beats (the paper's ECG200 stand-in), with the
    //    UFD → MFD augmentation of Sec. 4.1 (append the squared series).
    let ecg = EcgSimulator::new(EcgConfig::default())?;
    let data = ecg.generate(128, 64, 42)?.augment_with(0, |y| y * y)?;
    println!(
        "dataset: {} samples ({} normal, {} abnormal), p = {}, m = {}",
        data.len(),
        data.n_inliers(),
        data.n_outliers(),
        data.samples()[0].dim(),
        data.samples()[0].len()
    );

    // 2. Train/test split with 10% training contamination.
    let split = SplitConfig {
        train_size: 96,
        contamination: 0.10,
    };
    let (train, test) = split.split_datasets(&data, 7)?;
    println!(
        "train: {} samples ({} outliers); test: {} samples ({} outliers)",
        train.len(),
        train.n_outliers(),
        test.len(),
        test.n_outliers()
    );

    // 3. Pipeline: penalized B-spline smoothing → curvature mapping (Eq. 5)
    //    → Isolation Forest.
    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig::default(),
        Arc::new(Curvature),
        Arc::new(IsolationForest::default()),
    );
    println!("pipeline: {}", pipeline.label());
    let fitted = pipeline.fit(train.samples())?;

    // 4. Score the test set and evaluate.
    let scores = fitted.score(test.samples())?;
    let auc_value = auc(&scores, test.labels())?;
    println!("test AUC: {auc_value:.3}");

    // 5. Peek at the five most outlying test samples.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    println!("\ntop-5 most outlying test samples:");
    for &i in order.iter().take(5) {
        println!(
            "  score {:.3}  true label: {}",
            scores[i],
            if test.labels()[i] {
                "outlier"
            } else {
                "inlier"
            }
        );
    }
    Ok(())
}
