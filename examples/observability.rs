//! Runtime introspection demo: fit the pipeline, score it in parallel,
//! hot-swap it through a serving registry and stream a test split — all
//! with the `mfod-obs` recorder on — then print the metrics report.
//!
//! Run with: `MFOD_OBS=1 cargo run --release --example observability`
//! (the example force-enables the recorder when `MFOD_OBS` is unset, so
//! it is useful standalone; `MFOD_OBS=0` keeps it off to demonstrate
//! the disabled path). Knobs:
//!
//! * `MFOD_OBS_JSON=metrics.json` — dump the raw snapshot as JSON on exit
//! * `MFOD_OBS_TRACE=trace.json` — dump the event journal as Chrome
//!   trace-event JSON on exit (load it in `chrome://tracing`/Perfetto)
//! * `MFOD_OBS_HTTP=127.0.0.1:9464` — serve `/metrics` (Prometheus),
//!   `/report` and `/trace` while the demo runs
//! * `MFOD_OBS_LINGER_SECS=30` — keep the process (and the scrape
//!   endpoint) alive that many seconds after the run, so an external
//!   scraper can pull the final state (used by the CI smoke)

use mfod::persist::ModelRegistry;
use mfod::prelude::*;
use mfod_obs::{json_dump_guard, Recorder};
use mfod_stream::{BatchConfig, OnlineScorer, StreamConfig, WindowConfig};
use std::sync::Arc;

fn main() {
    // Honour an explicit MFOD_OBS setting; default to on for the demo.
    Recorder::install(std::env::var(mfod_obs::ENV_OBS).map_or(true, |v| v == "1"));
    let _dump = json_dump_guard();
    let http = Recorder::serve_from_env().expect("failed to bind MFOD_OBS_HTTP");
    if let Some(h) = &http {
        println!(
            "scrape endpoint on http://{}/ (/metrics /report /trace)",
            h.addr()
        );
    }

    // A single-core machine never engages the work-stealing pool (and so
    // records no pool metrics); nudge the demo onto the parallel path
    // unless the user pinned a thread count themselves.
    if std::env::var_os(mfod::linalg::par::THREADS_ENV).is_none() {
        std::env::set_var(mfod::linalg::par::THREADS_ENV, "2");
    }

    // ---- offline: fit once (span-traced fit phases) -------------------
    let data = EcgSimulator::new(EcgConfig {
        m: 40,
        ..Default::default()
    })
    .unwrap()
    .generate(48, 16, 2020)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap();
    let split = SplitConfig {
        train_size: 32,
        contamination: 0.1,
    };
    let (train, test) = split.split_datasets(&data, 1).unwrap();

    let fitted = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 60,
            ..Default::default()
        }),
    )
    .fit(train.samples())
    .unwrap()
    .into_shared();

    // Parallel scoring exercises the work-stealing pool and the
    // selection-plan cache.
    let train_scores = fitted.par_score(train.samples()).unwrap();
    println!(
        "fitted {} on {} training beats",
        fitted.label(),
        train.len()
    );

    // ---- serving: hot-swap through the model registry -----------------
    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    let generation = registry
        .install_bytes(&mfod::persist::to_bytes(&fitted.snapshot().unwrap()))
        .unwrap();
    println!("installed pipeline snapshot as generation {generation}");

    // ---- online: stream the test split --------------------------------
    let ts = test.samples()[0].t.clone();
    let mut scorer = OnlineScorer::new(
        Arc::clone(&fitted),
        StreamConfig {
            window: WindowConfig::tumbling(ts, 2),
            batch: BatchConfig {
                batch_size: 8,
                ..Default::default()
            },
        },
    )
    .unwrap();
    scorer.calibrate(&train_scores, 0.2).unwrap();
    let mut verdicts = Vec::new();
    for beat in test.samples() {
        for j in 0..beat.t.len() {
            let obs = [beat.channels[0][j], beat.channels[1][j]];
            verdicts.extend(scorer.push(&obs).unwrap());
        }
    }
    verdicts.extend(scorer.finish().unwrap());
    println!(
        "streamed {} beats into {} scored windows ({} alarms)\n",
        test.len(),
        verdicts.len(),
        verdicts.iter().filter(|v| v.is_outlier).count(),
    );

    // ---- report --------------------------------------------------------
    if Recorder::enabled() {
        println!("{}", Recorder::snapshot().format_report());
    } else {
        println!("recorder disabled (MFOD_OBS=0): nothing was recorded");
    }

    // Let an external scraper pull the final state before the endpoint
    // goes away (CI smoke; harmless without MFOD_OBS_HTTP).
    if let Ok(secs) = std::env::var("MFOD_OBS_LINGER_SECS") {
        if let Ok(secs) = secs.parse::<u64>() {
            println!("lingering {secs}s for scrapes...");
            std::thread::sleep(std::time::Duration::from_secs(secs));
        }
    }
    drop(http);
}
