//! Fit-once / serve-many demo: fit the paper's pipeline on simulated ECG
//! beats, snapshot it to disk, reload it in a fresh [`ModelRegistry`],
//! hot-swap the active model mid-stream, and report how much restart
//! time the snapshot saves over re-paying the LOOCV fit.
//!
//! Run with: `cargo run --release --example save_load_scoring`

use mfod::persist::ModelRegistry;
use mfod::prelude::*;
use mfod::snapshot::PipelineSnapshot;
use std::sync::Arc;
use std::time::Instant;

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {i} diverged");
    }
}

fn main() {
    // ---- fit once -----------------------------------------------------
    let data = EcgSimulator::new(EcgConfig {
        m: 40,
        ..Default::default()
    })
    .unwrap()
    .generate(48, 16, 2020)
    .unwrap()
    .augment_with(0, |y| y * y)
    .unwrap();
    let split = SplitConfig {
        train_size: 32,
        contamination: 0.1,
    };
    let (train, test) = split.split_datasets(&data, 1).unwrap();

    let pipeline = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 60,
            ..Default::default()
        }),
    );
    let t_fit = Instant::now();
    let fitted = pipeline.fit(train.samples()).unwrap().into_shared();
    let fit_time = t_fit.elapsed();
    let reference = fitted.score(test.samples()).unwrap();
    println!(
        "fitted {} on {} beats in {:.1} ms",
        fitted.label(),
        train.len(),
        fit_time.as_secs_f64() * 1e3
    );

    // ---- snapshot to disk --------------------------------------------
    let dir = std::env::temp_dir().join(format!("mfod-save-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model-001.mfod");
    let t_save = Instant::now();
    fitted.save(&path).unwrap();
    let save_time = t_save.elapsed();
    let size = std::fs::metadata(&path).unwrap().len();
    println!(
        "snapshot: {} bytes written to {} in {:.2} ms",
        size,
        path.display(),
        save_time.as_secs_f64() * 1e3
    );

    // ---- reload in a fresh registry (a "restarted serving box") ------
    let registry: ModelRegistry<FittedPipeline> = ModelRegistry::new();
    let t_load = Instant::now();
    let report = registry.load_dir(&dir).unwrap();
    let load_time = t_load.elapsed();
    let (winner, generation) = report.installed.expect("snapshot must load");
    println!(
        "registry: generation {generation} from {} in {:.2} ms \
         (refit would cost {:.1} ms → {:.0}x restart speedup)",
        winner.display(),
        load_time.as_secs_f64() * 1e3,
        fit_time.as_secs_f64() * 1e3,
        fit_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
    );

    // ---- background watcher: polls are no-ops until a file changes ---
    // `watch_dir` re-runs load_dir on an interval from its own thread;
    // when nothing new landed, the sweep hash-matches the active bytes
    // and skips the decode + restore + swap entirely, so hot-swap needs
    // no operator call at all — just drop a file in the directory.
    let registry = Arc::new(registry);
    let watcher = registry.watch_dir(&dir, std::time::Duration::from_millis(10));
    let polls_before = watcher.polls();
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while watcher.polls() < polls_before + 2 {
        assert!(
            Instant::now() < deadline,
            "watcher stopped polling within 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(registry.generation(), 1);
    println!(
        "watcher: {} no-op polls, no new snapshot → generation still 1",
        watcher.polls()
    );

    // ---- serve, hot-swapping mid-stream ------------------------------
    // First half of the "stream" scores against the reloaded generation;
    // the handle is held for the whole stream, as a scoring thread would.
    let half = test.len() / 2;
    let in_flight = registry.active().unwrap();
    let first_half = in_flight.score(&test.samples()[..half]).unwrap();

    // An operator drops a genuinely new generation in (a refit with a
    // smaller forest); the *watcher* notices and swaps it atomically —
    // the in-flight handle is untouched and nobody called the registry.
    let gen2 = GeomOutlierPipeline::new(
        PipelineConfig::fast(),
        Arc::new(Curvature),
        Arc::new(IsolationForest {
            n_trees: 30,
            ..Default::default()
        }),
    )
    .fit(train.samples())
    .unwrap();
    let snapshot: PipelineSnapshot = gen2.snapshot().unwrap();
    mfod::persist::save(&snapshot, &dir.join("model-002.mfod")).unwrap();
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while registry.generation() < 2 {
        assert!(
            Instant::now() < deadline,
            "watcher failed to install model-002 within 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    println!(
        "hot-swap: generation {} now active, installed by the watcher \
         (poll #{}) with no operator call",
        registry.generation(),
        watcher.polls()
    );
    watcher.stop();

    // The in-flight stream finishes on the generation it started with…
    let second_half = in_flight.score(&test.samples()[half..]).unwrap();
    // …while fresh batches score on the new one.
    let fresh = registry.active().unwrap().score(test.samples()).unwrap();
    let auc_fresh = mfod::eval::auc(&fresh, test.labels()).unwrap();

    // ---- verify bit-exactness end to end -----------------------------
    let mut streamed = first_half;
    streamed.extend(second_half);
    assert_bits_eq(
        &reference,
        &streamed,
        "in-flight stream across the hot-swap",
    );
    let auc = mfod::eval::auc(&streamed, test.labels()).unwrap();
    println!(
        "verified: {} test scores bit-identical to the in-memory fit across \
         save → reload → hot-swap (in-flight AUC {auc:.3}, new generation AUC {auc_fresh:.3})",
        streamed.len()
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
