//! Property-based tests for the geometric mapping functions.

use mfod_fda::prelude::*;
use mfod_geometry::curvature::curvature_from_derivatives;
use mfod_geometry::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Random smooth bivariate path from low-order polynomial channels.
fn poly_path() -> impl Strategy<Value = MultiFunctionalDatum> {
    (
        prop::collection::vec(-3.0..3.0f64, 4),
        prop::collection::vec(-3.0..3.0f64, 4),
    )
        .prop_map(|(cx, cy)| {
            let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 4).unwrap());
            let x = FunctionalDatum::new(Arc::clone(&basis), cx).unwrap();
            let y = FunctionalDatum::new(basis, cy).unwrap();
            MultiFunctionalDatum::new(vec![x, y]).unwrap()
        })
}

proptest! {
    #[test]
    fn curvature_nonnegative(path in poly_path()) {
        let grid = Grid::uniform(0.0, 1.0, 21).unwrap();
        let k = Curvature.map(&path, &grid).unwrap();
        prop_assert!(k.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn eq5_equals_closed_form(path in poly_path()) {
        let grid = Grid::uniform(0.0, 1.0, 17).unwrap();
        let k1 = Curvature.map(&path, &grid).unwrap();
        let k2 = CurvatureEq5.map(&path, &grid).unwrap();
        for (a, b) in k1.iter().zip(&k2) {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn curvature_invariant_to_rigid_motion(
        path in poly_path(),
        angle in 0.0..std::f64::consts::TAU,
        dx in -5.0..5.0f64,
        dy in -5.0..5.0f64,
    ) {
        // Rotate + translate the path: curvature must be unchanged.
        let (c, s) = (angle.cos(), angle.sin());
        let grid = Grid::uniform(0.0, 1.0, 13).unwrap();
        let k_orig = Curvature.map(&path, &grid).unwrap();

        // Rebuild rotated channels in the same polynomial basis: rotation is
        // linear so coefficients rotate likewise; translation shifts the
        // constant coefficient.
        let cx = path.channels()[0].coefs();
        let cy = path.channels()[1].coefs();
        let mut rx: Vec<f64> = (0..4).map(|i| c * cx[i] - s * cy[i]).collect();
        let mut ry: Vec<f64> = (0..4).map(|i| s * cx[i] + c * cy[i]).collect();
        rx[0] += dx;
        ry[0] += dy;
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 4).unwrap());
        let x = FunctionalDatum::new(Arc::clone(&basis), rx).unwrap();
        let y = FunctionalDatum::new(basis, ry).unwrap();
        let moved = MultiFunctionalDatum::new(vec![x, y]).unwrap();
        let k_moved = Curvature.map(&moved, &grid).unwrap();
        for (a, b) in k_orig.iter().zip(&k_moved) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn curvature_scales_inversely(path in poly_path(), scale in 0.5..4.0f64) {
        let grid = Grid::uniform(0.0, 1.0, 13).unwrap();
        let k_orig = Curvature.map(&path, &grid).unwrap();
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 4).unwrap());
        let sx: Vec<f64> = path.channels()[0].coefs().iter().map(|v| v * scale).collect();
        let sy: Vec<f64> = path.channels()[1].coefs().iter().map(|v| v * scale).collect();
        let x = FunctionalDatum::new(Arc::clone(&basis), sx).unwrap();
        let y = FunctionalDatum::new(basis, sy).unwrap();
        let scaled = MultiFunctionalDatum::new(vec![x, y]).unwrap();
        let k_scaled = Curvature.map(&scaled, &grid).unwrap();
        for (a, b) in k_orig.iter().zip(&k_scaled) {
            // κ(cX) = κ(X)/c wherever the speed is not degenerate
            if *a > 1e-6 {
                prop_assert!((a / scale - b).abs() < 1e-5 * (1.0 + a.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn pointwise_curvature_triangle(v in prop::collection::vec(-5.0..5.0f64, 3),
                                    a in prop::collection::vec(-5.0..5.0f64, 3)) {
        let k = curvature_from_derivatives(&v, &a);
        prop_assert!(k >= 0.0);
        prop_assert!(k.is_finite());
        // bound: κ <= ‖a‖ / ‖v‖²
        let vn = mfod_linalg::vector::norm2(&v);
        let an = mfod_linalg::vector::norm2(&a);
        if vn > 1e-6 {
            prop_assert!(k <= an / (vn * vn) + 1e-9);
        }
    }

    #[test]
    fn arc_length_monotone_and_additive(path in poly_path()) {
        let grid = Grid::uniform(0.0, 1.0, 41).unwrap();
        let l = ArcLength.map(&path, &grid).unwrap();
        prop_assert_eq!(l[0], 0.0);
        for w in l.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        // arc length >= straight-line distance between endpoints
        let p0 = path.eval_point(0.0);
        let p1 = path.eval_point(1.0);
        let chord = mfod_linalg::vector::dist2(&p0, &p1);
        prop_assert!(l[40] >= chord - 1e-6, "arc {} < chord {chord}", l[40]);
    }

    #[test]
    fn speed_matches_arc_length_derivative(path in poly_path()) {
        // finite-difference the cumulative arc length and compare to speed
        let grid = Grid::uniform(0.0, 1.0, 201).unwrap();
        let l = ArcLength.map(&path, &grid).unwrap();
        let s = Speed.map(&path, &grid).unwrap();
        let h = 1.0 / 200.0;
        for j in 1..200 {
            // near-stationary points the speed is non-smooth (norm kink), so
            // the finite difference is unreliable there — skip them
            if s[j] < 0.1 {
                continue;
            }
            let fd = (l[j + 1] - l[j - 1]) / (2.0 * h);
            prop_assert!((fd - s[j]).abs() < 0.05 * (1.0 + s[j]), "j={j}");
        }
    }
}
