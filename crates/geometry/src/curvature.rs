//! Curvature mapping functions (Eq. 5 of the paper).
//!
//! The curvature of a path `X(t) ∈ R^p` measures how quickly the unit
//! tangent changes direction relative to the distance travelled. Two
//! algebraically equivalent implementations are provided:
//!
//! * [`Curvature`] — the closed form
//!   `κ = √(‖X′‖²‖X″‖² − (X′·X″)²) / ‖X′‖³`, preferred in the pipeline
//!   (one fused expression, no intermediate normalization), and
//! * [`CurvatureEq5`] — the paper's definitional form
//!   `κ = ‖D¹(D¹X/‖D¹X‖)‖ / ‖D¹X‖`, expanding the derivative of the unit
//!   tangent as `T′ = X″/‖X′‖ − X′·(X′ᵀX″)/‖X′‖³`.
//!
//! **Stationary-point convention.** Where `‖X′(t)‖ < SPEED_EPS` the
//! curvature is undefined; both mappings return `0` there. This matches the
//! use in the paper: a stationary point of a *smoothed* path is a
//! measure-zero event and the downstream detector consumes grid samples.

use crate::mapping::{MappingFunction, SPEED_EPS};
use crate::{GeometryError, Result};
use mfod_fda::{Grid, MultiFunctionalDatum};
use mfod_linalg::vector;

/// Closed-form curvature `κ = √(‖X′‖²‖X″‖² − (X′·X″)²) / ‖X′‖³`.
///
/// Requires `p >= 2`: a path in `R¹` is a straight line whose curvature is
/// identically zero, so mapping it is almost surely a bug (augment the
/// sample first, as the paper does with the squared channel).
#[derive(Debug, Clone, Copy, Default)]
pub struct Curvature;

/// Curvature at a point given velocity `v = X′` and acceleration `a = X″`.
///
/// Exposed for reuse by [`RadiusOfCurvature`], tests and benchmarks.
pub fn curvature_from_derivatives(v: &[f64], a: &[f64]) -> f64 {
    let speed_sq = vector::dot(v, v);
    let speed = speed_sq.sqrt();
    if speed < SPEED_EPS {
        return 0.0;
    }
    let acc_sq = vector::dot(a, a);
    let va = vector::dot(v, a);
    // Lagrange identity: ‖v‖²‖a‖² − (v·a)² = ‖v × a‖² >= 0; clamp the
    // floating-point residual.
    let cross_sq = (speed_sq * acc_sq - va * va).max(0.0);
    cross_sq.sqrt() / (speed_sq * speed)
}

impl MappingFunction for Curvature {
    fn name(&self) -> &'static str {
        "curvature"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::Curvature)
    }

    fn min_dim(&self) -> usize {
        2
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        self.check_dim(datum)?;
        let mut out = Vec::with_capacity(grid.len());
        for t in grid.iter() {
            let v = datum.eval_deriv_point(t, 1);
            let a = datum.eval_deriv_point(t, 2);
            out.push(curvature_from_derivatives(&v, &a));
        }
        if !vector::all_finite(&out) {
            return Err(GeometryError::NonFinite);
        }
        Ok(out)
    }
}

/// Definitional curvature, Eq. 5 of the paper: the norm of the derivative
/// of the unit tangent, scaled by the speed.
///
/// `T′` is expanded analytically (quotient rule on `X′/‖X′‖`), so this is
/// exact, not a finite difference. Kept separate from [`Curvature`] to
/// document and test the equivalence of the two formulations.
#[derive(Debug, Clone, Copy, Default)]
pub struct CurvatureEq5;

impl MappingFunction for CurvatureEq5 {
    fn name(&self) -> &'static str {
        "curvature-eq5"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::CurvatureEq5)
    }

    fn min_dim(&self) -> usize {
        2
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        self.check_dim(datum)?;
        let mut out = Vec::with_capacity(grid.len());
        for t in grid.iter() {
            let v = datum.eval_deriv_point(t, 1);
            let a = datum.eval_deriv_point(t, 2);
            let speed = vector::norm2(&v);
            if speed < SPEED_EPS {
                out.push(0.0);
                continue;
            }
            // T' = a/‖v‖ − v (v·a)/‖v‖³
            let va = vector::dot(&v, &a);
            let mut tprime: Vec<f64> = a.iter().map(|ai| ai / speed).collect();
            let coef = va / (speed * speed * speed);
            for (tp, vi) in tprime.iter_mut().zip(&v) {
                *tp -= coef * vi;
            }
            out.push(vector::norm2(&tprime) / speed);
        }
        if !vector::all_finite(&out) {
            return Err(GeometryError::NonFinite);
        }
        Ok(out)
    }
}

/// Radius of the osculating (tangent) circle, `r = 1/κ` (Fig. 2 of the
/// paper), capped at `1/SPEED_EPS` where the path is locally straight.
#[derive(Debug, Clone, Copy, Default)]
pub struct RadiusOfCurvature;

impl MappingFunction for RadiusOfCurvature {
    fn name(&self) -> &'static str {
        "radius-of-curvature"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::RadiusOfCurvature)
    }

    fn min_dim(&self) -> usize {
        2
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        self.check_dim(datum)?;
        let kappa = Curvature.map(datum, grid)?;
        Ok(kappa
            .into_iter()
            .map(|k| {
                if k < SPEED_EPS {
                    1.0 / SPEED_EPS
                } else {
                    1.0 / k
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_fda::prelude::*;
    use std::sync::Arc;

    /// Builds the circle of radius `r` traversed once on [0, 1] as a
    /// bivariate functional datum via the Fourier basis.
    pub(crate) fn circle(r: f64) -> MultiFunctionalDatum {
        // Orthonormal Fourier on [0,1]: φ₁ = √2 sin(2πt), φ₂ = √2 cos(2πt).
        let basis: Arc<dyn Basis> = Arc::new(FourierBasis::new(0.0, 1.0, 3).unwrap());
        let amp = r / 2.0_f64.sqrt();
        let x = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, 0.0, amp]).unwrap();
        let y = FunctionalDatum::new(basis, vec![0.0, amp, 0.0]).unwrap();
        MultiFunctionalDatum::new(vec![x, y]).unwrap()
    }

    /// Straight line path (x, y) = (t, 2t + 1).
    fn line() -> MultiFunctionalDatum {
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let x = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, 1.0]).unwrap();
        let y = FunctionalDatum::new(basis, vec![1.0, 2.0]).unwrap();
        MultiFunctionalDatum::new(vec![x, y]).unwrap()
    }

    #[test]
    fn circle_curvature_is_inverse_radius() {
        let grid = Grid::uniform(0.0, 1.0, 33).unwrap();
        for &r in &[0.5, 1.0, 2.0, 10.0] {
            let k = Curvature.map(&circle(r), &grid).unwrap();
            for &ki in &k {
                assert!((ki - 1.0 / r).abs() < 1e-8, "r={r}: κ={ki}");
            }
        }
    }

    #[test]
    fn line_curvature_is_zero() {
        let grid = Grid::uniform(0.0, 1.0, 17).unwrap();
        let k = Curvature.map(&line(), &grid).unwrap();
        assert!(k.iter().all(|&ki| ki.abs() < 1e-10), "{k:?}");
    }

    #[test]
    fn eq5_matches_closed_form() {
        let grid = Grid::uniform(0.0, 1.0, 25).unwrap();
        let datum = circle(1.5);
        let k1 = Curvature.map(&datum, &grid).unwrap();
        let k2 = CurvatureEq5.map(&datum, &grid).unwrap();
        for (a, b) in k1.iter().zip(&k2) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn curvature_is_parametrization_dependent_scaling_invariant() {
        // Scaling the whole path by c scales curvature by 1/c.
        let grid = Grid::uniform(0.0, 1.0, 9).unwrap();
        let k1 = Curvature.map(&circle(1.0), &grid).unwrap();
        let k3 = Curvature.map(&circle(3.0), &grid).unwrap();
        for (a, b) in k1.iter().zip(&k3) {
            assert!((a / 3.0 - b).abs() < 1e-8);
        }
    }

    #[test]
    fn radius_of_curvature_inverts() {
        let grid = Grid::uniform(0.0, 1.0, 9).unwrap();
        let r = RadiusOfCurvature.map(&circle(2.0), &grid).unwrap();
        assert!(r.iter().all(|&ri| (ri - 2.0).abs() < 1e-7), "{r:?}");
        // straight line => capped radius
        let r = RadiusOfCurvature.map(&line(), &grid).unwrap();
        assert!(r.iter().all(|&ri| ri == 1.0 / SPEED_EPS));
    }

    #[test]
    fn univariate_input_rejected() {
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let x = FunctionalDatum::new(basis, vec![0.0, 1.0]).unwrap();
        let uni = MultiFunctionalDatum::from_univariate(x);
        let grid = Grid::uniform(0.0, 1.0, 5).unwrap();
        assert!(matches!(
            Curvature.map(&uni, &grid),
            Err(GeometryError::DimensionUnsupported { .. })
        ));
    }

    #[test]
    fn stationary_path_maps_to_zero() {
        // constant path: X(t) = (1, 1): speed 0 everywhere
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let c = FunctionalDatum::new(Arc::clone(&basis), vec![1.0, 0.0]).unwrap();
        let datum = MultiFunctionalDatum::new(vec![c.clone(), c]).unwrap();
        let grid = Grid::uniform(0.0, 1.0, 5).unwrap();
        let k = Curvature.map(&datum, &grid).unwrap();
        assert!(k.iter().all(|&ki| ki == 0.0));
        let k = CurvatureEq5.map(&datum, &grid).unwrap();
        assert!(k.iter().all(|&ki| ki == 0.0));
    }

    #[test]
    fn pointwise_helper_known_values() {
        // planar: v = (1, 0), a = (0, 1) → κ = 1
        assert!((curvature_from_derivatives(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        // v = (2, 0), a = (0, 1): κ = ‖v×a‖/‖v‖³ = 2/8 = 0.25
        assert!((curvature_from_derivatives(&[2.0, 0.0], &[0.0, 1.0]) - 0.25).abs() < 1e-12);
        // parallel v, a → 0
        assert_eq!(curvature_from_derivatives(&[1.0, 1.0], &[2.0, 2.0]), 0.0);
        // zero velocity → 0 by convention
        assert_eq!(curvature_from_derivatives(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn helix_curvature_in_3d() {
        // Helix (cos ωt, sin ωt, ct) has κ = ω²r/(ω²r² + c²) with r = 1.
        // Build with Fourier (periodic channels) + polynomial z … simpler:
        // evaluate the helper directly at analytic derivatives.
        let omega = std::f64::consts::TAU;
        let c = 0.5;
        for i in 0..8 {
            let t = i as f64 / 8.0;
            let v = [-omega * (omega * t).sin(), omega * (omega * t).cos(), c];
            let a = [
                -omega * omega * (omega * t).cos(),
                -omega * omega * (omega * t).sin(),
                0.0,
            ];
            let k = curvature_from_derivatives(&v, &a);
            let expect = omega * omega / (omega * omega + c * c);
            assert!((k - expect).abs() < 1e-9, "t={t}");
        }
    }
}
