//! Kinematic mapping functions: speed, log-speed, arc length, acceleration
//! magnitude and planar turning angle.
//!
//! These complement the curvature mapping: speed-type mappings are sensitive
//! to *magnitude/isolated* outlyingness (a spike changes `‖X′‖` sharply),
//! while arc length accumulates persistent deviations — together they cover
//! the Hubert et al. taxonomy discussed in Sec. 1.1 of the paper.

use crate::mapping::{MappingFunction, SPEED_EPS};
use crate::{GeometryError, Result};
use mfod_fda::{Grid, MultiFunctionalDatum};
use mfod_linalg::vector;

/// Speed mapping `s(t) = ‖D¹X(t)‖`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Speed;

impl MappingFunction for Speed {
    fn name(&self) -> &'static str {
        "speed"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::Speed)
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        self.check_dim(datum)?;
        let out: Vec<f64> = grid
            .iter()
            .map(|t| vector::norm2(&datum.eval_deriv_point(t, 1)))
            .collect();
        if !vector::all_finite(&out) {
            return Err(GeometryError::NonFinite);
        }
        Ok(out)
    }
}

/// Log-speed mapping `log(‖D¹X(t)‖ + ε)`, a variance-stabilized speed
/// useful when speeds span orders of magnitude.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogSpeed;

impl MappingFunction for LogSpeed {
    fn name(&self) -> &'static str {
        "log-speed"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::LogSpeed)
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        let speed = Speed.map(datum, grid)?;
        Ok(speed.into_iter().map(|s| (s + SPEED_EPS).ln()).collect())
    }
}

/// Cumulative arc length `ℓ(t) = ∫ₐᵗ ‖D¹X(u)‖ du` (trapezoidal on the
/// grid), a monotone mapping that accumulates persistent deviations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArcLength;

impl MappingFunction for ArcLength {
    fn name(&self) -> &'static str {
        "arc-length"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::ArcLength)
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        let speed = Speed.map(datum, grid)?;
        Ok(vector::cumtrapz(grid.points(), &speed))
    }
}

/// Acceleration-magnitude mapping `‖D²X(t)‖`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Acceleration;

impl MappingFunction for Acceleration {
    fn name(&self) -> &'static str {
        "acceleration"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::Acceleration)
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        self.check_dim(datum)?;
        let out: Vec<f64> = grid
            .iter()
            .map(|t| vector::norm2(&datum.eval_deriv_point(t, 2)))
            .collect();
        if !vector::all_finite(&out) {
            return Err(GeometryError::NonFinite);
        }
        Ok(out)
    }
}

/// Norm of the square-root velocity function (SRVF) of shape analysis
/// (Srivastava & Klassen, *Functional and Shape Data Analysis* — the
/// paper's reference \[15\]): `‖q(t)‖ = ‖X′(t)‖ / √‖X′(t)‖ = √‖X′(t)‖`.
///
/// The SRVF is the representation under which the elastic (Fisher–Rao)
/// metric becomes the plain L² metric, so distances between mapped curves
/// approximate elastic shape distances — a principled alternative feature
/// for the detector stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct SrvfNorm;

impl MappingFunction for SrvfNorm {
    fn name(&self) -> &'static str {
        "srvf-norm"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::SrvfNorm)
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        let speed = Speed.map(datum, grid)?;
        Ok(speed.into_iter().map(f64::sqrt).collect())
    }
}

/// Planar turning angle `θ(t) = atan2(x₂′(t), x₁′(t))`, unwrapped to be
/// continuous. Only defined for `p = 2`; where the speed vanishes the last
/// well-defined angle is carried forward.
#[derive(Debug, Clone, Copy, Default)]
pub struct TurningAngle;

impl MappingFunction for TurningAngle {
    fn name(&self) -> &'static str {
        "turning-angle"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::TurningAngle)
    }

    fn min_dim(&self) -> usize {
        2
    }

    fn max_dim(&self) -> usize {
        2
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        self.check_dim(datum)?;
        let mut out = Vec::with_capacity(grid.len());
        let mut prev_raw: Option<f64> = None;
        let mut offset = 0.0;
        let mut last = 0.0;
        for t in grid.iter() {
            let v = datum.eval_deriv_point(t, 1);
            let angle = if vector::norm2(&v) < SPEED_EPS {
                last // carry the last well-defined angle forward
            } else {
                let raw = v[1].atan2(v[0]);
                if let Some(p) = prev_raw {
                    // unwrap: keep |Δθ| <= π by adding multiples of 2π
                    let mut d = raw - p;
                    while d > std::f64::consts::PI {
                        d -= std::f64::consts::TAU;
                        offset -= std::f64::consts::TAU;
                    }
                    while d < -std::f64::consts::PI {
                        d += std::f64::consts::TAU;
                        offset += std::f64::consts::TAU;
                    }
                }
                prev_raw = Some(raw);
                raw + offset
            };
            last = angle;
            out.push(angle);
        }
        if !vector::all_finite(&out) {
            return Err(GeometryError::NonFinite);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_fda::prelude::*;
    use std::sync::Arc;

    fn line(slope_x: f64, slope_y: f64) -> MultiFunctionalDatum {
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let x = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, slope_x]).unwrap();
        let y = FunctionalDatum::new(basis, vec![0.0, slope_y]).unwrap();
        MultiFunctionalDatum::new(vec![x, y]).unwrap()
    }

    fn circle(r: f64) -> MultiFunctionalDatum {
        let basis: Arc<dyn Basis> = Arc::new(FourierBasis::new(0.0, 1.0, 3).unwrap());
        let amp = r / 2.0_f64.sqrt();
        let x = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, 0.0, amp]).unwrap();
        let y = FunctionalDatum::new(basis, vec![0.0, amp, 0.0]).unwrap();
        MultiFunctionalDatum::new(vec![x, y]).unwrap()
    }

    #[test]
    fn speed_of_line_is_constant() {
        let grid = Grid::uniform(0.0, 1.0, 11).unwrap();
        let s = Speed.map(&line(3.0, 4.0), &grid).unwrap();
        assert!(s.iter().all(|&v| (v - 5.0).abs() < 1e-10), "{s:?}");
    }

    #[test]
    fn speed_of_circle_is_circumference_rate() {
        // circle of radius r traversed once in unit time: speed = 2πr
        let grid = Grid::uniform(0.0, 1.0, 11).unwrap();
        let s = Speed.map(&circle(2.0), &grid).unwrap();
        let expect = std::f64::consts::TAU * 2.0;
        assert!(s.iter().all(|&v| (v - expect).abs() < 1e-8), "{s:?}");
    }

    #[test]
    fn log_speed_is_log_of_speed() {
        let grid = Grid::uniform(0.0, 1.0, 5).unwrap();
        let datum = line(3.0, 4.0);
        let s = Speed.map(&datum, &grid).unwrap();
        let ls = LogSpeed.map(&datum, &grid).unwrap();
        for (a, b) in s.iter().zip(&ls) {
            assert!(((a + SPEED_EPS).ln() - b).abs() < 1e-12);
        }
    }

    #[test]
    fn arc_length_of_line_is_distance() {
        let grid = Grid::uniform(0.0, 1.0, 101).unwrap();
        let l = ArcLength.map(&line(3.0, 4.0), &grid).unwrap();
        assert_eq!(l[0], 0.0);
        assert!((l[100] - 5.0).abs() < 1e-9);
        // monotone non-decreasing
        for w in l.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn arc_length_of_circle_is_circumference() {
        let grid = Grid::uniform(0.0, 1.0, 201).unwrap();
        let l = ArcLength.map(&circle(1.0), &grid).unwrap();
        assert!((l[200] - std::f64::consts::TAU).abs() < 1e-6, "{}", l[200]);
    }

    #[test]
    fn acceleration_of_line_is_zero() {
        let grid = Grid::uniform(0.0, 1.0, 7).unwrap();
        let a = Acceleration.map(&line(1.0, 2.0), &grid).unwrap();
        assert!(a.iter().all(|&v| v.abs() < 1e-10));
    }

    #[test]
    fn acceleration_of_circle_is_centripetal() {
        // ‖a‖ = ω²r with ω = 2π, r = 1
        let grid = Grid::uniform(0.0, 1.0, 7).unwrap();
        let a = Acceleration.map(&circle(1.0), &grid).unwrap();
        let expect = std::f64::consts::TAU * std::f64::consts::TAU;
        assert!(a.iter().all(|&v| (v - expect).abs() < 1e-7), "{a:?}");
    }

    #[test]
    fn turning_angle_of_line_is_constant() {
        let grid = Grid::uniform(0.0, 1.0, 9).unwrap();
        let th = TurningAngle.map(&line(1.0, 1.0), &grid).unwrap();
        let expect = std::f64::consts::FRAC_PI_4;
        assert!(th.iter().all(|&v| (v - expect).abs() < 1e-10), "{th:?}");
    }

    #[test]
    fn turning_angle_of_circle_unwraps_continuously() {
        // Full traversal of a circle turns the tangent by 2π total without
        // jumps larger than the grid step would imply.
        let grid = Grid::uniform(0.0, 1.0, 101).unwrap();
        let th = TurningAngle.map(&circle(1.0), &grid).unwrap();
        let total = th[100] - th[0];
        assert!(
            (total.abs() - std::f64::consts::TAU).abs() < 1e-6,
            "total {total}"
        );
        for w in th.windows(2) {
            assert!((w[1] - w[0]).abs() < 0.2, "jump {}", (w[1] - w[0]).abs());
        }
    }

    #[test]
    fn turning_angle_requires_exactly_2d() {
        let grid = Grid::uniform(0.0, 1.0, 5).unwrap();
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let c = FunctionalDatum::new(basis, vec![0.0, 1.0]).unwrap();
        let tri = MultiFunctionalDatum::new(vec![c.clone(), c.clone(), c]).unwrap();
        assert!(matches!(
            TurningAngle.map(&tri, &grid),
            Err(GeometryError::DimensionUnsupported { .. })
        ));
    }

    #[test]
    fn srvf_norm_is_sqrt_speed() {
        let grid = Grid::uniform(0.0, 1.0, 7).unwrap();
        let datum = line(3.0, 4.0);
        let q = SrvfNorm.map(&datum, &grid).unwrap();
        // ‖X′‖ = 5 everywhere ⇒ ‖q‖ = √5
        assert!(
            q.iter().all(|&v| (v - 5.0f64.sqrt()).abs() < 1e-10),
            "{q:?}"
        );
        // circle of radius r: speed 2πr ⇒ √(2πr)
        let q = SrvfNorm.map(&circle(2.0), &grid).unwrap();
        let expect = (std::f64::consts::TAU * 2.0).sqrt();
        assert!(q.iter().all(|&v| (v - expect).abs() < 1e-7));
        assert_eq!(SrvfNorm.name(), "srvf-norm");
    }

    #[test]
    fn speed_works_for_univariate() {
        let grid = Grid::uniform(0.0, 1.0, 5).unwrap();
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let c = FunctionalDatum::new(basis, vec![0.0, -2.0]).unwrap();
        let uni = MultiFunctionalDatum::from_univariate(c);
        let s = Speed.map(&uni, &grid).unwrap();
        assert!(s.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }
}
