//! Snapshot forms of the mapping functions.
//!
//! Mappings are trait objects inside a fitted pipeline, so persistence
//! goes through the concrete tagged union [`MappingSnapshot`], produced
//! by the [`MappingFunction::snapshot`] hook. Every mapping shipped by
//! this crate opts in; a custom mapping that keeps the default `None`
//! fails with a typed error at snapshot time instead of writing a model
//! it could never restore. All shipped mappings are pure functions of
//! their (few) parameters, so restore is trivially bit-faithful.

use crate::component::ComponentMapping;
use crate::curvature::{Curvature, CurvatureEq5, RadiusOfCurvature};
use crate::kinematics::{Acceleration, ArcLength, LogSpeed, Speed, SrvfNorm, TurningAngle};
use crate::mapping::MappingFunction;
use crate::torsion::Torsion;
use crate::{GeometryError, Result};
use mfod_persist::{Decode, Decoder, Encode, Encoder, PersistError};
use std::sync::Arc;

/// Concrete, persistable form of every mapping shipped by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingSnapshot {
    /// [`Curvature`] (closed form).
    Curvature,
    /// [`CurvatureEq5`] (definitional form).
    CurvatureEq5,
    /// [`RadiusOfCurvature`].
    RadiusOfCurvature,
    /// [`Speed`].
    Speed,
    /// [`LogSpeed`].
    LogSpeed,
    /// [`ArcLength`].
    ArcLength,
    /// [`Acceleration`].
    Acceleration,
    /// [`SrvfNorm`].
    SrvfNorm,
    /// [`TurningAngle`].
    TurningAngle,
    /// [`Torsion`].
    Torsion,
    /// [`ComponentMapping`] with its channel and derivative order.
    Component {
        /// Extracted channel index.
        channel: usize,
        /// Derivative order.
        deriv: usize,
    },
}

impl MappingSnapshot {
    /// Rebuilds the live mapping.
    pub fn restore(&self) -> Arc<dyn MappingFunction> {
        match *self {
            MappingSnapshot::Curvature => Arc::new(Curvature),
            MappingSnapshot::CurvatureEq5 => Arc::new(CurvatureEq5),
            MappingSnapshot::RadiusOfCurvature => Arc::new(RadiusOfCurvature),
            MappingSnapshot::Speed => Arc::new(Speed),
            MappingSnapshot::LogSpeed => Arc::new(LogSpeed),
            MappingSnapshot::ArcLength => Arc::new(ArcLength),
            MappingSnapshot::Acceleration => Arc::new(Acceleration),
            MappingSnapshot::SrvfNorm => Arc::new(SrvfNorm),
            MappingSnapshot::TurningAngle => Arc::new(TurningAngle),
            MappingSnapshot::Torsion => Arc::new(Torsion),
            MappingSnapshot::Component { channel, deriv } => {
                Arc::new(ComponentMapping::derivative(channel, deriv))
            }
        }
    }
}

/// Takes the snapshot of a dyn mapping, failing with a typed error when
/// the implementation does not support persistence.
pub fn snapshot_mapping(mapping: &dyn MappingFunction) -> Result<MappingSnapshot> {
    mapping
        .snapshot()
        .ok_or_else(|| GeometryError::Unsupported {
            mapping: mapping.name(),
            what: "snapshots",
        })
}

const TAG_CURVATURE: u32 = 1;
const TAG_CURVATURE_EQ5: u32 = 2;
const TAG_RADIUS: u32 = 3;
const TAG_SPEED: u32 = 4;
const TAG_LOG_SPEED: u32 = 5;
const TAG_ARC_LENGTH: u32 = 6;
const TAG_ACCELERATION: u32 = 7;
const TAG_SRVF_NORM: u32 = 8;
const TAG_TURNING_ANGLE: u32 = 9;
const TAG_TORSION: u32 = 10;
const TAG_COMPONENT: u32 = 11;

impl Encode for MappingSnapshot {
    fn encode(&self, w: &mut Encoder) {
        match *self {
            MappingSnapshot::Curvature => w.put_u32(TAG_CURVATURE),
            MappingSnapshot::CurvatureEq5 => w.put_u32(TAG_CURVATURE_EQ5),
            MappingSnapshot::RadiusOfCurvature => w.put_u32(TAG_RADIUS),
            MappingSnapshot::Speed => w.put_u32(TAG_SPEED),
            MappingSnapshot::LogSpeed => w.put_u32(TAG_LOG_SPEED),
            MappingSnapshot::ArcLength => w.put_u32(TAG_ARC_LENGTH),
            MappingSnapshot::Acceleration => w.put_u32(TAG_ACCELERATION),
            MappingSnapshot::SrvfNorm => w.put_u32(TAG_SRVF_NORM),
            MappingSnapshot::TurningAngle => w.put_u32(TAG_TURNING_ANGLE),
            MappingSnapshot::Torsion => w.put_u32(TAG_TORSION),
            MappingSnapshot::Component { channel, deriv } => {
                w.put_u32(TAG_COMPONENT);
                w.put_usize(channel);
                w.put_usize(deriv);
            }
        }
    }
}

impl Decode for MappingSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(match r.take_u32()? {
            TAG_CURVATURE => MappingSnapshot::Curvature,
            TAG_CURVATURE_EQ5 => MappingSnapshot::CurvatureEq5,
            TAG_RADIUS => MappingSnapshot::RadiusOfCurvature,
            TAG_SPEED => MappingSnapshot::Speed,
            TAG_LOG_SPEED => MappingSnapshot::LogSpeed,
            TAG_ARC_LENGTH => MappingSnapshot::ArcLength,
            TAG_ACCELERATION => MappingSnapshot::Acceleration,
            TAG_SRVF_NORM => MappingSnapshot::SrvfNorm,
            TAG_TURNING_ANGLE => MappingSnapshot::TurningAngle,
            TAG_TORSION => MappingSnapshot::Torsion,
            TAG_COMPONENT => MappingSnapshot::Component {
                channel: r.take_usize()?,
                deriv: r.take_usize()?,
            },
            tag => {
                return Err(PersistError::UnknownTag {
                    what: "mapping",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<MappingSnapshot> {
        vec![
            MappingSnapshot::Curvature,
            MappingSnapshot::CurvatureEq5,
            MappingSnapshot::RadiusOfCurvature,
            MappingSnapshot::Speed,
            MappingSnapshot::LogSpeed,
            MappingSnapshot::ArcLength,
            MappingSnapshot::Acceleration,
            MappingSnapshot::SrvfNorm,
            MappingSnapshot::TurningAngle,
            MappingSnapshot::Torsion,
            MappingSnapshot::Component {
                channel: 1,
                deriv: 2,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips_and_restores() {
        for snap in all_variants() {
            let mut w = Encoder::new();
            snap.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Decoder::new(&bytes);
            let back = MappingSnapshot::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(snap, back);
            let live = back.restore();
            // the hook and the restore agree: snapshot(restore(s)) == s
            assert_eq!(live.snapshot(), Some(snap));
        }
    }

    #[test]
    fn component_parameters_survive() {
        let m = ComponentMapping::derivative(3, 1);
        let snap = snapshot_mapping(&m).unwrap();
        let live = snap.restore();
        assert_eq!(live.name(), "component");
        assert_eq!(
            live.snapshot(),
            Some(MappingSnapshot::Component {
                channel: 3,
                deriv: 1
            })
        );
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut w = Encoder::new();
        w.put_u32(0xDEAD);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            MappingSnapshot::decode(&mut r),
            Err(PersistError::UnknownTag {
                what: "mapping",
                ..
            })
        ));
    }

    #[test]
    fn custom_mapping_without_hook_fails_typed() {
        struct Custom;
        impl MappingFunction for Custom {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn map(
                &self,
                _datum: &mfod_fda::MultiFunctionalDatum,
                grid: &mfod_fda::Grid,
            ) -> Result<Vec<f64>> {
                Ok(vec![0.0; grid.len()])
            }
        }
        assert!(matches!(
            snapshot_mapping(&Custom),
            Err(GeometryError::Unsupported { .. })
        ));
    }
}
