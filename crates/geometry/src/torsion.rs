//! Torsion mapping for space curves (`p = 3`).

use crate::mapping::{MappingFunction, SPEED_EPS};
use crate::{GeometryError, Result};
use mfod_fda::{Grid, MultiFunctionalDatum};
use mfod_linalg::vector;

/// Torsion `τ(t) = ((X′ × X″) · X‴) / ‖X′ × X″‖²` of a path in `R³`: the
/// rate at which the curve leaves its osculating plane. Planar curves have
/// zero torsion; by convention points where `‖X′ × X″‖ < SPEED_EPS`
/// (straight segments) also map to zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct Torsion;

/// Cross product of two 3-vectors.
fn cross3(a: &[f64], b: &[f64]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// Torsion at a point from the first three derivatives — exposed for tests.
pub fn torsion_from_derivatives(v: &[f64], a: &[f64], j: &[f64]) -> f64 {
    let c = cross3(v, a);
    let denom = vector::dot(&c, &c);
    if denom < SPEED_EPS * SPEED_EPS {
        return 0.0;
    }
    vector::dot(&c, j) / denom
}

impl MappingFunction for Torsion {
    fn name(&self) -> &'static str {
        "torsion"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::Torsion)
    }

    fn min_dim(&self) -> usize {
        3
    }

    fn max_dim(&self) -> usize {
        3
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        self.check_dim(datum)?;
        let mut out = Vec::with_capacity(grid.len());
        for t in grid.iter() {
            let v = datum.eval_deriv_point(t, 1);
            let a = datum.eval_deriv_point(t, 2);
            let j = datum.eval_deriv_point(t, 3);
            out.push(torsion_from_derivatives(&v, &a, &j));
        }
        if !vector::all_finite(&out) {
            return Err(GeometryError::NonFinite);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_fda::prelude::*;
    use std::sync::Arc;

    #[test]
    fn helix_torsion_analytic() {
        // Helix (r cos ωt, r sin ωt, ct): τ = cω / (r²ω² + c²) … with unit
        // angular rate parametrization τ = c/(r² + c²) when ω = 1.
        let (r, c) = (2.0, 0.5);
        for i in 0..10 {
            let t = i as f64;
            let v = [-r * t.sin(), r * t.cos(), c];
            let a = [-r * t.cos(), -r * t.sin(), 0.0];
            let j = [r * t.sin(), -r * t.cos(), 0.0];
            let tau = torsion_from_derivatives(&v, &a, &j);
            let expect = c / (r * r + c * c);
            assert!((tau - expect).abs() < 1e-10, "t={t}: {tau}");
        }
    }

    #[test]
    fn planar_curve_has_zero_torsion() {
        // parabola in the z = 0 plane
        let v = [1.0, 2.0, 0.0];
        let a = [0.0, 2.0, 0.0];
        let j = [0.0, 0.0, 0.0];
        assert_eq!(torsion_from_derivatives(&v, &a, &j), 0.0);
    }

    #[test]
    fn straight_segment_convention() {
        let v = [1.0, 0.0, 0.0];
        let a = [2.0, 0.0, 0.0]; // parallel: cross = 0
        let j = [0.0, 1.0, 0.0];
        assert_eq!(torsion_from_derivatives(&v, &a, &j), 0.0);
    }

    #[test]
    fn mapping_requires_3d() {
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let c = FunctionalDatum::new(basis, vec![0.0, 1.0]).unwrap();
        let bi = MultiFunctionalDatum::new(vec![c.clone(), c.clone()]).unwrap();
        let grid = Grid::uniform(0.0, 1.0, 5).unwrap();
        assert!(matches!(
            Torsion.map(&bi, &grid),
            Err(GeometryError::DimensionUnsupported { .. })
        ));
        let quad = MultiFunctionalDatum::new(vec![c.clone(), c.clone(), c.clone(), c]).unwrap();
        assert!(Torsion.map(&quad, &grid).is_err());
    }

    #[test]
    fn cubic_twisted_curve_maps_finite() {
        // twisted cubic (t, t², t³): τ = 3/(9t⁴ + 9t² + 1)
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 4).unwrap());
        let x = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let y = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, 0.0, 1.0, 0.0]).unwrap();
        let z = FunctionalDatum::new(basis, vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        let datum = MultiFunctionalDatum::new(vec![x, y, z]).unwrap();
        let grid = Grid::uniform(0.0, 1.0, 11).unwrap();
        let tau = Torsion.map(&datum, &grid).unwrap();
        for (i, t) in grid.iter().enumerate() {
            let expect = 3.0 / (9.0 * t.powi(4) + 9.0 * t * t + 1.0);
            assert!(
                (tau[i] - expect).abs() < 1e-8,
                "t={t}: {} vs {expect}",
                tau[i]
            );
        }
    }
}
