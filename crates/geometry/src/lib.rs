//! # mfod-geometry
//!
//! The paper's core idea (Sec. 3): treat a multivariate functional datum as
//! a **path** `X(t) ∈ R^p` and aggregate its `p` channels into a single
//! univariate functional datum through an interpretable *geometric mapping
//! function*. The mapped curve implicitly encodes the correlation between
//! channels w.r.t. `t`, so standard multivariate outlier detectors applied
//! to it can catch outliers whose abnormality hides in the channel
//! *relationship* (mixed-type outliers) and not only in individual channels.
//!
//! The flagship mapping is the **curvature** (Eq. 5 of the paper)
//!
//! ```text
//! κ(t) = ‖D¹( D¹X(t) / ‖D¹X(t)‖ )‖ / ‖D¹X(t)‖
//! ```
//!
//! implemented both in that definitional form ([`curvature::CurvatureEq5`])
//! and in the equivalent closed form
//! `κ = √(‖X′‖²‖X″‖² − (X′·X″)²) / ‖X′‖³` ([`curvature::Curvature`]); a
//! property test pins their agreement.
//!
//! Additional mappings (speed, arc length, torsion, turning angle, …) make
//! the "one example of mapping function" of the paper a family, and power
//! the ablation experiments.
//!
//! ```
//! use mfod_geometry::prelude::*;
//! use mfod_fda::prelude::*;
//! use std::sync::Arc;
//!
//! // The straight path (t, 2t) has zero curvature and constant speed √5.
//! let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
//! let x = FunctionalDatum::new(Arc::clone(&basis), vec![0.0, 1.0]).unwrap();
//! let y = FunctionalDatum::new(basis, vec![0.0, 2.0]).unwrap();
//! let path = MultiFunctionalDatum::new(vec![x, y]).unwrap();
//! let grid = Grid::uniform(0.0, 1.0, 9).unwrap();
//!
//! let kappa = Curvature.map(&path, &grid).unwrap();
//! assert!(kappa.iter().all(|&k| k.abs() < 1e-10));
//! let speed = Speed.map(&path, &grid).unwrap();
//! assert!(speed.iter().all(|&s| (s - 5f64.sqrt()).abs() < 1e-10));
//! ```

pub mod component;
pub mod curvature;
pub mod error;
pub mod kinematics;
pub mod mapping;
pub mod snapshot;
pub mod torsion;

pub use component::ComponentMapping;
pub use curvature::{Curvature, CurvatureEq5, RadiusOfCurvature};
pub use error::GeometryError;
pub use kinematics::{Acceleration, ArcLength, LogSpeed, Speed, SrvfNorm, TurningAngle};
pub use mapping::MappingFunction;
pub use snapshot::{snapshot_mapping, MappingSnapshot};
pub use torsion::Torsion;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, GeometryError>;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::component::ComponentMapping;
    pub use crate::curvature::{Curvature, CurvatureEq5, RadiusOfCurvature};
    pub use crate::error::GeometryError;
    pub use crate::kinematics::{Acceleration, ArcLength, LogSpeed, Speed, SrvfNorm, TurningAngle};
    pub use crate::mapping::MappingFunction;
    pub use crate::snapshot::{snapshot_mapping, MappingSnapshot};
    pub use crate::torsion::Torsion;
}
