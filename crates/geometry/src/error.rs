//! Error type for geometric mapping functions.

use mfod_fda::FdaError;
use std::fmt;

/// Errors produced while computing geometric mappings.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// The mapping requires a minimum path dimension the datum lacks
    /// (e.g. torsion needs `p = 3`).
    DimensionUnsupported {
        /// Name of the mapping.
        mapping: &'static str,
        /// Dimension required.
        need: usize,
        /// Dimension of the datum.
        got: usize,
    },
    /// A channel index is out of range.
    ChannelOutOfRange {
        /// Requested channel.
        channel: usize,
        /// Number of channels.
        dim: usize,
    },
    /// The mapping implementation does not support an optional capability
    /// (e.g. persistence snapshots for a custom user mapping).
    Unsupported {
        /// Name of the mapping.
        mapping: &'static str,
        /// The unsupported capability.
        what: &'static str,
    },
    /// The mapped values are not finite (degenerate geometry not covered by
    /// the documented conventions).
    NonFinite,
    /// The underlying functional representation failed.
    Fda(FdaError),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::DimensionUnsupported { mapping, need, got } => {
                write!(
                    f,
                    "mapping {mapping} needs dimension {need}, datum has {got}"
                )
            }
            GeometryError::ChannelOutOfRange { channel, dim } => {
                write!(f, "channel {channel} out of range for p = {dim}")
            }
            GeometryError::Unsupported { mapping, what } => {
                write!(f, "mapping {mapping} does not support {what}")
            }
            GeometryError::NonFinite => write!(f, "mapping produced non-finite values"),
            GeometryError::Fda(e) => write!(f, "functional representation failure: {e}"),
        }
    }
}

impl std::error::Error for GeometryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GeometryError::Fda(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FdaError> for GeometryError {
    fn from(e: FdaError) -> Self {
        GeometryError::Fda(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = GeometryError::DimensionUnsupported {
            mapping: "torsion",
            need: 3,
            got: 2,
        };
        assert!(e.to_string().contains("torsion"));
        let e = GeometryError::ChannelOutOfRange { channel: 5, dim: 2 };
        assert!(e.to_string().contains('5'));
        let e = GeometryError::Unsupported {
            mapping: "custom",
            what: "snapshots",
        };
        assert!(e.to_string().contains("snapshots"));
        let e: GeometryError = FdaError::NonFinite.into();
        assert!(e.to_string().contains("functional"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
