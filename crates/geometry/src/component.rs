//! Component extraction "mappings": project a single channel (or a channel
//! derivative) back out of the MFD. These serve as ablation baselines — the
//! degenerate aggregation that ignores cross-channel geometry.

use crate::mapping::MappingFunction;
use crate::{GeometryError, Result};
use mfod_fda::{Grid, MultiFunctionalDatum};
use mfod_linalg::vector;

/// Extracts channel `channel`'s `deriv`-th derivative evaluated on the grid.
///
/// With `deriv = 0` this is the identity representation of one channel; it
/// deliberately discards all cross-channel structure, which is exactly what
/// the geometric mappings are designed to keep — making this the natural
/// control condition in the mapping ablation (experiment A1).
#[derive(Debug, Clone, Copy)]
pub struct ComponentMapping {
    channel: usize,
    deriv: usize,
}

impl ComponentMapping {
    /// Mapping that evaluates channel `channel` itself.
    pub fn value(channel: usize) -> Self {
        ComponentMapping { channel, deriv: 0 }
    }

    /// Mapping that evaluates the `deriv`-th derivative of `channel`.
    pub fn derivative(channel: usize, deriv: usize) -> Self {
        ComponentMapping { channel, deriv }
    }

    /// The extracted channel index.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// The derivative order.
    pub fn deriv(&self) -> usize {
        self.deriv
    }
}

impl MappingFunction for ComponentMapping {
    fn name(&self) -> &'static str {
        "component"
    }

    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        Some(crate::snapshot::MappingSnapshot::Component {
            channel: self.channel,
            deriv: self.deriv,
        })
    }

    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
        let channel = datum
            .channel(self.channel)
            .ok_or(GeometryError::ChannelOutOfRange {
                channel: self.channel,
                dim: datum.dim(),
            })?;
        let out = channel.eval_grid_deriv(grid, self.deriv);
        if !vector::all_finite(&out) {
            return Err(GeometryError::NonFinite);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_fda::prelude::*;
    use std::sync::Arc;

    fn datum() -> MultiFunctionalDatum {
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 3).unwrap());
        let x = FunctionalDatum::new(Arc::clone(&basis), vec![1.0, 0.0, 0.0]).unwrap();
        let y = FunctionalDatum::new(basis, vec![0.0, 0.0, 1.0]).unwrap(); // t²
        MultiFunctionalDatum::new(vec![x, y]).unwrap()
    }

    #[test]
    fn value_extraction() {
        let grid = Grid::uniform(0.0, 1.0, 3).unwrap();
        let v = ComponentMapping::value(1).map(&datum(), &grid).unwrap();
        assert_eq!(v.len(), 3);
        assert!((v[1] - 0.25).abs() < 1e-12);
        assert!((v[2] - 1.0).abs() < 1e-12);
        assert_eq!(ComponentMapping::value(1).channel(), 1);
        assert_eq!(ComponentMapping::value(1).deriv(), 0);
    }

    #[test]
    fn derivative_extraction() {
        let grid = Grid::uniform(0.0, 1.0, 3).unwrap();
        let m = ComponentMapping::derivative(1, 1);
        let v = m.map(&datum(), &grid).unwrap();
        // D(t²) = 2t
        assert!((v[1] - 1.0).abs() < 1e-12);
        assert!((v[2] - 2.0).abs() < 1e-12);
        assert_eq!(m.deriv(), 1);
    }

    #[test]
    fn out_of_range_channel() {
        let grid = Grid::uniform(0.0, 1.0, 3).unwrap();
        assert!(matches!(
            ComponentMapping::value(7).map(&datum(), &grid),
            Err(GeometryError::ChannelOutOfRange { .. })
        ));
    }
}
