//! The [`MappingFunction`] trait: geometric aggregation of a `p`-channel
//! functional datum into a univariate functional datum sampled on a grid.

use crate::Result;
use mfod_fda::{Grid, MultiFunctionalDatum};

/// Numerical floor below which a velocity is treated as zero (stationary
/// point convention; see [`crate::curvature::Curvature`]).
pub const SPEED_EPS: f64 = 1e-10;

/// A geometric aggregation function: maps a multivariate functional datum
/// `X : T → R^p` to a univariate functional datum evaluated on a grid.
///
/// Implementations read analytic derivatives off the basis expansion, so the
/// quality of the mapped curve is inherited from the smoothing step — this
/// is why the paper insists on the functional approximation (Sec. 2) before
/// the mapping (Sec. 3).
pub trait MappingFunction: Send + Sync {
    /// Short identifier used in experiment reports (e.g. `"curvature"`).
    fn name(&self) -> &'static str;

    /// Smallest path dimension `p` the mapping supports.
    fn min_dim(&self) -> usize {
        1
    }

    /// Largest path dimension supported (`usize::MAX` when unconstrained).
    fn max_dim(&self) -> usize {
        usize::MAX
    }

    /// Evaluates the mapped univariate function at every grid point.
    fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>>;

    /// The concrete snapshot form of this mapping, when it supports
    /// persistence (see `mfod-persist`).
    ///
    /// The default is `None`: a custom mapping cannot be written into a
    /// model snapshot until it opts in, surfaced as a typed error at
    /// snapshot time ([`crate::snapshot::snapshot_mapping`]). An
    /// implementation must guarantee that restoring the returned snapshot
    /// yields a mapping that computes **bit-identically** to `self`.
    fn snapshot(&self) -> Option<crate::snapshot::MappingSnapshot> {
        None
    }

    /// Validates the datum dimension against `min_dim`/`max_dim`.
    fn check_dim(&self, datum: &MultiFunctionalDatum) -> Result<()> {
        let p = datum.dim();
        if p < self.min_dim() || p > self.max_dim() {
            return Err(crate::GeometryError::DimensionUnsupported {
                mapping: self.name(),
                need: self.min_dim(),
                got: p,
            });
        }
        Ok(())
    }
}

/// Maps a whole batch of data onto the grid, producing one feature vector
/// per sample — the matrix handed to the multivariate outlier detector in
/// the paper's pipeline (Sec. 4.2).
pub fn map_batch(
    mapping: &dyn MappingFunction,
    data: &[MultiFunctionalDatum],
    grid: &Grid,
) -> Result<Vec<Vec<f64>>> {
    data.iter().map(|d| mapping.map(d, grid)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeometryError;
    use mfod_fda::prelude::*;
    use std::sync::Arc;

    struct FirstChannel;
    impl MappingFunction for FirstChannel {
        fn name(&self) -> &'static str {
            "first-channel"
        }
        fn map(&self, datum: &MultiFunctionalDatum, grid: &Grid) -> Result<Vec<f64>> {
            self.check_dim(datum)?;
            Ok(datum.channels()[0].eval_grid(grid))
        }
        fn min_dim(&self) -> usize {
            2
        }
    }

    fn linear_mfd(p: usize) -> MultiFunctionalDatum {
        let basis: Arc<dyn Basis> = Arc::new(PolynomialBasis::new(0.0, 1.0, 2).unwrap());
        let channels = (0..p)
            .map(|k| {
                FunctionalDatum::new(Arc::clone(&basis), vec![k as f64, 1.0 + k as f64]).unwrap()
            })
            .collect();
        MultiFunctionalDatum::new(channels).unwrap()
    }

    #[test]
    fn check_dim_enforced() {
        let m = FirstChannel;
        let uni = linear_mfd(1);
        assert!(matches!(
            m.map(&uni, &Grid::uniform(0.0, 1.0, 5).unwrap()),
            Err(GeometryError::DimensionUnsupported { .. })
        ));
        let bi = linear_mfd(2);
        let v = m.map(&bi, &Grid::uniform(0.0, 1.0, 5).unwrap()).unwrap();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn map_batch_produces_one_row_per_sample() {
        let m = FirstChannel;
        let data = vec![linear_mfd(2), linear_mfd(3)];
        let grid = Grid::uniform(0.0, 1.0, 4).unwrap();
        let rows = map_batch(&m, &data, &grid).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 4));
    }
}
