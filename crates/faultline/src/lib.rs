//! Deterministic fault injection for the mfod workspace.
//!
//! `mfod-faultline` is a std-only leaf crate (like `mfod-obs`) that lets
//! tests and chaos harnesses inject failures at named points inside the
//! serving stack — snapshot I/O, registry sweeps, micro-batch flushes,
//! pool chunks — on a schedule that is a pure function of a seed.
//!
//! # Contract
//!
//! - **Disabled is free.** Every hook ([`should_fire`], [`stall`])
//!   compiles down to a single relaxed atomic load and a predictable
//!   branch while no plan is armed. The bench ratchet holds this to the
//!   same ≤2% overhead ceiling as the `mfod-obs` gate.
//! - **Armed is deterministic.** Each injection point draws from its own
//!   xoshiro256++ stream seeded from `(plan seed, fnv1a(point name))`, so
//!   the fire/skip decision sequence at a point depends only on the seed
//!   and how many times that point has been hit — never on thread
//!   interleaving across points.
//! - **Process-global.** Arming affects every hook in the process; tests
//!   that arm plans must serialize through [`serial_guard`].
//!
//! # Writing a plan
//!
//! ```
//! use mfod_faultline::{points, FaultPlan, FaultRule};
//!
//! let _lock = mfod_faultline::serial_guard();
//! mfod_faultline::install(
//!     FaultPlan::new(42)
//!         .rule(points::PERSIST_READ, FaultRule::with_probability(0.25))
//!         .rule(points::STREAM_FLUSH, FaultRule::always().times(2)),
//! );
//! // ... exercise the system under faults; hooks consult the plan ...
//! let fired: Vec<bool> = (0..4).map(|_| mfod_faultline::should_fire(points::STREAM_FLUSH)).collect();
//! assert_eq!(fired, vec![true, true, false, false], "always().times(2)");
//! let report = mfod_faultline::disarm().unwrap();
//! assert_eq!(report.fires(points::STREAM_FLUSH), 2);
//! ```

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Canonical injection-point names threaded through the workspace.
///
/// Hooks pass these constants; plans reference them when building rules.
/// The naming scheme is `<crate-area>.<event>`.
pub mod points {
    /// Snapshot read/open failure in `mfod-persist` (mapping or reading
    /// a snapshot file errors out with an injected `io::Error`).
    pub const PERSIST_READ: &str = "persist.read";
    /// Torn write: `save_bytes` leaves a truncated file at the *final*
    /// path (simulating a crashed writer that bypassed the atomic
    /// rename) and reports an I/O error.
    pub const PERSIST_TORN_WRITE: &str = "persist.torn_write";
    /// mmap open failure, forcing the owned-read fallback path.
    pub const PERSIST_MMAP: &str = "persist.mmap";
    /// CRC corruption: the computed checksum is inverted during parse,
    /// so an otherwise valid snapshot reports `ChecksumMismatch`.
    pub const PERSIST_CRC: &str = "persist.crc";
    /// Registry directory sweep fails with an injected I/O error before
    /// reading any entries.
    pub const REGISTRY_SWEEP: &str = "registry.sweep";
    /// Micro-batch flush fails with a typed pipeline error before
    /// scoring runs; the batch stays pending.
    pub const STREAM_FLUSH: &str = "stream.flush";
    /// Delay injected at the start of a micro-batch flush (drives
    /// deadline misses); pair with a [`FaultRule::delay`](crate::FaultRule::delay).
    pub const STREAM_DELAY: &str = "stream.delay";
    /// Poison sample: an observation pushed into a `WindowBuffer` has a
    /// channel value replaced with NaN before validation.
    pub const STREAM_POISON: &str = "stream.poison";
    /// A pool work item panics mid-chunk.
    pub const POOL_PANIC: &str = "pool.panic";
    /// Straggler delay injected into a pool chunk; pair with a
    /// [`FaultRule::delay`](crate::FaultRule::delay).
    pub const POOL_STRAGGLE: &str = "pool.straggle";
    /// `fsync` of a freshly written snapshot temp file fails (or, in a
    /// parked plan, the process dies right before the data is durable):
    /// the temp file may exist with unsynced bytes, the final path is
    /// untouched.
    pub const PERSIST_FSYNC: &str = "persist.fsync";
    /// The rename of a synced temp file onto its final path fails (or
    /// the process dies between fsync and rename): a durable stray temp
    /// file is left next to an untouched final path.
    pub const PERSIST_RENAME: &str = "persist.rename";
    /// Torn deployment-log append: only a prefix of the framed record
    /// reaches the log before the writer dies, leaving a tail the
    /// recovery replay must detect and quarantine.
    pub const MANIFEST_APPEND_TORN: &str = "manifest.append.torn";
    /// Crash on the commit step of a store promotion: the snapshot and
    /// its intent record are durable but the commit marker never lands,
    /// so recovery must treat the generation as uncommitted.
    pub const STORE_COMMIT: &str = "store.commit";
}

/// FNV-1a 64-bit hash of the point name (same constants as
/// `mfod-persist`'s content hash); mixes the point identity into the
/// plan seed so each point gets an independent stream.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// When and how often a single injection point fires.
///
/// A rule is evaluated once per *hit* (each time the hook runs while
/// armed). Hits before `skip_first` never fire; after `max_fires` fires
/// the rule goes quiet. Each eligible hit draws one `f64` from the
/// point's RNG stream regardless of outcome, so the decision sequence is
/// reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct FaultRule {
    probability: f64,
    max_fires: Option<u64>,
    skip_first: u64,
    delay: Option<Duration>,
}

impl FaultRule {
    /// Fire on every eligible hit.
    pub fn always() -> Self {
        Self::with_probability(1.0)
    }

    /// Fire each eligible hit independently with probability `p`
    /// (clamped to `[0, 1]`).
    pub fn with_probability(p: f64) -> Self {
        FaultRule {
            probability: p.clamp(0.0, 1.0),
            max_fires: None,
            skip_first: 0,
            delay: None,
        }
    }

    /// Fire exactly once, on the first eligible hit.
    pub fn once() -> Self {
        Self::always().times(1)
    }

    /// Cap the total number of fires at `n`.
    pub fn times(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }

    /// Skip the first `n` hits before the rule becomes eligible.
    pub fn after(mut self, n: u64) -> Self {
        self.skip_first = n;
        self
    }

    /// Attach a stall duration, used by [`stall`] hooks when the rule
    /// fires. Ignored by [`should_fire`] hooks.
    pub fn delay(mut self, d: Duration) -> Self {
        self.delay = Some(d);
        self
    }
}

/// A seeded schedule of fault rules, built once and then [`install`]ed
/// process-wide.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<(String, FaultRule)>,
    park_on_fire: bool,
}

impl FaultPlan {
    /// Start an empty plan with the given seed. A plan with no rules
    /// never fires anywhere but still counts hits.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            park_on_fire: false,
        }
    }

    /// Crash-harness mode: when a crash-point hook fires under this plan,
    /// [`park_if_requested`] freezes the process at the injection point
    /// (after writing the fault report to the [`ENV_FAULT_REPORT`] path,
    /// if set) instead of letting the hook return a typed error. The
    /// parked process sits in an endless sleep so an external supervisor
    /// can SIGKILL it with the on-disk state exactly as it was at the
    /// crash point.
    pub fn park_on_fire(mut self) -> Self {
        self.park_on_fire = true;
        self
    }

    /// Attach `rule` to the named injection point, replacing any earlier
    /// rule for the same point.
    pub fn rule(mut self, point: impl Into<String>, rule: FaultRule) -> Self {
        let point = point.into();
        self.rules.retain(|(p, _)| *p != point);
        self.rules.push((point, rule));
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Per-point armed state: the rule (if any), its private RNG stream, and
/// hit/fire counters.
#[derive(Debug)]
struct PointState {
    rule: Option<FaultRule>,
    rng: StdRng,
    hits: u64,
    fires: u64,
}

impl PointState {
    fn new(seed: u64, point: &str, rule: Option<FaultRule>) -> Self {
        PointState {
            rule,
            rng: StdRng::seed_from_u64(seed ^ fnv1a64(point.as_bytes())),
            hits: 0,
            fires: 0,
        }
    }

    /// One hook hit: count it, and decide whether the rule fires.
    fn check(&mut self) -> Option<FaultRule> {
        self.hits += 1;
        let rule = self.rule.as_ref()?;
        if self.hits <= rule.skip_first {
            return None;
        }
        if let Some(cap) = rule.max_fires {
            if self.fires >= cap {
                return None;
            }
        }
        // Draw on every eligible hit, fire or not, so the stream at this
        // point is a pure function of (seed, eligible-hit index).
        let draw: f64 = self.rng.random();
        if draw < rule.probability {
            self.fires += 1;
            Some(rule.clone())
        } else {
            None
        }
    }
}

/// The armed plan: seed plus lazily-populated per-point states. Points
/// without rules get a counting-only state on first hit.
#[derive(Debug)]
struct ArmedPlan {
    seed: u64,
    states: HashMap<String, PointState>,
    park_on_fire: bool,
}

impl ArmedPlan {
    fn new(plan: FaultPlan) -> Self {
        let mut states = HashMap::new();
        for (point, rule) in &plan.rules {
            states.insert(
                point.clone(),
                PointState::new(plan.seed, point, Some(rule.clone())),
            );
        }
        ArmedPlan {
            seed: plan.seed,
            states,
            park_on_fire: plan.park_on_fire,
        }
    }

    fn check(&mut self, point: &str) -> Option<FaultRule> {
        if let Some(state) = self.states.get_mut(point) {
            return state.check();
        }
        let mut state = PointState::new(self.seed, point, None);
        let fired = state.check();
        self.states.insert(point.to_string(), state);
        fired
    }
}

/// Hit/fire counts per injection point, captured at [`disarm`] (or via
/// [`report`] while armed). Serializable by hand; `to_json` emits a flat
/// object for chaos-report artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Seed the plan was built from.
    pub seed: u64,
    /// `(point, hits, fires)` sorted by point name.
    pub points: Vec<(String, u64, u64)>,
}

impl FaultReport {
    fn from_plan(plan: &ArmedPlan) -> Self {
        let mut points: Vec<(String, u64, u64)> = plan
            .states
            .iter()
            .map(|(p, s)| (p.clone(), s.hits, s.fires))
            .collect();
        points.sort();
        FaultReport {
            seed: plan.seed,
            points,
        }
    }

    /// Times the named point's hook ran while armed.
    pub fn hits(&self, point: &str) -> u64 {
        self.points
            .iter()
            .find(|(p, _, _)| p == point)
            .map_or(0, |&(_, h, _)| h)
    }

    /// Times the named point actually fired.
    pub fn fires(&self, point: &str) -> u64 {
        self.points
            .iter()
            .find(|(p, _, _)| p == point)
            .map_or(0, |&(_, _, f)| f)
    }

    /// Total fires across all points.
    pub fn total_fires(&self) -> u64 {
        self.points.iter().map(|&(_, _, f)| f).sum()
    }

    /// Flat JSON object: seed plus `"<point>": {"hits": .., "fires": ..}`
    /// per touched point.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"seed\": {}", self.seed));
        for (point, hits, fires) in &self.points {
            out.push_str(&format!(
                ", \"{point}\": {{\"hits\": {hits}, \"fires\": {fires}}}"
            ));
        }
        out.push('}');
        out
    }
}

/// Fast gate: `true` only while a plan is armed. One relaxed load.
static GATE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<ArmedPlan>> {
    static SLOT: OnceLock<Mutex<Option<ArmedPlan>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Is a fault plan currently armed? Hot-path gate: a single relaxed
/// atomic load, no branches beyond the caller's.
#[inline]
pub fn armed() -> bool {
    GATE.load(Ordering::Relaxed)
}

/// Arm `plan` process-wide, replacing any previously armed plan.
pub fn install(plan: FaultPlan) {
    let mut slot = plan_slot().lock().expect("faultline plan lock poisoned");
    *slot = Some(ArmedPlan::new(plan));
    GATE.store(true, Ordering::Release);
}

/// Disarm and return the report for the plan that was armed, if any.
pub fn disarm() -> Option<FaultReport> {
    GATE.store(false, Ordering::Release);
    let mut slot = plan_slot().lock().expect("faultline plan lock poisoned");
    slot.take().map(|plan| FaultReport::from_plan(&plan))
}

/// Snapshot the report for the currently armed plan without disarming.
pub fn report() -> Option<FaultReport> {
    let slot = plan_slot().lock().expect("faultline plan lock poisoned");
    slot.as_ref().map(FaultReport::from_plan)
}

/// Should the named injection point fire on this hit?
///
/// Disabled path: one relaxed load, returns `false`. Armed path: counts
/// the hit and consults the point's seeded rule under the plan lock.
#[inline]
pub fn should_fire(point: &str) -> bool {
    if !GATE.load(Ordering::Relaxed) {
        return false;
    }
    check_slow(point).is_some()
}

/// Stall hook: if the named point fires and its rule carries a
/// [`FaultRule::delay`], sleep for that duration. Disabled path: one
/// relaxed load, returns immediately.
#[inline]
pub fn stall(point: &str) {
    if !GATE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(rule) = check_slow(point) {
        if let Some(d) = rule.delay {
            std::thread::sleep(d);
        }
    }
}

/// Environment variable naming the file [`park_if_requested`] writes the
/// in-flight [`FaultReport`] JSON to just before freezing, so the
/// supervising process can attribute the kill to the point that fired.
pub const ENV_FAULT_REPORT: &str = "MFOD_FAULT_REPORT";

/// Crash-harness freeze: if the armed plan was built with
/// [`FaultPlan::park_on_fire`], dump the current [`FaultReport`] to the
/// [`ENV_FAULT_REPORT`] path (when set), announce the parked point on
/// stdout, and sleep forever awaiting an external SIGKILL. Under a
/// normal (non-parking) plan — or no plan — this returns immediately, so
/// crash-point hooks call it unconditionally after [`should_fire`] and
/// then surface their usual typed injected error.
///
/// The caller performs any torn side effects (partial writes, fsyncs)
/// *before* calling this, so the frozen on-disk state is exactly the
/// state a real crash at the point would leave behind.
pub fn park_if_requested(point: &str) {
    let parked = {
        let slot = plan_slot().lock().expect("faultline plan lock poisoned");
        slot.as_ref()
            .filter(|plan| plan.park_on_fire)
            .map(FaultReport::from_plan)
    };
    let Some(report) = parked else {
        return;
    };
    if let Some(path) = std::env::var_os(ENV_FAULT_REPORT).filter(|p| !p.is_empty()) {
        let _ = std::fs::write(path, report.to_json());
    }
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "mfod-faultline: parked at {point}");
    let _ = out.flush();
    drop(out);
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}

#[cold]
fn check_slow(point: &str) -> Option<FaultRule> {
    let fired = {
        let mut slot = plan_slot().lock().expect("faultline plan lock poisoned");
        // The gate may have been disarmed between the load and the lock.
        slot.as_mut().and_then(|plan| plan.check(point))
    };
    if fired.is_some() {
        // Timeline marker for the observability journal: one instant
        // event per actual firing, so a chaos-soak trace shows *when*
        // each fault landed relative to flushes and sweeps. Fires are
        // rare by construction, so the interning cost is irrelevant.
        mfod_obs::journal::instant(&format!("fault:{point}"));
    }
    fired
}

/// Serialize tests that arm plans: faultline state is process-global, so
/// concurrent arming tests would corrupt each other's schedules. Every
/// test that calls [`install`] must hold this guard for its duration.
pub fn serial_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hooks_never_fire() {
        let _lock = serial_guard();
        disarm();
        assert!(!armed());
        for _ in 0..100 {
            assert!(!should_fire(points::PERSIST_READ));
        }
        stall(points::POOL_STRAGGLE); // returns immediately
    }

    #[test]
    fn same_seed_same_schedule() {
        let _lock = serial_guard();
        let run = |seed: u64| -> Vec<bool> {
            install(
                FaultPlan::new(seed).rule(points::STREAM_FLUSH, FaultRule::with_probability(0.5)),
            );
            let fired = (0..64).map(|_| should_fire(points::STREAM_FLUSH)).collect();
            disarm();
            fired
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn per_point_streams_are_independent_of_interleaving() {
        let _lock = serial_guard();
        let plan = || {
            FaultPlan::new(11)
                .rule(points::PERSIST_READ, FaultRule::with_probability(0.5))
                .rule(points::REGISTRY_SWEEP, FaultRule::with_probability(0.5))
        };
        // Sequential: all hits to A, then all to B.
        install(plan());
        let a1: Vec<bool> = (0..32).map(|_| should_fire(points::PERSIST_READ)).collect();
        let b1: Vec<bool> = (0..32)
            .map(|_| should_fire(points::REGISTRY_SWEEP))
            .collect();
        disarm();
        // Interleaved: alternate hits between the two points.
        install(plan());
        let mut a2 = Vec::new();
        let mut b2 = Vec::new();
        for _ in 0..32 {
            a2.push(should_fire(points::PERSIST_READ));
            b2.push(should_fire(points::REGISTRY_SWEEP));
        }
        disarm();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn once_and_times_cap_fires() {
        let _lock = serial_guard();
        install(FaultPlan::new(3).rule(points::POOL_PANIC, FaultRule::once()));
        let fires = (0..50).filter(|_| should_fire(points::POOL_PANIC)).count();
        let report = disarm().unwrap();
        assert_eq!(fires, 1);
        assert_eq!(report.fires(points::POOL_PANIC), 1);
        assert_eq!(report.hits(points::POOL_PANIC), 50);

        install(FaultPlan::new(3).rule(points::POOL_PANIC, FaultRule::always().times(4)));
        let fires = (0..50).filter(|_| should_fire(points::POOL_PANIC)).count();
        assert_eq!(fires, 4);
        disarm();
    }

    #[test]
    fn skip_first_defers_eligibility() {
        let _lock = serial_guard();
        install(FaultPlan::new(5).rule(points::STREAM_FLUSH, FaultRule::always().after(10)));
        let fired: Vec<bool> = (0..15).map(|_| should_fire(points::STREAM_FLUSH)).collect();
        disarm();
        assert!(fired[..10].iter().all(|&f| !f));
        assert!(fired[10..].iter().all(|&f| f));
    }

    #[test]
    fn unruled_points_count_hits_but_never_fire() {
        let _lock = serial_guard();
        install(FaultPlan::new(1));
        for _ in 0..7 {
            assert!(!should_fire(points::PERSIST_CRC));
        }
        let report = disarm().unwrap();
        assert_eq!(report.hits(points::PERSIST_CRC), 7);
        assert_eq!(report.fires(points::PERSIST_CRC), 0);
        assert_eq!(report.total_fires(), 0);
    }

    #[test]
    fn stall_sleeps_only_when_fired() {
        let _lock = serial_guard();
        install(FaultPlan::new(9).rule(
            points::POOL_STRAGGLE,
            FaultRule::once().delay(Duration::from_millis(25)),
        ));
        let t0 = std::time::Instant::now();
        stall(points::POOL_STRAGGLE); // fires: sleeps ~25ms
        let first = t0.elapsed();
        let t1 = std::time::Instant::now();
        stall(points::POOL_STRAGGLE); // capped out: no sleep
        let second = t1.elapsed();
        disarm();
        assert!(
            first >= Duration::from_millis(20),
            "stall too short: {first:?}"
        );
        assert!(second < Duration::from_millis(20));
    }

    #[test]
    fn report_json_is_flat_and_sorted() {
        let _lock = serial_guard();
        install(
            FaultPlan::new(2)
                .rule(points::STREAM_FLUSH, FaultRule::always().times(1))
                .rule(points::PERSIST_READ, FaultRule::always().times(1)),
        );
        should_fire(points::STREAM_FLUSH);
        should_fire(points::PERSIST_READ);
        let report = disarm().unwrap();
        let json = report.to_json();
        assert!(json.starts_with("{\"seed\": 2"));
        assert!(json.contains("\"persist.read\": {\"hits\": 1, \"fires\": 1}"));
        assert!(json.contains("\"stream.flush\": {\"hits\": 1, \"fires\": 1}"));
        // persist.* sorts before stream.*
        assert!(json.find("persist.read").unwrap() < json.find("stream.flush").unwrap());
    }

    #[test]
    fn park_is_a_noop_without_a_parking_plan() {
        let _lock = serial_guard();
        // no plan armed: returns immediately
        disarm();
        park_if_requested(points::STORE_COMMIT);
        // armed but not a parking plan: still a no-op
        install(FaultPlan::new(1).rule(points::STORE_COMMIT, FaultRule::always()));
        assert!(should_fire(points::STORE_COMMIT));
        park_if_requested(points::STORE_COMMIT);
        disarm();
    }

    #[test]
    fn crash_points_are_named_consistently() {
        for p in [
            points::PERSIST_FSYNC,
            points::PERSIST_RENAME,
            points::MANIFEST_APPEND_TORN,
            points::STORE_COMMIT,
        ] {
            assert!(p.contains('.'), "point {p} must be <area>.<event>");
        }
    }

    #[test]
    fn rule_replaces_earlier_rule_for_same_point() {
        let _lock = serial_guard();
        let plan = FaultPlan::new(4)
            .rule(points::STREAM_FLUSH, FaultRule::always())
            .rule(points::STREAM_FLUSH, FaultRule::with_probability(0.0));
        assert_eq!(plan.rules.len(), 1);
        install(plan);
        assert!(!should_fire(points::STREAM_FLUSH));
        disarm();
    }
}
