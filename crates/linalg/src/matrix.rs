//! Row-major dense `f64` matrix.

use crate::error::LinalgError;
use crate::shared::SharedF64s;
use crate::Result;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Backing storage of a [`Matrix`]: either the usual owned vector or a
/// read-only shared view kept alive by an external owner (a mapped model
/// snapshot). All read paths treat both identically; any mutating entry
/// point first converts a shared payload into an owned copy
/// (copy-on-write), so shared storage is never written through.
#[derive(Clone, Debug)]
enum Storage {
    Owned(Vec<f64>),
    Shared(SharedF64s),
}

impl Storage {
    #[inline]
    fn as_slice(&self) -> &[f64] {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(s) => s.as_slice(),
        }
    }
}

/// A dense, row-major matrix of `f64` values.
///
/// Sized for the moderate problems in this workspace (smoothing systems,
/// kernel matrices); all operations are straightforward O(n³)-style loops
/// arranged for cache-friendly row-major traversal.
///
/// The payload is usually an owned `Vec<f64>`, but a matrix can also
/// borrow read-only storage from a reference-counted owner
/// ([`Matrix::from_shared`]) — the zero-copy path used when model
/// snapshots are decoded straight out of a memory-mapped file. Shared
/// matrices behave identically on every read path and transparently
/// copy-on-write on the first mutation.
#[derive(Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Storage,
}

impl PartialEq for Matrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.as_slice() == other.as_slice()
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: Storage::Owned(vec![0.0; rows * cols]),
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: Storage::Owned(vec![value; rows * cols]),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix {
            rows,
            cols,
            data: Storage::Owned(data),
        }
    }

    /// Builds a matrix over shared read-only storage — the zero-copy
    /// constructor for payloads served directly out of a mapped snapshot.
    /// Reads go straight to the shared memory; the first mutation copies
    /// the payload into owned storage.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_shared(rows: usize, cols: usize, data: SharedF64s) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix {
            rows,
            cols,
            data: Storage::Shared(data),
        }
    }

    /// Whether the payload currently borrows shared storage (true until
    /// the first mutation of a [`Matrix::from_shared`] matrix).
    #[inline]
    pub fn is_borrowed(&self) -> bool {
        matches!(self.data, Storage::Shared(_))
    }

    /// Mutable access to the owned payload, converting shared storage
    /// into an owned copy first (copy-on-write).
    #[inline]
    fn data_mut(&mut self) -> &mut Vec<f64> {
        if let Storage::Shared(s) = &self.data {
            self.data = Storage::Owned(s.as_slice().to_vec());
        }
        match &mut self.data {
            Storage::Owned(v) => v,
            Storage::Shared(_) => unreachable!("just converted to owned"),
        }
    }

    /// Builds a matrix from row slices. All rows must share a length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data: Storage::Owned(data),
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data_mut()
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data.as_slice()[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        let cols = self.cols;
        &mut self.data_mut()[i * cols..(i + 1) * cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if inner dimensions do not match; use [`Matrix::checked_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.checked_matmul(other)
            .expect("matmul dimension mismatch")
    }

    /// Fallible matrix product — a register-blocked i-k-j kernel.
    ///
    /// Four output rows are accumulated per pass, so each row of `other`
    /// is loaded from memory once per *four* rows of `self` instead of
    /// once per row, and the four independent accumulation chains give
    /// the CPU instruction-level parallelism. Every output element is
    /// still accumulated by exactly one `+= a·b` per `k`, in ascending
    /// `k` order, with zero `a` entries skipped per row — the identical
    /// floating-point operations of the unblocked kernel, so results are
    /// bit-for-bit unchanged.
    pub fn checked_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, kk, nn) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, nn);
        if m == 0 || kk == 0 || nn == 0 {
            return Ok(out);
        }
        let mut out_rows = out.as_mut_slice().chunks_exact_mut(nn);
        let mut i = 0;
        while i + 4 <= m {
            let (o0, o1, o2, o3) = (
                out_rows.next().expect("row count"),
                out_rows.next().expect("row count"),
                out_rows.next().expect("row count"),
                out_rows.next().expect("row count"),
            );
            let (r0, r1, r2, r3) = (
                self.row(i),
                self.row(i + 1),
                self.row(i + 2),
                self.row(i + 3),
            );
            for k in 0..kk {
                let (a0, a1, a2, a3) = (r0[k], r1[k], r2[k], r3[k]);
                let brow = other.row(k);
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    // dense fast path: one load of `brow[j]` feeds four
                    // separate accumulations (one add per output, as in
                    // the scalar kernel)
                    for (j, &b) in brow.iter().enumerate() {
                        o0[j] += a0 * b;
                        o1[j] += a1 * b;
                        o2[j] += a2 * b;
                        o3[j] += a3 * b;
                    }
                } else {
                    // preserve the per-row zero skip exactly
                    for (a, o) in [
                        (a0, &mut *o0),
                        (a1, &mut *o1),
                        (a2, &mut *o2),
                        (a3, &mut *o3),
                    ] {
                        if a != 0.0 {
                            crate::vector::axpy(a, brow, o);
                        }
                    }
                }
            }
            i += 4;
        }
        for (o, row) in out_rows.by_ref().zip(i..m) {
            let r = self.row(row);
            for k in 0..kk {
                let a = r[k];
                if a == 0.0 {
                    continue;
                }
                crate::vector::axpy(a, other.row(k), o);
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v` — a register-blocked kernel: four
    /// rows share each load of `v`, each row's dot product still
    /// accumulating sequentially in ascending column order, so the result
    /// is bit-identical to a per-row [`crate::vector::dot`] loop.
    ///
    /// # Panics
    /// Panics if `v.len() != ncols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }

    /// [`Matrix::matvec`] into a caller-owned buffer (cleared and
    /// refilled), so steady-state batch scoring reuses one allocation.
    ///
    /// # Panics
    /// Panics if `v.len() != ncols`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        out.clear();
        out.reserve(self.rows);
        let mut i = 0;
        while i + 4 <= self.rows {
            let (r0, r1, r2, r3) = (
                self.row(i),
                self.row(i + 1),
                self.row(i + 2),
                self.row(i + 3),
            );
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for (k, &vk) in v.iter().enumerate() {
                s0 += r0[k] * vk;
                s1 += r1[k] * vk;
                s2 += r2[k] * vk;
                s3 += r3[k] * vk;
            }
            out.extend_from_slice(&[s0, s1, s2, s3]);
            i += 4;
        }
        for row in i..self.rows {
            out.push(crate::vector::dot(self.row(row), v));
        }
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != nrows`.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.tr_matvec_into(v, &mut out);
        out
    }

    /// [`Matrix::tr_matvec`] into a caller-owned buffer (cleared and
    /// refilled).
    ///
    /// # Panics
    /// Panics if `v.len() != nrows`.
    pub fn tr_matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows, "tr_matvec dimension mismatch");
        out.clear();
        out.resize(self.cols, 0.0);
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += vi * a;
            }
        }
    }

    /// Computes the Gram matrix `selfᵀ * self` exploiting symmetry (only
    /// the upper triangle is accumulated, then mirrored) and the zero
    /// patterns of banded designs such as B-spline evaluations (zero row
    /// entries contribute nothing and are skipped).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let r = self.row(i);
            for j in 0..n {
                let a = r[j];
                if a == 0.0 {
                    continue;
                }
                // contiguous row-slice accumulation over k in j..n — the
                // same adds in the same order as indexed access, without
                // re-deriving `j*n + k` per element
                let orow = &mut out.as_mut_slice()[j * n + j..(j + 1) * n];
                for (o, &rk) in orow.iter_mut().zip(&r[j..]) {
                    *o += a * rk;
                }
            }
        }
        for j in 0..n {
            for k in 0..j {
                out[(j, k)] = out[(k, j)];
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.as_slice().iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place `self += s * other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, s: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.as_slice()) {
            *a += s * b;
        }
    }

    /// Maximum absolute entry (∞-norm of the flattened data); 0 for empty.
    pub fn max_abs(&self) -> f64 {
        self.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }

    /// Maximum absolute asymmetry `max |A_ij - A_ji|`; 0 for square symmetric.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square(), "asymmetry requires a square matrix");
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Extracts the sub-matrix of the given row and column index sets.
    pub fn submatrix(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out[(oi, oj)] = self[(i, j)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data.as_slice()[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        let idx = i * self.cols + j;
        &mut self.data_mut()[idx]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        assert_eq!(m.diag(), vec![1.0, 4.0]);
    }

    #[test]
    fn from_fn_matches_closure() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.5, 4.0, -1.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn checked_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.checked_matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_and_tr_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let v = [1.0, 0.0, -1.0];
        assert_eq!(a.matvec(&v), vec![-2.0, -2.0]);
        let w = [1.0, 2.0];
        assert_eq!(a.tr_matvec(&w), vec![9.0, 12.0, 15.0]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        assert!(g.sub(&explicit).max_abs() < 1e-12);
        assert!(g.asymmetry() == 0.0);
    }

    #[test]
    fn blocked_kernels_are_bit_identical_to_scalar_reference() {
        // The register-blocked matmul/matvec must execute the identical
        // floating-point operations as the unblocked i-k-j kernel with
        // per-row zero skips — including shapes that exercise the 4-row
        // blocks, the remainder rows, and zero entries (B-spline designs
        // are banded, so the skip path is the common case).
        for &(m, k, n) in &[(1, 3, 2), (4, 4, 4), (5, 3, 7), (9, 6, 5), (12, 8, 1)] {
            let a = Matrix::from_fn(m, k, |i, j| {
                if (i + 2 * j) % 3 == 0 {
                    0.0
                } else {
                    ((i * 31 + j * 17) as f64 * 0.61).sin()
                }
            });
            let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 7) as f64 * 0.37).cos());
            // scalar reference: i-k-j with the per-row zero skip
            let mut reference = Matrix::zeros(m, n);
            for i in 0..m {
                for kk in 0..k {
                    let av = a[(i, kk)];
                    if av == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        reference[(i, j)] += av * b[(kk, j)];
                    }
                }
            }
            let blocked = a.matmul(&b);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        blocked[(i, j)].to_bits(),
                        reference[(i, j)].to_bits(),
                        "matmul ({m}x{k})·({k}x{n}) at ({i},{j})"
                    );
                }
            }
            // matvec: per-row sequential dot is the reference
            let v: Vec<f64> = (0..k).map(|j| ((j * 5) as f64 * 0.29).sin()).collect();
            let blocked_v = a.matvec(&v);
            for i in 0..m {
                assert_eq!(
                    blocked_v[i].to_bits(),
                    crate::vector::dot(a.row(i), &v).to_bits(),
                    "matvec row {i}"
                );
            }
            // and the into-variant reuses a dirty buffer unchanged
            let mut buf = vec![99.0; 2];
            a.matvec_into(&v, &mut buf);
            assert_eq!(buf, blocked_v);
        }
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[7.0, 12.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!(m.is_finite());
        let bad = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn submatrix_extraction() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(&[0, 2], &[1, 3]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 1.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(2, 2)], 3.0);
    }

    #[test]
    fn debug_output_is_truncated() {
        let m = Matrix::zeros(10, 10);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 10x10"));
        assert!(s.contains('…'));
    }

    fn shared_copy(m: &Matrix) -> Matrix {
        let owner = std::sync::Arc::new(m.as_slice().to_vec());
        let (ptr, len) = (owner.as_ptr(), owner.len());
        // SAFETY: the Arc'd Vec is never mutated and outlives the view.
        let view = unsafe { crate::SharedF64s::from_raw_parts(owner, ptr, len) };
        Matrix::from_shared(m.nrows(), m.ncols(), view)
    }

    #[test]
    fn shared_matrix_kernels_match_owned_bit_for_bit() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 31 + j * 17) as f64).sin());
        let b = Matrix::from_fn(5, 6, |i, j| ((i * 13 + j * 7) as f64).cos());
        let (sa, sb) = (shared_copy(&a), shared_copy(&b));
        assert!(sa.is_borrowed() && sb.is_borrowed());

        let eager = a.matmul(&b);
        let lazy = sa.matmul(&sb);
        for (x, y) in eager.as_slice().iter().zip(lazy.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let v: Vec<f64> = (0..5).map(|k| k as f64 - 2.0).collect();
        for (x, y) in a.matvec(&v).iter().zip(sa.matvec(&v)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.gram().as_slice().iter().zip(sa.gram().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.frobenius_norm().to_bits(), sa.frobenius_norm().to_bits());
        assert_eq!(a.transpose(), sa.transpose());
        assert_eq!(a.row(3), sa.row(3));
        assert_eq!(a[(2, 4)], sa[(2, 4)]);
    }

    #[test]
    fn shared_matrix_copies_on_first_write() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut s = shared_copy(&m);
        assert!(s.is_borrowed());
        s[(1, 1)] = 99.0;
        assert!(!s.is_borrowed(), "mutation must detach from shared storage");
        assert_eq!(s[(1, 1)], 99.0);
        assert_eq!(m[(1, 1)], 2.0, "the original owner is untouched");

        let mut t = shared_copy(&m);
        t.axpy(2.0, &m);
        assert!(!t.is_borrowed());
        assert_eq!(t[(2, 2)], 12.0);
    }

    #[test]
    fn equality_spans_storage_tiers() {
        let m = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let s = shared_copy(&m);
        assert_eq!(m, s);
        assert_eq!(s, s.clone());
        let mut w = s.clone();
        w[(0, 0)] += 1.0;
        assert_ne!(m, w);
    }
}
