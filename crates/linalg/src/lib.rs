//! # mfod-linalg
//!
//! Small, dependency-free dense linear algebra kernels sized for the needs of
//! the `mfod` workspace: penalized least-squares smoothing systems
//! (a few hundred unknowns at most), kernel matrices for one-class SVMs,
//! covariance manipulation for depth functions, and Gauss–Legendre
//! quadrature for penalty matrices.
//!
//! The centerpiece is [`Matrix`], a row-major dense `f64` matrix with the
//! factorizations used throughout the workspace:
//!
//! * [`cholesky::Cholesky`] — SPD solves for ridge/smoothing systems,
//! * [`lu::Lu`] — general square solves, determinants and inverses,
//! * [`qr::Qr`] — Householder QR for least squares,
//! * [`eigen::jacobi_eigen`] — symmetric eigendecomposition (Jacobi).
//!
//! Free-function vector kernels (dot products, norms, robust statistics such
//! as the median and the MAD) live in [`vector`]; Gauss–Legendre nodes in
//! [`quadrature`].
//!
//! ## Example
//!
//! ```
//! use mfod_linalg::{Matrix, cholesky::Cholesky};
//!
//! // Solve the SPD system (AᵀA + I) x = b.
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
//! let mut ata = a.transpose().matmul(&a);
//! for i in 0..2 { ata[(i, i)] += 1.0; }
//! let chol = Cholesky::new(&ata).unwrap();
//! let x = chol.solve(&[1.0, 1.0]);
//! assert_eq!(x.len(), 2);
//! ```

// Index-based loops are used deliberately in the numeric kernels: the
// loop index mirrors the textbook formulas being implemented.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod par;
pub mod qr;
pub mod quadrature;
pub mod shared;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use shared::{SharedF64s, SharedOwner};

/// Workspace-wide `Result` alias for linear algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
