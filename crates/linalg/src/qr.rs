//! Householder QR factorization and least-squares solving.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Householder QR factorization `A = Q R` of an `m x n` matrix with `m >= n`.
///
/// The factorization is stored compactly: Householder vectors below the
/// diagonal of `qr`, the upper triangle of `R` on and above it.
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    /// Scalar β of each Householder reflector `H = I - β v vᵀ`.
    betas: Vec<f64>,
}

impl Qr {
    /// Factorizes `a`. Requires `nrows >= ncols`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "qr (m >= n required)",
                lhs: (m, n),
                rhs: (m, n),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            // Build the Householder reflector annihilating qr[k+1.., k].
            let mut norm_sq = 0.0;
            for i in k..m {
                norm_sq += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                betas.push(0.0);
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha e1, stored in place with v[k] implicit
            let v0 = qr[(k, k)] - alpha;
            // β = 2 / (vᵀv) = 2 / (‖x‖² - 2 α x₀ + α²) = 1/(α² - α x₀) … use stable form
            let vtv = norm_sq - 2.0 * alpha * qr[(k, k)] + alpha * alpha;
            let beta = if vtv > 0.0 { 2.0 / vtv } else { 0.0 };
            qr[(k, k)] = v0;
            // Apply H to the trailing columns.
            for j in (k + 1)..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta;
                for i in k..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
            // Store R's diagonal entry; keep v below the diagonal, v0 in a
            // temporary: we stash alpha on the diagonal and remember v0 by
            // scaling the whole v so that v[k] = 1 (standard compact form).
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    qr[(i, k)] /= v0;
                }
            }
            betas.push(beta * v0 * v0);
            qr[(k, k)] = alpha;
        }
        Ok(Qr { qr, betas })
    }

    /// Shape `(m, n)` of the factored matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.ncols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.qr.shape();
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v[k] = 1, v[i] stored in qr[(i,k)] for i > k
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * y[i];
            }
            s *= beta;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr[(i, k)];
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A x - b‖₂`.
    ///
    /// Fails with [`LinalgError::Singular`] if `R` has a (near-)zero
    /// diagonal entry (rank-deficient `A`).
    ///
    /// # Panics
    /// Panics if `b.len() != nrows`.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        assert_eq!(b.len(), m, "qr solve dimension mismatch");
        let y = self.apply_qt(b);
        let tol = f64::EPSILON * self.qr.max_abs().max(1.0) * m as f64;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() <= tol {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

/// Convenience: least-squares solve `min ‖A x − b‖` with a fresh QR.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::new(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_matches_lu() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = lstsq(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-10);
        assert!((x[1] - 1.4).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_regression() {
        // Fit y = 1 + 2 t at t = 0,1,2,3 exactly.
        let t = [0.0, 1.0, 2.0, 3.0];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { t[i] });
        let y: Vec<f64> = t.iter().map(|x| 1.0 + 2.0 * x).collect();
        let beta = lstsq(&a, &y).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_is_orthogonal() {
        // Noisy overdetermined system: residual must be ⟂ to the columns.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [0.1, 1.9, 4.2, 5.8];
        let x = lstsq(&a, &b).unwrap();
        let fitted = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&fitted).map(|(bi, fi)| bi - fi).collect();
        let atr = a.tr_matvec(&resid);
        for v in atr {
            assert!(v.abs() < 1e-10, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn r_is_upper_triangular_and_consistent() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        assert_eq!(r[(1, 0)], 0.0);
        // ‖R‖_F == ‖A‖_F since Q is orthogonal
        assert!((r.frobenius_norm() - a.frobenius_norm()).abs() < 1e-10);
    }

    #[test]
    fn rejects_underdetermined() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_nan() {
        let a = Matrix::from_rows(&[&[f64::NAN], &[1.0]]);
        assert!(matches!(Qr::new(&a), Err(LinalgError::NonFinite)));
    }
}
