//! Gauss–Legendre quadrature.
//!
//! An `n`-point Gauss–Legendre rule integrates polynomials of degree
//! `2n − 1` exactly, which is what the B-spline penalty matrix
//! `R_q = ∫ D^q φ_j D^q φ_m dt` needs: on each knot span the integrand is a
//! polynomial of degree at most `2(k − 1 − q)`.

/// A quadrature rule: paired nodes and weights on a target interval.
#[derive(Debug, Clone)]
pub struct QuadratureRule {
    /// Quadrature nodes.
    pub nodes: Vec<f64>,
    /// Quadrature weights (positive, summing to the interval length).
    pub weights: Vec<f64>,
}

impl QuadratureRule {
    /// Integrates `f` with this rule.
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

/// Computes the `n`-point Gauss–Legendre rule on `[-1, 1]` by Newton
/// iteration on the Legendre polynomial `P_n` starting from the Chebyshev
/// approximation of its roots.
///
/// # Panics
/// Panics if `n == 0`.
pub fn gauss_legendre(n: usize) -> QuadratureRule {
    assert!(n > 0, "gauss_legendre requires n >= 1");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev initial guess for the i-th root (descending order).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            let (p, d) = legendre_and_derivative(n, x);
            dp = d;
            let dx = p / d;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        // middle node is exactly 0
        nodes[n / 2] = 0.0;
        let (_, d) = legendre_and_derivative(n, 0.0);
        weights[n / 2] = 2.0 / (d * d);
    }
    QuadratureRule { nodes, weights }
}

/// Gauss–Legendre rule mapped onto `[a, b]`.
///
/// # Panics
/// Panics if `n == 0` or `a > b`.
pub fn gauss_legendre_on(n: usize, a: f64, b: f64) -> QuadratureRule {
    assert!(a <= b, "interval must satisfy a <= b");
    let base = gauss_legendre(n);
    let mid = 0.5 * (a + b);
    let half = 0.5 * (b - a);
    QuadratureRule {
        nodes: base.nodes.iter().map(|&x| mid + half * x).collect(),
        weights: base.weights.iter().map(|&w| w * half).collect(),
    }
}

/// Evaluates the Legendre polynomial `P_n` and its derivative at `x` via the
/// three-term recurrence.
fn legendre_and_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0; // P_0
    let mut p1 = x; // P_1
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    // derivative identity: (1-x²) P_n' = n (P_{n-1} - x P_n)
    let d = if (1.0 - x * x).abs() > 1e-300 {
        n as f64 * (p0 - x * p1) / (1.0 - x * x)
    } else {
        0.0
    };
    (p1, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_interval_length() {
        for n in 1..=10 {
            let rule = gauss_legendre(n);
            let s: f64 = rule.weights.iter().sum();
            assert!((s - 2.0).abs() < 1e-12, "n={n}: {s}");
            let rule = gauss_legendre_on(n, 1.0, 4.0);
            let s: f64 = rule.weights.iter().sum();
            assert!((s - 3.0).abs() < 1e-12, "n={n}: {s}");
        }
    }

    #[test]
    fn nodes_are_symmetric_and_inside() {
        let rule = gauss_legendre(7);
        for (&a, &b) in rule.nodes.iter().zip(rule.nodes.iter().rev()) {
            assert!((a + b).abs() < 1e-12);
        }
        assert!(rule.nodes.iter().all(|&x| (-1.0..=1.0).contains(&x)));
        // strictly increasing
        for w in rule.nodes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_degree_2n_minus_1() {
        // ∫_{-1}^{1} x^d dx = 0 (odd) or 2/(d+1) (even)
        for n in 1..=8 {
            let rule = gauss_legendre(n);
            for d in 0..(2 * n) {
                let approx = rule.integrate(|x| x.powi(d as i32));
                let exact = if d % 2 == 1 {
                    0.0
                } else {
                    2.0 / (d as f64 + 1.0)
                };
                assert!(
                    (approx - exact).abs() < 1e-12,
                    "n={n} degree={d}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn mapped_rule_integrates_cubic() {
        // ∫₁³ (x³ - 2x) dx = [x⁴/4 - x²]₁³ = (81/4 - 9) - (1/4 - 1) = 12
        let rule = gauss_legendre_on(2, 1.0, 3.0);
        let v = rule.integrate(|x| x * x * x - 2.0 * x);
        assert!((v - 12.0).abs() < 1e-12);
    }

    #[test]
    fn known_two_point_rule() {
        let rule = gauss_legendre(2);
        let expect = 1.0 / 3.0_f64.sqrt();
        assert!((rule.nodes[0] + expect).abs() < 1e-12);
        assert!((rule.nodes[1] - expect).abs() < 1e-12);
        assert!((rule.weights[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integrates_transcendental_accurately() {
        // ∫₀^π sin x dx = 2, a 10-point rule should nail it
        let rule = gauss_legendre_on(10, 0.0, std::f64::consts::PI);
        assert!((rule.integrate(f64::sin) - 2.0).abs() < 1e-10);
    }
}
