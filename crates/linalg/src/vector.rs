//! Free-function kernels over `&[f64]` slices: inner products, norms,
//! elementary statistics and the robust location/scale estimators (median,
//! MAD) needed by projection depth.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (l2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2_sq length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    dist2_sq(a, b).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
/// Panics if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    a.iter().sum::<f64>() / a.len() as f64
}

/// Unbiased sample variance (divides by `n - 1`); `NaN` when `n < 2`.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return f64::NAN;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Population variance (divides by `n`); `NaN` for empty input.
pub fn variance_pop(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Sample standard deviation; `NaN` when `n < 2`.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Minimum value; `NaN` for empty input. NaN entries are ignored.
pub fn min(a: &[f64]) -> f64 {
    a.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::NAN, |m, v| if m.is_nan() || v < m { v } else { m })
}

/// Maximum value; `NaN` for empty input. NaN entries are ignored.
pub fn max(a: &[f64]) -> f64 {
    a.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(f64::NAN, |m, v| if m.is_nan() || v > m { v } else { m })
}

/// Median (average of the two central order statistics for even length);
/// `NaN` for empty input.
///
/// Uses `select_nth_unstable` for O(n) average complexity.
pub fn median(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let mut buf: Vec<f64> = a.to_vec();
    let n = buf.len();
    let mid = n / 2;
    let (_, &mut hi, _) = buf.select_nth_unstable_by(mid, |x, y| x.total_cmp(y));
    if n % 2 == 1 {
        hi
    } else {
        // `select_nth_unstable` leaves elements < pivot in the left part, so
        // the lower central order statistic is the max of that part.
        let lo = max(&buf[..mid]);
        0.5 * (lo + hi)
    }
}

/// Median absolute deviation around the median, scaled by 1.4826 so it is a
/// consistent estimator of the standard deviation under normality.
///
/// Returns `NaN` for empty input.
pub fn mad(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let med = median(a);
    let devs: Vec<f64> = a.iter().map(|x| (x - med).abs()).collect();
    1.4826 * median(&devs)
}

/// Unscaled median absolute deviation (no normal-consistency factor).
pub fn mad_raw(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let med = median(a);
    let devs: Vec<f64> = a.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
///
/// `q` is clamped to `[0, 1]`. Returns `NaN` for empty input.
pub fn quantile(a: &[f64], q: f64) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let mut buf: Vec<f64> = a.to_vec();
    buf.sort_by(|x, y| x.total_cmp(y));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (buf.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        buf[lo]
    } else {
        let w = pos - lo as f64;
        buf[lo] * (1.0 - w) + buf[hi] * w
    }
}

/// True when every entry is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

/// Normalizes `x` to unit Euclidean norm in place.
///
/// Returns the original norm. If the norm is below `eps`, `x` is left
/// untouched and the (near-zero) norm is returned so callers can apply
/// their own convention for degenerate directions.
pub fn normalize(x: &mut [f64], eps: f64) -> f64 {
    let n = norm2(x);
    if n > eps {
        scale(1.0 / n, x);
    }
    n
}

/// Cumulative trapezoidal integral of `y` sampled at strictly increasing
/// abscissae `t`; output has the same length with `out[0] = 0`.
///
/// # Panics
/// Panics if lengths differ or fewer than 2 points are given.
pub fn cumtrapz(t: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(t.len(), y.len(), "cumtrapz length mismatch");
    assert!(t.len() >= 2, "cumtrapz needs at least two points");
    let mut out = Vec::with_capacity(t.len());
    out.push(0.0);
    let mut acc = 0.0;
    for i in 1..t.len() {
        acc += 0.5 * (y[i] + y[i - 1]) * (t[i] - t[i - 1]);
        out.push(acc);
    }
    out
}

/// Trapezoidal integral of `y` over `t`.
///
/// # Panics
/// Panics if lengths differ or fewer than 2 points are given.
pub fn trapz(t: &[f64], y: &[f64]) -> f64 {
    assert_eq!(t.len(), y.len(), "trapz length mismatch");
    assert!(t.len() >= 2, "trapz needs at least two points");
    let mut acc = 0.0;
    for i in 1..t.len() {
        acc += 0.5 * (y[i] + y[i - 1]) * (t[i] - t[i - 1]);
    }
    acc
}

/// Ranks with average tie-handling (1-based ranks, as in statistics).
pub fn average_ranks(a: &[f64]) -> Vec<f64> {
    let n = a.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| a[i].total_cmp(&a[j]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && a[idx[j + 1]] == a[idx[i]] {
            j += 1;
        }
        // positions i..=j share the same value; assign the average rank
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist2_sq(&[1.0], &[4.0]), 9.0);
    }

    #[test]
    fn axpy_scale_sub_add() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5]);
        assert_eq!(sub(&[3.0], &[1.0]), vec![2.0]);
        assert_eq!(add(&[3.0], &[1.0]), vec![4.0]);
    }

    #[test]
    fn mean_variance_std() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((variance_pop(&a) - 4.0).abs() < 1e-12);
        assert!((variance(&a) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&a) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn median_with_ties() {
        assert_eq!(median(&[1.0, 1.0, 1.0, 9.0]), 1.0);
        assert_eq!(median(&[2.0, 2.0]), 2.0);
    }

    #[test]
    fn mad_of_symmetric_data() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        // median = 3, abs devs = [2,1,0,1,2], median dev = 1
        assert!((mad_raw(&a) - 1.0).abs() < 1e-12);
        assert!((mad(&a) - 1.4826).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&a, 0.0), 1.0);
        assert_eq!(quantile(&a, 1.0), 4.0);
        assert!((quantile(&a, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&a, 1.0 / 3.0) - 2.0).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(min(&[3.0, f64::NAN, 1.0]), 1.0);
        assert_eq!(max(&[3.0, f64::NAN, 1.0]), 3.0);
        assert!(min(&[]).is_nan());
    }

    #[test]
    fn normalize_unit_vector() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v, 1e-12);
        assert_eq!(n, 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        let n = normalize(&mut z, 1e-12);
        assert_eq!(n, 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn trapz_linear_function_exact() {
        // ∫₀¹ 2t dt = 1 exactly under the trapezoid rule.
        let t: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = t.iter().map(|x| 2.0 * x).collect();
        assert!((trapz(&t, &y) - 1.0).abs() < 1e-12);
        let c = cumtrapz(&t, &y);
        assert_eq!(c[0], 0.0);
        assert!((c[10] - 1.0).abs() < 1e-12);
        // cumulative integral of 2t is t², check a midpoint
        assert!((c[5] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = average_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
        let r = average_ranks(&[]);
        assert!(r.is_empty());
    }

    #[test]
    fn all_finite_detects_nan_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
