//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! This is the workhorse of the penalized least-squares smoother: the system
//! `(ΦᵀΦ + λR) α = Φᵀy` is SPD (possibly only semi-definite for λ = 0 with
//! degenerate designs, which the jittered constructor handles).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read. Fails with
    /// [`LinalgError::Singular`] if a non-positive pivot is encountered and
    /// with [`LinalgError::NotSquare`] for rectangular input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // diagonal entry
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::Singular { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a + jitter·I`, growing `jitter` geometrically from
    /// `initial_jitter` until the factorization succeeds (at most 10 tries).
    ///
    /// Useful when `a` is SPD in exact arithmetic but borderline in floating
    /// point (e.g. an unpenalized Gram matrix with nearly collinear columns).
    pub fn new_jittered(a: &Matrix, initial_jitter: f64) -> Result<Self> {
        match Cholesky::new(a) {
            Ok(c) => return Ok(c),
            Err(LinalgError::Singular { .. }) => {}
            Err(e) => return Err(e),
        }
        let scale = a.max_abs().max(1.0);
        let mut jitter = initial_jitter.max(f64::EPSILON) * scale;
        for _ in 0..10 {
            let mut aj = a.clone();
            for i in 0..a.nrows() {
                aj[(i, i)] += jitter;
            }
            match Cholesky::new(&aj) {
                Ok(c) => return Ok(c),
                Err(LinalgError::Singular { .. }) => jitter *= 10.0,
                Err(e) => return Err(e),
            }
        }
        Err(LinalgError::Singular { pivot: 0 })
    }

    /// Rebuilds a factorization from a previously computed lower factor
    /// `L` (e.g. one restored from a model snapshot), validating that it
    /// is square, finite, strictly lower-triangular (zeros above the
    /// diagonal) and has positive pivots — exactly the invariants
    /// [`Cholesky::new`] guarantees, so every solve on the rebuilt
    /// factorization is bit-for-bit identical to one on the original.
    pub fn from_factor(l: Matrix) -> Result<Self> {
        if !l.is_square() {
            return Err(LinalgError::NotSquare { shape: l.shape() });
        }
        if !l.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        for i in 0..l.nrows() {
            if l[(i, i)] <= 0.0 {
                return Err(LinalgError::InvalidFactor {
                    reason: "Cholesky factor needs strictly positive diagonal entries",
                });
            }
            for j in (i + 1)..l.ncols() {
                if l[(i, j)] != 0.0 {
                    return Err(LinalgError::InvalidFactor {
                        reason: "Cholesky factor must be lower-triangular",
                    });
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `A x = b` given the factorization.
    ///
    /// # Panics
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.solve_into(b, &mut y);
        y
    }

    /// [`Cholesky::solve`] into a caller-owned buffer (cleared and
    /// refilled), so repeated solves — e.g. one per selection-ladder
    /// candidate per curve — reuse a single allocation.
    ///
    /// # Panics
    /// Panics if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[f64], y: &mut Vec<f64>) {
        let n = self.dim();
        assert_eq!(b.len(), n, "cholesky solve dimension mismatch");
        y.clear();
        y.extend_from_slice(b);
        self.forward_sub(y);
        // backward substitution Lᵀ x = y
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[(k, i)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
    }

    /// In-place forward substitution `L y = y`, walking each factor row
    /// as a contiguous slice (the same subtractions in the same ascending
    /// order as indexed access).
    fn forward_sub(&self, y: &mut [f64]) {
        let n = self.dim();
        let data = self.l.as_slice();
        for i in 0..n {
            let row = &data[i * n..i * n + i];
            let mut yi = y[i];
            for (k, &lik) in row.iter().enumerate() {
                yi -= lik * y[k];
            }
            y[i] = yi / data[i * n + i];
        }
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Panics
    /// Panics if `b.nrows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            b.nrows(),
            self.dim(),
            "cholesky solve_matrix dimension mismatch"
        );
        let mut out = Matrix::zeros(b.nrows(), b.ncols());
        for j in 0..b.ncols() {
            let col = b.col(j);
            let x = self.solve(&col);
            for i in 0..b.nrows() {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Computes `A⁻¹` explicitly.
    ///
    /// Quadratic forms `bᵀA⁻¹b` (e.g. hat-matrix diagonals) are cheaper
    /// and more stable via [`Cholesky::solve_lower`]:
    /// `bᵀ(LLᵀ)⁻¹b = ‖L⁻¹b‖²`, one forward substitution instead of a full
    /// O(n³) inverse.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Solves the lower-triangular half-system `L y = b` by forward
    /// substitution (`A = L Lᵀ`), in O(n²).
    ///
    /// # Panics
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.solve_lower_into(b, &mut y);
        y
    }

    /// [`Cholesky::solve_lower`] into a caller-owned buffer (cleared and
    /// refilled).
    ///
    /// # Panics
    /// Panics if `b.len() != dim()`.
    pub fn solve_lower_into(&self, b: &[f64], y: &mut Vec<f64>) {
        assert_eq!(
            b.len(),
            self.dim(),
            "cholesky solve_lower dimension mismatch"
        );
        y.clear();
        y.extend_from_slice(b);
        self.forward_sub(y);
    }

    /// Solves `L Y = B` for **every column of `B` in one fused sweep**:
    /// the forward substitution walks the factor rows once, applying each
    /// `L_ik` to a whole row of right-hand sides, so `L` is streamed from
    /// memory once per sweep instead of once per column.
    ///
    /// Per column the operations — subtractions in ascending `k` order,
    /// then one division — are identical to [`Cholesky::solve_lower`] on
    /// that column, so the result is bit-for-bit the column-by-column
    /// loop. This is the kernel behind hat-matrix diagonals
    /// (`h_jj = ‖L⁻¹φ_j‖²` for all observations at once).
    ///
    /// Takes `b` by value and solves **in place** in its buffer — callers
    /// that build the right-hand sides fresh (e.g. a transposed design
    /// matrix) hand the matrix over without a second full-size copy;
    /// clone at the call site to keep the original.
    ///
    /// # Panics
    /// Panics if `b.nrows() != dim()`.
    pub fn solve_lower_multi(&self, b: Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(
            b.nrows(),
            n,
            "cholesky solve_lower_multi dimension mismatch"
        );
        let mut y = b;
        let width = y.ncols();
        let data = self.l.as_slice();
        for i in 0..n {
            let lrow = &data[i * n..i * n + i];
            // split so row i is mutable while rows 0..i are read
            let (solved, rest) = y.as_mut_slice().split_at_mut(i * width);
            let yrow = &mut rest[..width];
            for (k, &lik) in lrow.iter().enumerate() {
                let yk = &solved[k * width..(k + 1) * width];
                for (yi, &ykc) in yrow.iter_mut().zip(yk) {
                    *yi -= lik * ykc;
                }
            }
            let d = data[i * n + i];
            for yi in yrow.iter_mut() {
                *yi /= d;
            }
        }
        y
    }

    /// log-determinant of `A` (sum of `2 log L_ii`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
    }

    #[test]
    fn factor_known_matrix() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]]
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_factor_roundtrip_and_validation() {
        let c = Cholesky::new(&spd3()).unwrap();
        let rebuilt = Cholesky::from_factor(c.factor().clone()).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x1 = c.solve(&b);
        let x2 = rebuilt.solve(&b);
        for (a, b) in x1.iter().zip(&x2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // invalid factors are rejected with typed errors
        assert!(matches!(
            Cholesky::from_factor(Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Cholesky::from_factor(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, f64::NAN]])),
            Err(LinalgError::NonFinite)
        ));
        assert!(matches!(
            Cholesky::from_factor(Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]])),
            Err(LinalgError::InvalidFactor { .. })
        ));
        assert!(matches!(
            Cholesky::from_factor(Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.0]])),
            Err(LinalgError::InvalidFactor { .. })
        ));
    }

    #[test]
    fn reconstruction() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let rec = l.matmul(&l.transpose());
        assert!(rec.sub(&a).max_abs() < 1e-10);
    }

    #[test]
    fn solve_roundtrip() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let inv = c.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.sub(&Matrix::identity(3)).max_abs() < 1e-9);
    }

    #[test]
    fn solve_lower_matches_quadratic_form() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        // L y = b by construction: L yᵀy = ‖L⁻¹b‖² = bᵀ A⁻¹ b
        let b = [1.0, -2.0, 0.5];
        let y = c.solve_lower(&b);
        let rec = c.factor().matvec(&y);
        for (ri, bi) in rec.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
        let quad: f64 = y.iter().map(|v| v * v).sum();
        let direct = crate::vector::dot(&b, &c.solve(&b));
        assert!((quad - direct).abs() < 1e-9 * (1.0 + direct.abs()));
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_rectangular_and_nan() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        let a = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::NonFinite)));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // rank-1 matrix, positive semi-definite but singular
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
        let c = Cholesky::new_jittered(&a, 1e-10).unwrap();
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn log_det_matches_known_value() {
        // det = (2*1*3)² = 36
        let c = Cholesky::new(&spd3()).unwrap();
        assert!((c.log_det() - 36.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn solve_lower_multi_is_bit_identical_to_columnwise() {
        let c = Cholesky::new(&spd3()).unwrap();
        // 5 columns exercise both the blocked width and odd shapes
        let b = Matrix::from_fn(3, 5, |i, j| ((i * 7 + j * 3) as f64 * 0.37).sin());
        let fused = c.solve_lower_multi(b.clone());
        for j in 0..b.ncols() {
            let col = c.solve_lower(&b.col(j));
            for i in 0..3 {
                assert_eq!(
                    fused[(i, j)].to_bits(),
                    col[i].to_bits(),
                    "column {j} row {i}"
                );
            }
        }
        // the into-variants reuse buffers without changing results
        let mut buf = vec![9.0; 17];
        c.solve_lower_into(&b.col(2), &mut buf);
        assert_eq!(buf, c.solve_lower(&b.col(2)));
        let mut buf2 = Vec::new();
        c.solve_into(&b.col(1), &mut buf2);
        assert_eq!(buf2, c.solve(&b.col(1)));
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x = c.solve_matrix(&b);
        let rec = a.matmul(&x);
        assert!(rec.sub(&b).max_abs() < 1e-9);
    }
}
