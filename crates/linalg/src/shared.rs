//! Owner-backed shared `f64` storage for zero-copy [`Matrix`] payloads.
//!
//! A [`SharedF64s`] is a read-only `[f64]` view whose memory is kept
//! alive by an opaque reference-counted owner (a memory-mapped snapshot
//! file, an aligned byte buffer) instead of a `Vec<f64>`. It is the
//! storage behind [`Matrix`] values decoded directly out of a mapped
//! model snapshot: the matrix serves reads straight from the map and the
//! map cannot be unmapped while any matrix still points into it, because
//! every view holds a clone of the owner `Arc`.
//!
//! [`Matrix`]: crate::Matrix

use std::any::Any;
use std::sync::Arc;

/// An opaque keep-alive handle: anything reference-counted, sendable and
/// shareable can own the bytes behind a view.
pub type SharedOwner = Arc<dyn Any + Send + Sync>;

/// A read-only `[f64]` slice plus the owner that keeps it alive.
///
/// Cloning is cheap (an `Arc` clone and a pointer copy) and never copies
/// the floats.
#[derive(Clone)]
pub struct SharedF64s {
    /// Keeps the pointed-to memory alive and pinned; dropped last.
    _owner: SharedOwner,
    ptr: *const f64,
    len: usize,
}

// SAFETY: the view is strictly read-only, the owner is `Send + Sync`,
// and the construction contract pins the memory for the owner's
// lifetime, so sharing the pointer across threads is no more than
// sharing a `&[f64]` borrowed from the owner.
unsafe impl Send for SharedF64s {}
unsafe impl Sync for SharedF64s {}

impl SharedF64s {
    /// Builds a view over `len` `f64`s starting at `ptr`, kept alive by
    /// `owner`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that
    /// * `ptr` is aligned for `f64` and `ptr..ptr+len` is a single valid
    ///   allocation of initialized memory,
    /// * that memory is never written (by anyone) while `owner` or any
    ///   clone of this view is alive, and
    /// * the memory stays valid at a fixed address until `owner`'s last
    ///   clone drops (the owner must not move or free it earlier).
    pub unsafe fn from_raw_parts(owner: SharedOwner, ptr: *const f64, len: usize) -> Self {
        debug_assert!(len == 0 || !ptr.is_null());
        debug_assert!(
            (ptr as usize).is_multiple_of(std::mem::align_of::<f64>()),
            "unaligned"
        );
        SharedF64s {
            _owner: owner,
            ptr,
            len,
        }
    }

    /// The shared floats.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: upheld by the `from_raw_parts` contract — initialized,
        // immutable, alive as long as `_owner`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of `f64`s in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for SharedF64s {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedF64s")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(data: Vec<f64>) -> SharedF64s {
        let owner: Arc<Vec<f64>> = Arc::new(data);
        let (ptr, len) = (owner.as_ptr(), owner.len());
        // SAFETY: the Arc'd Vec is never mutated and outlives the view.
        unsafe { SharedF64s::from_raw_parts(owner, ptr, len) }
    }

    #[test]
    fn view_reads_owner_data() {
        let v = shared(vec![1.0, -0.0, f64::NAN]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.as_slice()[0], 1.0);
        assert_eq!(v.as_slice()[1].to_bits(), (-0.0f64).to_bits());
        assert!(v.as_slice()[2].is_nan());
        assert!(format!("{v:?}").contains("len"));
    }

    #[test]
    fn clones_share_without_copying() {
        let v = shared((0..512).map(|i| i as f64).collect());
        let w = v.clone();
        assert_eq!(v.as_slice().as_ptr(), w.as_slice().as_ptr());
        drop(v);
        assert_eq!(w.as_slice()[511], 511.0);
    }

    #[test]
    fn owner_outlives_all_views_across_threads() {
        let v = shared(vec![2.5; 1024]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let v = v.clone();
                std::thread::spawn(move || v.as_slice().iter().sum::<f64>())
            })
            .collect();
        drop(v);
        for h in handles {
            assert_eq!(h.join().unwrap(), 2.5 * 1024.0);
        }
    }
}
