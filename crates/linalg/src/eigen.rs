//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used for covariance analysis in depth baselines and for tests that need
//! spectra of penalty matrices. Jacobi is slow for large matrices but simple,
//! robust, and more than fast enough for the ≤ few-hundred sized problems in
//! this workspace.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Result of a symmetric eigendecomposition: `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, in the order of `values`.
    pub vectors: Matrix,
}

/// Computes all eigenvalues/eigenvectors of a symmetric matrix by the cyclic
/// Jacobi rotation method.
///
/// Only the lower triangle is trusted; the input is symmetrized first.
/// Fails with [`LinalgError::NoConvergence`] if the off-diagonal mass does
/// not vanish within 100 sweeps (practically unreachable for symmetric
/// input).
pub fn jacobi_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite);
    }
    let n = a.nrows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    // Symmetrize defensively.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    let tol = 1e-14 * m.max_abs().max(1.0);
    for _sweep in 0..max_sweeps {
        // largest off-diagonal magnitude
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off <= tol {
            return Ok(sort_eigen(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // stable tangent of the rotation angle
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // apply rotation J(p,q,θ) on both sides
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "jacobi_eigen",
        iterations: max_sweeps,
    })
}

fn sort_eigen(m: Matrix, v: Matrix) -> SymmetricEigen {
    let n = m.nrows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag = m.diag();
    order.sort_by(|&i, &j| diag[j].total_cmp(&diag[i]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = jacobi_eigen(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // eigenvector for λ=3 is ±(1,1)/√2
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = jacobi_eigen(&a).unwrap();
        let lam = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(rec.sub(&a).max_abs() < 1e-9);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.sub(&Matrix::identity(3)).max_abs() < 1e-9);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[2.0, -1.0]]);
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values.iter().sum::<f64>() - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(jacobi_eigen(&Matrix::zeros(2, 3)).is_err());
        assert!(jacobi_eigen(&Matrix::zeros(0, 0)).is_err());
        let nan = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(jacobi_eigen(&nan).is_err());
    }
}
