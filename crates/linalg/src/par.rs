//! Deterministic data parallelism on std scoped threads.
//!
//! The workspace builds without external crates, so this module provides
//! the small slice of a rayon-style API the hot paths need: map an index
//! range across threads in contiguous chunks and reassemble the results
//! **in order**. Chunked splitting keeps per-item results exactly where a
//! sequential loop would put them, which is what lets callers (batch
//! scoring, micro-batching) guarantee bit-for-bit parity with their
//! sequential counterparts.

use std::num::NonZeroUsize;

/// Number of worker threads the helpers will use (the `available_parallelism`
/// of the machine, with a safe fallback of 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every index in `0..n` and collects the results in index
/// order, splitting the range into contiguous chunks across up to
/// [`max_threads`] threads.
///
/// Falls back to a plain sequential loop when `n < 2` or only one thread
/// is available, so small batches pay no thread-spawn cost.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match par_try_map(n, |i| Ok::<T, Never>(f(i))) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Fallible [`par_map`]: reports the first error **in index order**. Note
/// that running chunks are not cancelled — every worker finishes its range
/// before the error is returned, so this is deterministic-error selection,
/// not fail-fast. On success the output is identical — element for element
/// — to the sequential `(0..n).map(f).collect()`.
pub fn par_try_map<T, E, F>(n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let threads = max_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    // Contiguous chunks, sized to within one item of each other.
    let base = n / threads;
    let extra = n % threads;
    let mut bounds = Vec::with_capacity(threads + 1);
    let mut start = 0usize;
    bounds.push(0);
    for t in 0..threads {
        start += base + usize::from(t < extra);
        bounds.push(start);
    }

    let chunk_results: Vec<Result<Vec<T>, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (lo, hi) = (bounds[t], bounds[t + 1]);
                let f = &f;
                scope.spawn(move || (lo..hi).map(f).collect::<Result<Vec<T>, E>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });

    let mut out = Vec::with_capacity(n);
    for chunk in chunk_results {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Uninhabited error type used to reuse the fallible path for the
/// infallible one.
enum Never {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let seq: Vec<u64> = (0..n)
                .map(|i| (i as u64).wrapping_mul(0x9E37) >> 3)
                .collect();
            let par = par_map(n, |i| (i as u64).wrapping_mul(0x9E37) >> 3);
            assert_eq!(seq, par, "n={n}");
        }
    }

    #[test]
    fn error_propagates() {
        let r: Result<Vec<usize>, String> = par_try_map(100, |i| {
            if i == 63 {
                Err(format!("boom {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(r.unwrap_err(), "boom 63");
        let ok: Result<Vec<usize>, String> = par_try_map(100, Ok);
        assert_eq!(ok.unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_in_index_order_wins() {
        // Errors at indices 10 and 90 land in different chunks on any
        // thread count; the reassembly order guarantees index 10 reports.
        let r: Result<Vec<usize>, usize> =
            par_try_map(100, |i| if i == 10 || i == 90 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), 10);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(max_threads() >= 1);
    }
}
