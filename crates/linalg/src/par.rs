//! Deterministic data parallelism on a **persistent worker pool** with
//! fine-grained, index-ordered task splitting and work stealing.
//!
//! The workspace builds without external crates, so this module provides
//! the small slice of a rayon-style API the hot paths need: map an index
//! range across threads and reassemble the results **in order**.
//!
//! ## Scheduling model
//!
//! Every map call pre-splits its index range `0..n` into small contiguous
//! **sub-chunks** — many more than there are threads — and pushes them
//! onto one shared deque in index order. Idle workers (and the calling
//! thread, while it waits) steal the next sub-chunk from the front of the
//! deque, so a thread that lands on cheap items immediately pulls more
//! work while a thread stuck on an expensive item keeps only that one
//! sub-chunk. This is what keeps unbalanced workloads — variable-depth
//! isolation-forest trees, CV folds of different cost, mixed-grid
//! selection fan-outs — from straggling on the one thread whose
//! contiguous share happened to contain the expensive items.
//!
//! The **split factor** (sub-chunks per thread per job) is derived purely
//! from the item count and the pool size — never from timing — so the
//! schedule is a pure function of `(n, threads, split)`:
//!
//! ```text
//! sub_chunks(n) = min(n, threads × split)      // split = MFOD_SPLIT or 8
//! ```
//!
//! [`Pool::try_map_contiguous`] keeps the previous one-chunk-per-thread
//! schedule; it has the lowest per-item overhead and is the reference
//! point `benches/pool_throughput.rs` measures the stealing scheduler
//! against.
//!
//! ## Runtime model
//!
//! A [`Pool`] owns long-lived worker threads fed from one shared deque.
//! The free functions [`par_map`] / [`par_try_map`] run on a global pool
//! that is lazily created on first use and sized to
//! [`configured_threads`], so every call site in the workspace shares one
//! set of workers and pays **no thread-spawn cost per call**.
//! [`Pool::with_threads`] builds an explicitly sized private pool for
//! tests and benchmarks.
//!
//! ## Global pool sizing
//!
//! The global pool's thread count is resolved once, at first use, with
//! this precedence:
//!
//! 1. [`Pool::global_with_config`], when called before any other global
//!    pool use (first initializer wins);
//! 2. the `MFOD_THREADS` environment variable ([`THREADS_ENV`]), when set
//!    to a positive integer — malformed or zero values fall through;
//! 3. [`max_threads`] (`available_parallelism`).
//!
//! `MFOD_THREADS=1` turns every global-pool call site into the exact
//! sequential loop. The split factor is resolved the same way from
//! `MFOD_SPLIT` ([`SPLIT_ENV`]) at pool creation; [`Pool::with_config`]
//! pins it explicitly.
//!
//! ## Determinism contract
//!
//! For a pure `f`, `pool.try_map(n, f)` returns exactly
//! `(0..n).map(f).collect()` — element for element, bit for bit —
//! regardless of the pool's thread count **and** split factor, because
//! every index is mapped independently and sub-chunk results are
//! reassembled strictly in index order. Which thread stole which
//! sub-chunk affects wall-clock time only, never the output. The *first*
//! failure in index order wins (running sub-chunks are not cancelled, so
//! this is deterministic-error selection, not fail-fast).
//!
//! ## Panic behavior
//!
//! A panicking closure does not poison the pool: the stealing worker
//! catches the unwind, the remaining sub-chunks finish, and the
//! **original panic payload** is re-raised on the calling thread via
//! [`std::panic::resume_unwind`]. When both a panic and an `Err` occur,
//! the one in the earlier sub-chunk (lower index range) is reported,
//! matching what a sequential loop would have hit first.
//!
//! ## Nesting
//!
//! Calls may nest (a mapped closure may itself call [`par_map`], even on
//! the same pool): a thread that is waiting for its sub-chunks to finish
//! steals queued tasks instead of blocking, so the pool cannot deadlock
//! on dependency cycles between waiters and queued work.
//!
//! ## Observability
//!
//! With `MFOD_OBS=1` (see `mfod-obs`), every map call records per-map
//! and per-sub-chunk telemetry into the global recorder: map count,
//! sub-chunks queued, how many queued sub-chunks the *caller* stole back
//! versus how many pool workers ran, and queue-wait / run-time
//! histograms per sub-chunk. Disabled (the default), each site costs one
//! relaxed atomic load and a predictable branch — no clocks, no
//! counters — and the schedule itself is never consulted, so enabling
//! observability cannot change any mapped result (the determinism
//! contract above is independent of the recorder state).

use std::any::Any;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable overriding the global pool's thread count.
pub const THREADS_ENV: &str = "MFOD_THREADS";

/// Environment variable overriding the scheduler's split factor: the
/// number of steal-able sub-chunks created **per thread** per map call.
/// Larger values balance rougher workloads at slightly higher queue
/// overhead; `MFOD_SPLIT=1` reproduces the contiguous one-chunk-per-thread
/// schedule. Malformed or zero values fall back to [`DEFAULT_SPLIT`].
pub const SPLIT_ENV: &str = "MFOD_SPLIT";

/// Default sub-chunks per thread per job. Eight keeps the largest
/// sub-chunk at ~1/(8·threads) of the work — small enough that one
/// expensive straggler item cannot hold more than its own sub-chunk
/// hostage, large enough that queue traffic stays negligible next to the
/// per-item work of the workspace's fan-outs (tree growth, fold fits,
/// per-sample selection ladders).
pub const DEFAULT_SPLIT: usize = 8;

/// Hardware thread budget of the machine (`available_parallelism`, with a
/// safe fallback of 1).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Thread count the global pool will be created with, resolving the
/// sizing precedence (highest first):
///
/// 1. an explicit [`Pool::global_with_config`] call that wins the
///    first-use race (this function only covers the next two tiers);
/// 2. the [`THREADS_ENV`] (`MFOD_THREADS`) environment variable, when set
///    to a positive integer — malformed or zero values are ignored;
/// 3. [`max_threads`] (`available_parallelism`).
pub fn configured_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .as_deref()
        .and_then(positive_from_env)
        .unwrap_or_else(max_threads)
}

/// Split factor the global pool will be created with: the [`SPLIT_ENV`]
/// (`MFOD_SPLIT`) environment variable when set to a positive integer,
/// [`DEFAULT_SPLIT`] otherwise.
pub fn configured_split() -> usize {
    std::env::var(SPLIT_ENV)
        .ok()
        .as_deref()
        .and_then(positive_from_env)
        .unwrap_or(DEFAULT_SPLIT)
}

/// Parses an `MFOD_THREADS` / `MFOD_SPLIT`-style value: a positive
/// integer (surrounding whitespace tolerated). Returns `None` — meaning
/// "fall back" — for anything else, so a typo degrades to the default
/// instead of crashing pool creation.
fn positive_from_env(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Applies `f` to every index in `0..n` and collects the results in index
/// order, splitting the range into steal-able sub-chunks across the
/// global pool's threads.
///
/// Falls back to a plain sequential loop when `n < 2` or only one thread
/// is available, so small batches pay no synchronization cost.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    global().map(n, f)
}

/// Fallible [`par_map`] on the global pool: reports the first error **in
/// index order**. On success the output is identical — element for
/// element — to the sequential `(0..n).map(f).collect()`.
pub fn par_try_map<T, E, F>(n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    global().try_map(n, f)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool shared by [`par_map`] / [`par_try_map`], created
/// on first use with [`configured_threads`] threads (the `MFOD_THREADS`
/// environment variable when set, `available_parallelism` otherwise) and
/// the [`configured_split`] split factor.
/// [`Pool::global_with_config`] can pin an explicit size before first use.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::with_threads(configured_threads()))
}

/// A task queued on the pool. Tasks are built exclusively by
/// [`Pool::try_map`], which catches unwinds inside the task body, so a
/// task never propagates a panic into a worker's run loop.
type Task = Box<dyn FnOnce() + Send>;

struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a task is queued or shutdown begins.
    work_ready: Condvar,
}

impl Shared {
    fn pop(&self) -> Option<Task> {
        self.queue.lock().unwrap().tasks.pop_front()
    }
}

/// A persistent, deterministic worker pool with a work-stealing
/// scheduler (see the module docs).
///
/// `Pool::with_threads(k)` keeps `k − 1` background workers; the thread
/// calling [`Pool::map`] / [`Pool::try_map`] steals sub-chunks alongside
/// them, so a map call uses at most `k` threads in total and a 1-thread
/// pool is exactly the sequential loop. Workers are joined when the pool
/// is dropped.
pub struct Pool {
    shared: &'static Shared,
    threads: usize,
    split: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("split", &self.split)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Pool {
    /// Creates a pool that runs maps on up to `threads` threads (clamped
    /// to at least 1) with the [`configured_split`] split factor.
    /// `with_threads(1)` spawns no workers and runs every map
    /// sequentially on the caller — handy as the reference point in
    /// determinism tests and benchmarks.
    pub fn with_threads(threads: usize) -> Pool {
        Pool::with_config(threads, configured_split())
    }

    /// Creates a pool with an explicit thread count **and** split factor
    /// (both clamped to at least 1). `split = 1` reproduces the
    /// contiguous one-chunk-per-thread schedule on every map call.
    pub fn with_config(threads: usize, split: usize) -> Pool {
        let threads = threads.max(1);
        // The shared state is leaked so worker threads can borrow it with
        // a 'static lifetime without reference counting in the hot path;
        // a pool is either global (never dropped) or a long-lived test /
        // bench fixture, so the one-off leak per pool is deliberate.
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        }));
        let workers = (1..threads)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("mfod-par-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            threads,
            split: split.max(1),
            workers,
        }
    }

    /// The maximum number of threads a map call on this pool can use
    /// (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The split factor: steal-able sub-chunks created per thread per map
    /// call (never derived from timing — see the module docs).
    pub fn split(&self) -> usize {
        self.split
    }

    /// The number of index-ordered sub-chunks a map over `n` items is
    /// pre-split into: `min(n, threads × split)` (0 for an empty range,
    /// 1 on a single-thread pool).
    ///
    /// Public so that callers which fold per-block partial results
    /// *manually* (e.g. the projection-depth supremum) can match the
    /// scheduler's granularity and inherit its straggler resistance.
    pub fn task_chunks(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        if self.threads == 1 {
            return 1;
        }
        n.min(self.threads.saturating_mul(self.split))
    }

    /// Initializes the global pool with an explicit thread count,
    /// returning the global pool either way.
    ///
    /// Sizing precedence: the **first** initializer of the global pool
    /// wins, so a `global_with_config` call that runs before any
    /// [`par_map`] / [`par_try_map`] / [`global`] use pins the size;
    /// afterwards the request is ignored and the existing pool is
    /// returned (check [`Pool::threads`] on the result). When the pool is
    /// instead created lazily, the `MFOD_THREADS` environment variable
    /// applies, then `available_parallelism` — see [`configured_threads`].
    pub fn global_with_config(threads: usize) -> &'static Pool {
        GLOBAL.get_or_init(|| Pool::with_threads(threads.max(1)))
    }

    /// Applies `f` to every index in `0..n`, collecting results in index
    /// order — bit-for-bit identical to `(0..n).map(f).collect()`.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_map(n, |i| Ok::<T, Never>(f(i))) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// Infallible [`Pool::try_map_contiguous`].
    pub fn map_contiguous<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_map_contiguous(n, |i| Ok::<T, Never>(f(i))) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// Fallible [`Pool::map`] on the stealing scheduler: the range is
    /// pre-split into [`Pool::task_chunks`] index-ordered sub-chunks that
    /// idle threads steal from a shared deque. Reports the first error
    /// **in index order**. Running sub-chunks are not cancelled — every
    /// sub-chunk finishes before the error is returned, so error
    /// selection is deterministic. A panic in `f` is re-raised on the
    /// calling thread with its original payload once all sub-chunks have
    /// finished; the pool stays usable afterwards.
    pub fn try_map<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.try_map_chunked(n, self.task_chunks(n), f)
    }

    /// Fallible map on the **contiguous** schedule: one chunk per thread,
    /// the PR-2 scheduler. Lowest per-item overhead; optimal for uniform
    /// per-item cost, straggles on unbalanced workloads (see
    /// `benches/pool_throughput.rs`). Output and error selection are
    /// identical to [`Pool::try_map`] — only wall-clock behavior differs.
    pub fn try_map_contiguous<T, E, F>(&self, n: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.try_map_chunked(n, self.threads.min(n), f)
    }

    /// The shared map driver: splits `0..n` into `chunks` contiguous
    /// sub-chunks (sized to within one item of each other), queues all
    /// but the first on the shared deque, runs the first inline, then
    /// steals until every sub-chunk has finished, and reassembles the
    /// per-chunk outcomes in index order.
    fn try_map_chunked<T, E, F>(&self, n: usize, chunks: usize, f: F) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        if chunks <= 1 || self.threads == 1 {
            // The sequential fallback is still a pool execution path: the
            // chaos hooks must cover it too (a 1-thread pool, or a batch
            // too small to split, is how most CI machines run). The whole
            // range is one "chunk" here, so one hit per non-empty map.
            // Unlike the stealing path there is no catch/rethrow wrapper:
            // an injected panic propagates inline, exactly like a real
            // item panic on this path.
            if n > 0 {
                mfod_faultline::stall(mfod_faultline::points::POOL_STRAGGLE);
                if mfod_faultline::should_fire(mfod_faultline::points::POOL_PANIC) {
                    panic!("injected fault: pool.panic");
                }
            }
            return (0..n).map(f).collect();
        }
        let obs = mfod_obs::active();
        if let Some(m) = obs {
            m.pool_maps.add(1);
            m.pool_chunks_queued.add((chunks - 1) as u64);
        }
        let mut bounds = Vec::with_capacity(chunks + 1);
        let (base, extra) = (n / chunks, n % chunks);
        let mut start = 0usize;
        bounds.push(0);
        for c in 0..chunks {
            start += base + usize::from(c < extra);
            bounds.push(start);
        }

        let outcomes: Vec<Mutex<Option<ChunkOutcome<T, E>>>> =
            (0..chunks).map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(chunks - 1);
        let run_chunk = |c: usize| -> ChunkOutcome<T, E> {
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            match catch_unwind(AssertUnwindSafe(|| {
                // Chaos hooks: a straggling chunk (injected delay) and a
                // panicking work item. Both compile to one relaxed load
                // when no fault plan is armed; the injected panic rides
                // the same catch/rethrow path as a real item panic.
                mfod_faultline::stall(mfod_faultline::points::POOL_STRAGGLE);
                if mfod_faultline::should_fire(mfod_faultline::points::POOL_PANIC) {
                    panic!("injected fault: pool.panic");
                }
                (lo..hi).map(&f).collect::<Result<Vec<T>, E>>()
            })) {
                Ok(Ok(items)) => ChunkOutcome::Items(items),
                Ok(Err(e)) => ChunkOutcome::Error(e),
                Err(payload) => ChunkOutcome::Panicked(payload),
            }
        };

        {
            // Only resolved when the recorder is on; the disabled path
            // never reads a clock.
            let queued_at = obs.map(|_| std::time::Instant::now());
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (1..chunks)
                .map(|c| {
                    let outcomes = &outcomes;
                    let latch = &latch;
                    let run_chunk = &run_chunk;
                    Box::new(move || {
                        // The guard counts down even if writing the
                        // outcome were to unwind, so the waiter can never
                        // hang on a lost count.
                        let _guard = CountdownGuard(latch);
                        if let (Some(m), Some(t)) = (obs, queued_at) {
                            m.pool_queue_wait.record_duration(t.elapsed());
                        }
                        let started = obs.map(|_| {
                            mfod_obs::journal::span_begin(mfod_obs::journal::NAME_POOL_CHUNK);
                            std::time::Instant::now()
                        });
                        let outcome = run_chunk(c);
                        if let (Some(m), Some(t)) = (obs, started) {
                            mfod_obs::journal::span_end(mfod_obs::journal::NAME_POOL_CHUNK);
                            m.pool_chunk_run.record_duration(t.elapsed());
                        }
                        *lock_recovering(&outcomes[c]) = Some(outcome);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            // SAFETY: the erased tasks borrow `f`, `bounds`, `outcomes`
            // and `latch` from this stack frame. Every task decrements
            // `latch` exactly once (via `CountdownGuard`), and this call
            // does not return — not even by unwinding, because
            // `run_chunk(0)` catches panics — until `help_until` has
            // observed the latch at zero, i.e. until every task has
            // finished running and dropped its borrows.
            unsafe { self.inject_scoped(tasks) };
        }
        let started = obs.map(|_| {
            mfod_obs::journal::span_begin(mfod_obs::journal::NAME_POOL_CHUNK);
            std::time::Instant::now()
        });
        let first = run_chunk(0);
        if let (Some(m), Some(t)) = (obs, started) {
            mfod_obs::journal::span_end(mfod_obs::journal::NAME_POOL_CHUNK);
            m.pool_chunk_run.record_duration(t.elapsed());
        }
        self.help_until(&latch);

        // All sub-chunks have finished; walk them in index order so the
        // first failure a sequential loop would have hit is the one
        // reported. Chunk 0's outcome lives on this stack, the rest in
        // the slots.
        let drained = std::iter::once(first).chain(outcomes.into_iter().skip(1).map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("pool chunk finished without reporting an outcome")
        }));
        let mut out = Vec::with_capacity(n);
        for outcome in drained {
            match outcome {
                ChunkOutcome::Items(items) => out.extend(items),
                ChunkOutcome::Error(e) => return Err(e),
                ChunkOutcome::Panicked(payload) => resume_unwind(payload),
            }
        }
        Ok(out)
    }

    /// Queues lifetime-erased tasks for the workers.
    ///
    /// # Safety
    ///
    /// The caller must not return (or unwind) until every injected task
    /// has finished executing, since the tasks may borrow from its stack.
    unsafe fn inject_scoped<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let mut queue = self.shared.queue.lock().unwrap();
        for task in tasks {
            // SAFETY: lifetime erasure only — see the function contract.
            let task: Task = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                    task,
                )
            };
            queue.tasks.push_back(task);
        }
        drop(queue);
        self.shared.work_ready.notify_all();
    }

    /// Waits for `latch` to reach zero, stealing queued tasks in the
    /// meantime so that nested map calls cannot deadlock: every waiter is
    /// also a worker while there is work to take.
    fn help_until(&self, latch: &Latch) {
        loop {
            if latch.is_done() {
                return;
            }
            match self.shared.pop() {
                Some(task) => {
                    if let Some(m) = mfod_obs::active() {
                        m.pool_caller_steals.add(1);
                    }
                    run_task(task)
                }
                // Queue drained: our sub-chunks are running on other
                // threads; block until they count the latch down.
                None => {
                    if latch.wait_done() {
                        return;
                    }
                }
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.work_ready.wait(queue).unwrap();
            }
        };
        if let Some(m) = mfod_obs::active() {
            m.pool_worker_runs.add(1);
        }
        run_task(task);
    }
}

/// Runs one task; by construction tasks catch their own unwinds, but the
/// extra `catch_unwind` guarantees a worker (or a stealing waiter) can
/// never be torn down by a job, whatever a future task type does.
fn run_task(task: Task) {
    let _ = catch_unwind(AssertUnwindSafe(task));
}

/// Locks a mutex, recovering the data if a previous holder panicked (the
/// slots only ever hold plain data, so poisoning carries no invariant).
fn lock_recovering<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Result of one contiguous sub-chunk.
enum ChunkOutcome<T, E> {
    Items(Vec<T>),
    Error(E),
    Panicked(Box<dyn Any + Send>),
}

/// Counts outstanding sub-chunk tasks; waiters block on `done`.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = lock_recovering(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *lock_recovering(&self.remaining) == 0
    }

    /// Blocks until the latch is done **or** the wait is interrupted by a
    /// queue wake-up race; returns whether the latch is done.
    fn wait_done(&self) -> bool {
        let mut remaining = lock_recovering(&self.remaining);
        while *remaining != 0 {
            remaining = match self.done.wait(remaining) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        true
    }
}

struct CountdownGuard<'a>(&'a Latch);

impl Drop for CountdownGuard<'_> {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

/// Uninhabited error type used to reuse the fallible path for the
/// infallible one.
enum Never {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let seq: Vec<u64> = (0..n)
                .map(|i| (i as u64).wrapping_mul(0x9E37) >> 3)
                .collect();
            let par = par_map(n, |i| (i as u64).wrapping_mul(0x9E37) >> 3);
            assert_eq!(seq, par, "n={n}");
        }
    }

    #[test]
    fn error_propagates() {
        let r: Result<Vec<usize>, String> = par_try_map(100, |i| {
            if i == 63 {
                Err(format!("boom {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(r.unwrap_err(), "boom 63");
        let ok: Result<Vec<usize>, String> = par_try_map(100, Ok);
        assert_eq!(ok.unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_in_index_order_wins() {
        // Errors at indices 10 and 90 land in different sub-chunks on any
        // thread count; the reassembly order guarantees index 10 reports.
        let pool = Pool::with_threads(4);
        let r: Result<Vec<usize>, usize> =
            pool.try_map(100, |i| if i == 10 || i == 90 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), 10);
        let r: Result<Vec<usize>, usize> =
            pool.try_map_contiguous(100, |i| if i == 10 || i == 90 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), 10);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(max_threads() >= 1);
        assert!(configured_threads() >= 1);
        assert!(configured_split() >= 1);
        assert!(global().threads() >= 1);
        assert!(global().split() >= 1);
    }

    #[test]
    fn env_values_parse_leniently() {
        assert_eq!(positive_from_env("4"), Some(4));
        assert_eq!(positive_from_env(" 16 "), Some(16));
        assert_eq!(positive_from_env("1"), Some(1));
        // zero, negatives, junk and empty all fall back
        assert_eq!(positive_from_env("0"), None);
        assert_eq!(positive_from_env("-2"), None);
        assert_eq!(positive_from_env("many"), None);
        assert_eq!(positive_from_env(""), None);
        assert_eq!(positive_from_env("4.5"), None);
    }

    #[test]
    fn task_chunks_is_a_pure_function_of_shape() {
        let pool = Pool::with_config(4, 8);
        assert_eq!(pool.split(), 8);
        // capped by the item count…
        assert_eq!(pool.task_chunks(3), 3);
        // …and by threads × split
        assert_eq!(pool.task_chunks(1000), 32);
        assert_eq!(pool.task_chunks(0), 0);
        // a 1-thread pool never splits
        let seq = Pool::with_config(1, 8);
        assert_eq!(seq.task_chunks(1000), 1);
        // split = 1 is the contiguous schedule
        let contiguous = Pool::with_config(4, 1);
        assert_eq!(contiguous.task_chunks(1000), 4);
    }

    #[test]
    fn global_with_config_returns_the_one_global_pool() {
        // Whoever initialized the global pool first (this call or an
        // earlier lazy use), both handles must be the same pool.
        let configured = Pool::global_with_config(3);
        let lazy = global();
        assert!(std::ptr::eq(configured, lazy));
        assert!(configured.threads() >= 1);
    }

    #[test]
    fn explicit_pools_agree_with_each_other_and_sequential() {
        let work = |i: usize| ((i as f64) * 0.6180339887).sin().to_bits();
        let seq: Vec<u64> = (0..257).map(work).collect();
        for threads in [1usize, 2, 3, 8] {
            for split in [1usize, 2, 8, 33] {
                let pool = Pool::with_config(threads, split);
                assert_eq!(pool.threads(), threads);
                assert_eq!(pool.map(257, work), seq, "threads={threads} split={split}");
                assert_eq!(pool.map_contiguous(257, work), seq, "threads={threads}");
            }
        }
    }

    #[test]
    fn unbalanced_items_are_bit_identical_to_sequential() {
        // Exponential per-item cost: the last items dominate, exactly the
        // shape the stealing scheduler exists for. The *output* must not
        // care which thread stole what.
        let work = |i: usize| {
            let iters = 1usize << (i % 11);
            let mut acc = i as f64 + 0.5;
            for _ in 0..iters {
                acc = (acc * 1.000_000_1).sin().mul_add(0.5, acc * 0.5);
            }
            acc.to_bits()
        };
        let seq: Vec<u64> = (0..200).map(work).collect();
        for threads in [2usize, 4, 8] {
            let pool = Pool::with_threads(threads);
            assert_eq!(pool.map(200, work), seq, "threads={threads}");
            assert_eq!(pool.map_contiguous(200, work), seq, "threads={threads}");
        }
        assert_eq!(par_map(200, work), seq, "global pool");
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        let pool = Pool::with_threads(4);
        for round in 0..200usize {
            let out = pool.map(round % 37, |i| i * round);
            assert_eq!(out, (0..round % 37).map(|i| i * round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panic_payload_reaches_the_caller_and_pool_survives() {
        let pool = Pool::with_threads(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(64, |i| {
                if i == 40 {
                    std::panic::panic_any(String::from("custom payload 40"));
                }
                i
            })
        }))
        .expect_err("the worker panic must surface on the caller");
        let payload = caught
            .downcast::<String>()
            .expect("original payload type preserved");
        assert_eq!(*payload, "custom payload 40");
        // The pool is not poisoned: subsequent maps still work on every
        // worker.
        for _ in 0..10 {
            assert_eq!(pool.map(64, |i| i + 1), (1..=64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn injected_pool_faults_surface_like_real_ones() {
        let _fault_lock = mfod_faultline::serial_guard();
        // An injected chunk panic rides the normal catch/rethrow path:
        // the caller sees the panic, the pool survives.
        mfod_faultline::install(mfod_faultline::FaultPlan::new(21).rule(
            mfod_faultline::points::POOL_PANIC,
            mfod_faultline::FaultRule::once(),
        ));
        let pool = Pool::with_threads(4);
        let caught = catch_unwind(AssertUnwindSafe(|| pool.map(256, |i| i * 2)))
            .expect_err("injected panic must surface on the caller");
        let msg = caught.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("injected fault: pool.panic"), "{msg}");
        let report = mfod_faultline::disarm().unwrap();
        assert_eq!(report.fires(mfod_faultline::points::POOL_PANIC), 1);
        // plan exhausted + disarmed: the pool is healthy and outputs are
        // identical to the sequential path again
        assert_eq!(
            pool.map(256, |i| i * 2),
            (0..256).map(|i| i * 2).collect::<Vec<_>>()
        );
        // An injected straggler only delays; outputs stay bit-identical.
        mfod_faultline::install(
            mfod_faultline::FaultPlan::new(22).rule(
                mfod_faultline::points::POOL_STRAGGLE,
                mfod_faultline::FaultRule::with_probability(0.5)
                    .delay(std::time::Duration::from_millis(1)),
            ),
        );
        let delayed = pool.map(256, |i| (i as f64).sqrt().to_bits());
        mfod_faultline::disarm();
        assert_eq!(
            delayed,
            (0..256)
                .map(|i| (i as f64).sqrt().to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn earliest_chunk_failure_wins_across_kinds() {
        let pool = Pool::with_threads(4);
        // Error in an early sub-chunk beats a panic in a late one (that
        // is what a sequential loop would have hit first).
        let r: Result<Vec<usize>, &str> = pool.try_map(100, |i| {
            if i == 5 {
                Err("early error")
            } else if i == 95 {
                panic!("late panic");
            } else {
                Ok(i)
            }
        });
        assert_eq!(r.unwrap_err(), "early error");
        // And an early panic beats a late error.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _: Result<Vec<usize>, &str> = pool.try_map(100, |i| {
                if i == 5 {
                    panic!("early panic");
                } else if i == 95 {
                    Err("late error")
                } else {
                    Ok(i)
                }
            });
        }))
        .expect_err("the early panic must win");
        let msg = caught.downcast::<&str>().expect("payload is the &str");
        assert_eq!(*msg, "early panic");
    }

    #[test]
    fn sequential_path_panics_transparently() {
        // n < 2 runs inline; the panic must still carry the payload.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(1, |_| -> usize { std::panic::panic_any(7usize) })
        }))
        .expect_err("inline panic propagates");
        assert_eq!(*caught.downcast::<usize>().unwrap(), 7);
    }

    #[test]
    fn nested_maps_on_the_same_pool_do_not_deadlock() {
        let pool = Pool::with_threads(2);
        let out = pool.map(4, |i| pool.map(4, move |j| i * 10 + j));
        let expected: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..4).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn global_functions_use_one_shared_pool() {
        // Nested global calls exercise the steal-while-waiting path on
        // the machine's real pool.
        let out = par_try_map(8, |i| {
            Ok::<_, String>(par_map(8, move |j| i + j).iter().sum::<usize>())
        })
        .unwrap();
        let expected: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i + j).sum()).collect();
        assert_eq!(out, expected);
    }
}
