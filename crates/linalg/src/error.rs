//! Error type shared by the linear algebra kernels.

use std::fmt;

/// Errors produced by factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// What was being attempted (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// The matrix is not square but the operation requires it.
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
    },
    /// A factorization failed because the matrix is singular (or, for
    /// Cholesky, not positive definite) at the given pivot index.
    Singular {
        /// Pivot index at which the breakdown occurred.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A reconstructed factorization (e.g. restored from a snapshot) does
    /// not satisfy the factor's structural invariants.
    InvalidFactor {
        /// Which invariant was violated.
        reason: &'static str,
    },
    /// Input contained NaN or infinite entries.
    NonFinite,
    /// The input was empty where a non-empty input is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is {}x{} but must be square", shape.0, shape.1)
            }
            LinalgError::Singular { pivot } => {
                write!(
                    f,
                    "matrix is singular or not positive definite at pivot {pivot}"
                )
            }
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => {
                write!(
                    f,
                    "{algorithm} did not converge after {iterations} iterations"
                )
            }
            LinalgError::InvalidFactor { reason } => {
                write!(f, "invalid factorization factor: {reason}")
            }
            LinalgError::NonFinite => write!(f, "input contains NaN or infinite values"),
            LinalgError::Empty => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::NotSquare { shape: (2, 3) };
        assert!(e.to_string().contains("square"));
        let e = LinalgError::Singular { pivot: 7 };
        assert!(e.to_string().contains('7'));
        let e = LinalgError::NoConvergence {
            algorithm: "jacobi",
            iterations: 100,
        };
        assert!(e.to_string().contains("jacobi"));
        let e = LinalgError::InvalidFactor {
            reason: "not lower-triangular",
        };
        assert!(e.to_string().contains("lower-triangular"));
        assert!(LinalgError::NonFinite.to_string().contains("NaN"));
        assert!(LinalgError::Empty.to_string().contains("empty"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::Empty);
    }
}
