//! LU factorization with partial pivoting for general square systems.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// `L` (unit lower) and `U` (upper) are stored packed in a single matrix;
/// `perm` records the row permutation and `sign` its parity (for
/// determinants).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix. Fails on singular input (zero pivot
    /// within a small relative tolerance).
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let tol = f64::EPSILON * a.max_abs().max(1.0) * n as f64;
        for k in 0..n {
            // pivot search
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= tol {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "lu solve dimension mismatch");
        // apply permutation
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // forward substitution with unit-lower L
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.lu[(i, k)] * y[k];
            }
        }
        // backward substitution with U
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu[(i, k)] * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        y
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Panics
    /// Panics if `b.nrows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.nrows(), self.dim(), "lu solve_matrix dimension mismatch");
        let mut out = Matrix::zeros(b.nrows(), b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve(&b.col(j));
            for i in 0..b.nrows() {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Explicit inverse of `A`.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience wrapper: solves `A x = b` with a fresh LU factorization.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Ok(Lu::new(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        // solution: x = (4/5, 7/5)
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_with_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
        let b = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
        assert!((Lu::new(&b).unwrap().det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.sub(&Matrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn larger_random_roundtrip() {
        // deterministic pseudo-random fill
        let n = 12;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant => invertible
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 5.0).collect();
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}
