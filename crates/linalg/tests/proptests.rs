//! Property-based tests for the linear algebra kernels.

use mfod_linalg::{cholesky::Cholesky, eigen::jacobi_eigen, lu, matrix::Matrix, qr, vector};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Generates an SPD matrix as `AᵀA + I`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    square_matrix(n).prop_map(move |a| {
        let mut g = a.gram();
        for i in 0..n {
            g[(i, i)] += 1.0;
        }
        g
    })
}

proptest! {
    #[test]
    fn dot_is_symmetric(a in finite_vec(8), b in finite_vec(8)) {
        let d1 = vector::dot(&a, &b);
        let d2 = vector::dot(&b, &a);
        prop_assert!((d1 - d2).abs() <= 1e-9 * (1.0 + d1.abs()));
    }

    #[test]
    fn cauchy_schwarz(a in finite_vec(6), b in finite_vec(6)) {
        let lhs = vector::dot(&a, &b).abs();
        let rhs = vector::norm2(&a) * vector::norm2(&b);
        prop_assert!(lhs <= rhs * (1.0 + 1e-10) + 1e-9);
    }

    #[test]
    fn median_between_min_and_max(a in finite_vec(9)) {
        let m = vector::median(&a);
        prop_assert!(m >= vector::min(&a) - 1e-12);
        prop_assert!(m <= vector::max(&a) + 1e-12);
    }

    #[test]
    fn median_is_translation_equivariant(a in finite_vec(7), c in -100.0..100.0f64) {
        let shifted: Vec<f64> = a.iter().map(|x| x + c).collect();
        let m1 = vector::median(&a) + c;
        let m2 = vector::median(&shifted);
        prop_assert!((m1 - m2).abs() < 1e-9);
    }

    #[test]
    fn mad_is_translation_invariant(a in finite_vec(7), c in -100.0..100.0f64) {
        let shifted: Vec<f64> = a.iter().map(|x| x + c).collect();
        prop_assert!((vector::mad(&a) - vector::mad(&shifted)).abs() < 1e-9);
    }

    #[test]
    fn transpose_is_involution(m in square_matrix(4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in square_matrix(4)) {
        let i = Matrix::identity(4);
        let left = i.matmul(&m);
        let right = m.matmul(&i);
        prop_assert!(left.sub(&m).max_abs() < 1e-12);
        prop_assert!(right.sub(&m).max_abs() < 1e-12);
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in square_matrix(4)) {
        let g = m.gram();
        prop_assert!(g.asymmetry() < 1e-9);
        for i in 0..4 {
            prop_assert!(g[(i, i)] >= -1e-9);
        }
    }

    #[test]
    fn cholesky_solve_residual_small(a in spd_matrix(5), b in finite_vec(5)) {
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&b);
        let r = vector::sub(&a.matvec(&x), &b);
        let scale = vector::norm2(&b).max(1.0) * a.max_abs().max(1.0);
        prop_assert!(vector::norm2(&r) < 1e-7 * scale);
    }

    #[test]
    fn cholesky_logdet_matches_lu_det(a in spd_matrix(4)) {
        let chol = Cholesky::new(&a).unwrap();
        let det = lu::Lu::new(&a).unwrap().det();
        prop_assert!(det > 0.0);
        prop_assert!((chol.log_det() - det.ln()).abs() < 1e-6 * (1.0 + det.ln().abs()));
    }

    #[test]
    fn lu_solve_residual_small(a in spd_matrix(5), b in finite_vec(5)) {
        // SPD implies invertible; LU must solve it too.
        let x = lu::solve(&a, &b).unwrap();
        let r = vector::sub(&a.matvec(&x), &b);
        let scale = vector::norm2(&b).max(1.0) * a.max_abs().max(1.0);
        prop_assert!(vector::norm2(&r) < 1e-7 * scale);
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(
        data in prop::collection::vec(-10.0..10.0f64, 8 * 3),
        b in finite_vec(8)
    ) {
        let a = Matrix::from_vec(8, 3, data);
        if let Ok(x) = qr::lstsq(&a, &b) {
            let fitted = a.matvec(&x);
            let resid = vector::sub(&b, &fitted);
            let atr = a.tr_matvec(&resid);
            let scale = a.max_abs().max(1.0) * vector::norm2(&b).max(1.0);
            for v in atr {
                prop_assert!(v.abs() < 1e-7 * scale, "non-orthogonal residual {v}");
            }
        }
    }

    #[test]
    fn eigen_reconstructs(a in square_matrix(4)) {
        // symmetrize
        let s = Matrix::from_fn(4, 4, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let e = jacobi_eigen(&s).unwrap();
        let lam = Matrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        prop_assert!(rec.sub(&s).max_abs() < 1e-8 * s.max_abs().max(1.0));
        // sorted descending
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn ranks_are_a_permutation_average(a in finite_vec(10)) {
        let r = vector::average_ranks(&a);
        let sum: f64 = r.iter().sum();
        // sum of ranks 1..=n is n(n+1)/2 regardless of ties
        prop_assert!((sum - 55.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_monotone_in_q(a in finite_vec(9), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(vector::quantile(&a, lo) <= vector::quantile(&a, hi) + 1e-12);
    }

    #[test]
    fn trapz_linearity(t_raw in prop::collection::vec(0.01..1.0f64, 5),
                       y1 in finite_vec(6), y2 in finite_vec(6), c in -5.0..5.0f64) {
        // build strictly increasing grid from positive increments
        let mut t = vec![0.0];
        for dt in t_raw { t.push(t.last().unwrap() + dt); }
        let comb: Vec<f64> = y1.iter().zip(&y2).map(|(a, b)| a + c * b).collect();
        let lhs = vector::trapz(&t, &comb);
        let rhs = vector::trapz(&t, &y1) + c * vector::trapz(&t, &y2);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }
}

// ---- work-stealing scheduler invariants --------------------------------
//
// The scheduler splits every map into fine index-ordered sub-chunks that
// idle threads steal; these properties pin the determinism contract on
// exactly the workload shape stealing exists for — wildly unbalanced
// per-item cost — across pool sizes 1/2/8 and the global pool, and the
// panic-payload round-trip while other sub-chunks are mid-steal.

use mfod_linalg::par::{self, Pool};

/// Deliberately unbalanced work: item `i` burns `2^(i % spread)`
/// iterations of floating-point churn (exponential cost profile), then
/// returns a value that depends on every iteration — so any scheduling
/// bug that reorders, drops or duplicates an item changes the bits.
fn exponential_cost_item(i: usize, spread: u32, salt: f64) -> u64 {
    let iters = 1u32 << (i as u32 % spread);
    let mut acc = salt + i as f64;
    for k in 0..iters {
        acc = (acc * 1.000_000_3 + k as f64 * 1e-9)
            .sin()
            .mul_add(0.5, acc * 0.5);
    }
    acc.to_bits()
}

proptest! {
    #[test]
    fn stolen_maps_are_bit_identical_to_sequential(
        n in 1usize..120,
        spread in 1u32..12,
        salt in -10.0..10.0f64,
    ) {
        let work = |i: usize| exponential_cost_item(i, spread, salt);
        let sequential: Vec<u64> = (0..n).map(work).collect();
        for threads in [1usize, 2, 8] {
            let pool = Pool::with_threads(threads);
            prop_assert_eq!(&pool.map(n, work), &sequential);
            // the contiguous schedule must agree too — scheduling is a
            // wall-clock decision, never an output decision
            prop_assert_eq!(&pool.map_contiguous(n, work), &sequential);
        }
        prop_assert_eq!(&par::par_map(n, work), &sequential);
    }

    #[test]
    fn split_factor_never_changes_outputs(
        n in 1usize..80,
        split in 1usize..20,
        spread in 1u32..10,
    ) {
        let work = |i: usize| exponential_cost_item(i, spread, 0.25);
        let sequential: Vec<u64> = (0..n).map(work).collect();
        let pool = Pool::with_config(4, split);
        prop_assert_eq!(&pool.map(n, work), &sequential);
    }

    #[test]
    fn earliest_error_wins_under_stealing(
        n in 2usize..100,
        bad_a in 0usize..100,
        bad_b in 0usize..100,
        spread in 1u32..8,
    ) {
        let (bad_a, bad_b) = (bad_a % n, bad_b % n);
        let first_bad = bad_a.min(bad_b);
        let work = |i: usize| -> Result<u64, usize> {
            let bits = exponential_cost_item(i, spread, 1.5);
            if i == bad_a || i == bad_b { Err(i) } else { Ok(bits) }
        };
        for threads in [2usize, 8] {
            let pool = Pool::with_threads(threads);
            let got = pool.try_map(n, work);
            prop_assert_eq!(got.unwrap_err(), first_bad, "threads={}", threads);
        }
    }

    #[test]
    fn panic_payload_round_trips_under_stealing(
        n in 2usize..80,
        victim in 0usize..80,
        payload in 0u64..1_000_000,
        spread in 1u32..8,
    ) {
        let victim = victim % n;
        let pool = Pool::with_threads(8);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(n, |i| {
                let bits = exponential_cost_item(i, spread, -0.75);
                if i == victim {
                    std::panic::panic_any(payload);
                }
                bits
            })
        }))
        .expect_err("the panic must surface on the caller");
        prop_assert_eq!(*caught.downcast::<u64>().expect("payload type"), payload);
        // the pool survives the panicked job
        let n_after = n.min(16);
        let after = pool.map(n_after, |i| i * 3);
        prop_assert_eq!(after, (0..n_after).map(|i| i * 3).collect::<Vec<_>>());
    }
}
