//! Property-based tests for the outlier detectors.

use mfod_detect::features::matrix_from_rows;
use mfod_detect::prelude::*;
use mfod_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a cloud of n points in d dimensions with bounded coordinates.
fn cloud(n: usize, d: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0..100.0f64, n * d)
        .prop_map(move |data| Matrix::from_vec(n, d, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn iforest_scores_in_unit_interval(x in cloud(40, 3)) {
        let model = IsolationForest { n_trees: 25, ..Default::default() }.fit(&x).unwrap();
        let scores = model.score_batch(&x).unwrap();
        prop_assert!(scores.iter().all(|&s| s > 0.0 && s <= 1.0));
    }

    #[test]
    fn iforest_is_deterministic(x in cloud(30, 2), seed in 0u64..1000) {
        let cfg = IsolationForest { n_trees: 20, seed, ..Default::default() };
        let s1 = cfg.fit(&x).unwrap().score_batch(&x).unwrap();
        let s2 = cfg.fit(&x).unwrap().score_batch(&x).unwrap();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn iforest_far_point_scores_higher_than_center(x in cloud(50, 2)) {
        // inject a point far outside the data's bounding box
        let model = IsolationForest { n_trees: 50, ..Default::default() }.fit(&x).unwrap();
        let far = model.score_one(&[1e4, -1e4]).unwrap();
        // mean score of actual data
        let scores = model.score_batch(&x).unwrap();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        prop_assert!(far >= mean, "far {far} vs mean {mean}");
    }

    #[test]
    fn ocsvm_dual_feasibility(x in cloud(30, 2), nu in 0.05f64..0.9) {
        let cfg = OcSvm { nu, ..Default::default() };
        let model = cfg.fit_concrete(&x);
        // degenerate clouds (zero MAD in every direction) may legitimately fail
        prop_assume!(model.is_ok());
        let model = model.unwrap();
        prop_assert!(model.rho().is_finite());
        prop_assert!(model.n_support() >= 1);
        // the ν-property lower bound on the SV fraction
        prop_assert!(
            model.sv_fraction() >= nu - 2.0 / 30.0,
            "sv fraction {} for nu {nu}",
            model.sv_fraction()
        );
    }

    #[test]
    fn ocsvm_score_is_negated_decision(x in cloud(25, 2)) {
        let cfg = OcSvm { nu: 0.2, ..Default::default() };
        let model = cfg.fit_concrete(&x);
        prop_assume!(model.is_ok());
        let model = model.unwrap();
        for i in 0..x.nrows() {
            let d = model.decision(x.row(i)).unwrap();
            let s = model.score_one(x.row(i)).unwrap();
            prop_assert!((d + s).abs() < 1e-12);
        }
    }

    #[test]
    fn lof_uniformish_scores_near_one(scale in 0.5f64..5.0) {
        // regular grid scaled arbitrarily: interior density is homogeneous
        let rows: Vec<Vec<f64>> = (0..36)
            .map(|i| vec![scale * (i % 6) as f64, scale * (i / 6) as f64])
            .collect();
        let x = matrix_from_rows(&rows).unwrap();
        let model = Lof::new(6).unwrap().fit(&x).unwrap();
        let s = model.score_one(&[scale * 2.5, scale * 2.5]).unwrap();
        prop_assert!((s - 1.0).abs() < 0.3, "interior LOF {s}");
    }

    #[test]
    fn mahalanobis_affine_consistency(x in cloud(40, 2), shift in -50.0..50.0f64) {
        // shifting all data and the query leaves the distance unchanged
        let model = Mahalanobis::default().fit(&x).unwrap();
        let q = [1.0, 2.0];
        let d1 = model.score_one(&q).unwrap();
        let mut moved = x.clone();
        for v in moved.as_mut_slice() {
            *v += shift;
        }
        let model2 = Mahalanobis::default().fit(&moved).unwrap();
        let d2 = model2.score_one(&[q[0] + shift, q[1] + shift]).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-6 * (1.0 + d1), "{d1} vs {d2}");
    }

    #[test]
    fn standardizer_inverse_consistency(x in cloud(20, 3)) {
        use mfod_detect::features::Standardizer;
        let s = Standardizer::fit(&x).unwrap();
        let z = s.transform(&x).unwrap();
        // standardized columns have |mean| ~ 0
        for j in 0..3 {
            let col = z.col(j);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-8, "col {j} mean {mean}");
        }
    }
}
