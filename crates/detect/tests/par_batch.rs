//! `par_score_batch` must be a pure wall-clock optimization: for every
//! detector it has to reproduce the sequential `score_batch` output
//! bit for bit (same rows, same order, same f64 bit patterns).

use mfod_detect::prelude::*;
use mfod_linalg::Matrix;

/// A deterministic two-lobe point cloud with a few far-away rows.
fn cloud(n: usize, d: usize) -> Matrix {
    Matrix::from_fn(n, d, |i, j| {
        let a = (i * 37 + j * 11) as f64 * 0.618;
        let lobe = if i % 2 == 0 { 1.5 } else { -1.5 };
        if i % 17 == 0 {
            lobe * 6.0 + a.sin()
        } else {
            lobe + a.sin() * 0.3 + (j as f64 * 0.05)
        }
    })
}

fn detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(IsolationForest {
            n_trees: 40,
            ..Default::default()
        }),
        Box::new(OcSvm::default()),
        Box::new(Lof::default()),
        Box::new(Mahalanobis::default()),
    ]
}

#[test]
fn par_score_batch_matches_sequential_bit_for_bit() {
    let train = cloud(96, 6);
    let test = cloud(41, 6); // odd count: uneven chunking across threads
    for det in detectors() {
        let model = det.fit(&train).unwrap();
        let seq = model.score_batch(&test).unwrap();
        let par = model.par_score_batch(&test).unwrap();
        assert_eq!(seq.len(), par.len(), "{}", det.name());
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                s.to_bits(),
                p.to_bits(),
                "{} row {i}: sequential {s} != parallel {p}",
                det.name()
            );
        }
    }
}

#[test]
fn par_score_batch_rejects_dimension_mismatch() {
    let train = cloud(64, 5);
    let model = IsolationForest::default().fit(&train).unwrap();
    let bad = cloud(8, 4);
    assert!(matches!(
        model.par_score_batch(&bad),
        Err(DetectError::DimensionMismatch {
            expected: 5,
            got: 4
        })
    ));
}

#[test]
fn par_score_batch_handles_tiny_batches() {
    let train = cloud(64, 3);
    let model = Mahalanobis::default().fit(&train).unwrap();
    for n in [1usize, 2, 3] {
        let test = cloud(n, 3);
        let seq = model.score_batch(&test).unwrap();
        let par = model.par_score_batch(&test).unwrap();
        assert_eq!(
            seq.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "n={n}"
        );
    }
}
