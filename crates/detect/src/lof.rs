//! Local Outlier Factor (Breunig et al., SIGMOD 2000).
//!
//! LOF compares the local reachability density of a point with that of its
//! `k` nearest neighbors; values ≫ 1 mean the point is in a sparser region
//! than its neighbors — a *local* notion of outlyingness that complements
//! the global iForest/OCSVM views in the detector ablation (experiment A3).

use crate::error::DetectError;
use crate::features::validate_features;
use crate::{Detector, FittedDetector, Result};
use mfod_linalg::{vector, Matrix};

/// LOF configuration.
#[derive(Debug, Clone)]
pub struct Lof {
    /// Neighborhood size `k` (MinPts).
    pub k: usize,
}

impl Default for Lof {
    fn default() -> Self {
        Lof { k: 20 }
    }
}

impl Lof {
    /// LOF with neighborhood size `k >= 1`.
    pub fn new(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(DetectError::InvalidParameter("k must be >= 1".into()));
        }
        Ok(Lof { k })
    }
}

/// A fitted LOF model: stores the training set and its precomputed
/// k-distances and local reachability densities.
#[derive(Debug, Clone)]
pub struct FittedLof {
    pub(crate) train: Matrix,
    pub(crate) k: usize,
    /// k-distance of every training point.
    pub(crate) k_dist: Vec<f64>,
    /// local reachability density of every training point.
    pub(crate) lrd: Vec<f64>,
}

/// Indices and distances of the `k` nearest rows of `train` to `x`
/// (excluding an optional `skip` row).
fn knn(train: &Matrix, x: &[f64], k: usize, skip: Option<usize>) -> Vec<(usize, f64)> {
    let mut d: Vec<(usize, f64)> = (0..train.nrows())
        .filter(|&i| Some(i) != skip)
        .map(|i| (i, vector::dist2(train.row(i), x)))
        .collect();
    d.sort_by(|a, b| a.1.total_cmp(&b.1));
    d.truncate(k);
    d
}

impl Detector for Lof {
    fn name(&self) -> &'static str {
        "lof"
    }

    fn fit(&self, train: &Matrix) -> Result<Box<dyn FittedDetector>> {
        validate_features(train, 2)?;
        if self.k == 0 {
            return Err(DetectError::InvalidParameter("k must be >= 1".into()));
        }
        let n = train.nrows();
        let k = self.k.min(n - 1);
        // neighbor lists of the training points themselves
        let neighbors: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| knn(train, train.row(i), k, Some(i)))
            .collect();
        let k_dist: Vec<f64> = neighbors
            .iter()
            .map(|nb| nb.last().map(|&(_, d)| d).unwrap_or(0.0))
            .collect();
        // local reachability density
        let lrd: Vec<f64> = (0..n)
            .map(|i| {
                let sum: f64 = neighbors[i].iter().map(|&(j, d)| d.max(k_dist[j])).sum();
                if sum <= 0.0 {
                    f64::INFINITY // duplicated points: infinitely dense
                } else {
                    k as f64 / sum
                }
            })
            .collect();
        Ok(Box::new(FittedLof {
            train: train.clone(),
            k,
            k_dist,
            lrd,
        }))
    }
}

impl FittedDetector for FittedLof {
    fn dim(&self) -> usize {
        self.train.ncols()
    }

    fn score_one(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim() {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim(),
                got: x.len(),
            });
        }
        if !vector::all_finite(x) {
            return Err(DetectError::NonFinite);
        }
        let nb = knn(&self.train, x, self.k, None);
        let reach_sum: f64 = nb.iter().map(|&(j, d)| d.max(self.k_dist[j])).sum();
        let lrd_x = if reach_sum <= 0.0 {
            f64::INFINITY
        } else {
            self.k as f64 / reach_sum
        };
        let mean_neighbor_lrd: f64 =
            nb.iter().map(|&(j, _)| self.lrd[j]).sum::<f64>() / nb.len() as f64;
        if !lrd_x.is_finite() {
            // x coincides with training points: maximally dense, LOF -> ratio
            // of finite neighbor density to infinite own density = 0-ish; by
            // convention return 1.0 (perfectly normal)
            return Ok(1.0);
        }
        if !mean_neighbor_lrd.is_finite() {
            // neighbors are duplicated points, x is not: strongly outlying
            return Ok(f64::MAX.sqrt());
        }
        Ok(mean_neighbor_lrd / lrd_x)
    }

    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        Some(crate::snapshot::DetectorSnapshot::Lof(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::matrix_from_rows;

    fn two_clusters_and_outlier() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..30 {
            let a = i as f64 * 0.21;
            rows.push(vec![a.sin() * 0.2, a.cos() * 0.2]);
            rows.push(vec![5.0 + a.cos() * 0.2, 5.0 + a.sin() * 0.2]);
        }
        rows.push(vec![2.5, 2.5]); // between the clusters: locally isolated
        matrix_from_rows(&rows).unwrap()
    }

    #[test]
    fn isolated_point_has_high_lof() {
        let x = two_clusters_and_outlier();
        let model = Lof::new(10).unwrap().fit(&x).unwrap();
        let s = model.score_batch(&x).unwrap();
        let top = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, 60, "{s:?}");
        assert!(s[60] > 1.5, "LOF of isolated point: {}", s[60]);
    }

    #[test]
    fn uniform_cloud_scores_near_one() {
        // grid points all have similar density: LOF ≈ 1
        let rows: Vec<Vec<f64>> = (0..49)
            .map(|i| vec![(i % 7) as f64, (i / 7) as f64])
            .collect();
        let x = matrix_from_rows(&rows).unwrap();
        let model = Lof::new(8).unwrap().fit(&x).unwrap();
        // score interior points (corners legitimately drift above 1)
        let s = model.score_one(&[3.0, 3.0]).unwrap();
        assert!((s - 1.0).abs() < 0.2, "interior LOF {s}");
    }

    #[test]
    fn duplicate_training_points() {
        let mut rows = vec![vec![0.0, 0.0]; 10];
        rows.push(vec![3.0, 3.0]);
        let x = matrix_from_rows(&rows).unwrap();
        let model = Lof::new(3).unwrap().fit(&x).unwrap();
        // a duplicated point: convention 1.0
        assert_eq!(model.score_one(&[0.0, 0.0]).unwrap(), 1.0);
        // a fresh point whose neighbors are all duplicates: huge score
        let s = model.score_one(&[0.5, 0.5]).unwrap();
        assert!(s > 1e3);
    }

    #[test]
    fn k_clamped_to_n_minus_1() {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let x = matrix_from_rows(&rows).unwrap();
        let model = Lof::new(100).unwrap().fit(&x).unwrap();
        assert!(model.score_one(&[2.0]).unwrap().is_finite());
    }

    #[test]
    fn validations() {
        assert!(Lof::new(0).is_err());
        let x = Matrix::zeros(1, 2);
        assert!(Lof::default().fit(&x).is_err());
        let x = two_clusters_and_outlier();
        let model = Lof::default().fit(&x).unwrap();
        assert!(model.score_one(&[1.0]).is_err());
        assert!(model.score_one(&[f64::NAN, 0.0]).is_err());
        assert_eq!(Lof::default().name(), "lof");
        assert_eq!(model.dim(), 2);
    }
}
