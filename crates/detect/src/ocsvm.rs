//! ν-One-Class SVM (Schölkopf et al., *Neural Computation* 2001), solved by
//! sequential minimal optimization (SMO).
//!
//! The dual problem is
//!
//! ```text
//! min_α ½ αᵀ Q α    s.t.  0 <= α_i <= 1/(νn),  Σ α_i = 1
//! ```
//!
//! with `Q_ij = K(x_i, x_j)`. The decision function is
//! `f(x) = Σ_i α_i K(x_i, x) − ρ`, negative for outliers; ν upper-bounds the
//! training outlier fraction and lower-bounds the support-vector fraction.
//! We report the outlyingness score `ρ − Σ α K(x_i, x)` (higher = more
//! outlying), so thresholding at 0 recovers the usual decision rule.
//!
//! The SMO solver picks the maximally violating pair (the pair that most
//! violates dual feasibility), performs the exact two-variable update, and
//! stops when the duality gap proxy `max_{I_low} g − min_{I_up} g` falls
//! under `tol` — the textbook LIBSVM scheme specialized to the one-class
//! objective (no labels, no linear term).

use crate::error::DetectError;
use crate::features::validate_features;
use crate::kernel::Kernel;
use crate::{Detector, FittedDetector, Result};
use mfod_linalg::par::{self, Pool};
use mfod_linalg::{vector, Matrix};

/// Training sizes below this run the SMO scans sequentially: per-iteration
/// pool dispatch only pays off once the O(n) pair search and gradient
/// update dominate the synchronization cost.
const SMO_PAR_MIN: usize = 512;

/// Fixed chunk length for the parallel SMO scans. The chunk grid depends
/// only on `n` — never on the pool's thread count — so per-chunk partial
/// results and their in-order reduction are identical at any pool size,
/// which is what makes the parallel fit **bit-for-bit** equal to the
/// sequential one.
const SMO_CHUNK: usize = 256;

/// How the RBF bandwidth γ is chosen when the kernel is not given
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaSpec {
    /// Fixed value.
    Fixed(f64),
    /// Median heuristic: `γ = 1 / (2 · median(‖x_i − x_j‖²))` over a
    /// subsample of pairs — scale-free and robust.
    Median,
    /// `γ = 1 / (d · Var(X))` (the scikit-learn `"scale"` rule).
    Scale,
}

/// ν-one-class SVM configuration.
#[derive(Debug, Clone)]
pub struct OcSvm {
    /// ν ∈ (0, 1]: upper bound on the training outlier fraction and lower
    /// bound on the support-vector fraction.
    pub nu: f64,
    /// Kernel; `None` selects RBF with [`OcSvm::gamma`].
    pub kernel: Option<Kernel>,
    /// Bandwidth rule used when `kernel` is `None`.
    pub gamma: GammaSpec,
    /// SMO stopping tolerance on the maximal KKT violation.
    pub tol: f64,
    /// Iteration budget for the SMO loop.
    pub max_iter: usize,
}

impl Default for OcSvm {
    fn default() -> Self {
        OcSvm {
            nu: 0.1,
            kernel: None,
            gamma: GammaSpec::Median,
            tol: 1e-6,
            max_iter: 100_000,
        }
    }
}

impl OcSvm {
    /// OCSVM with the given ν and default (median-heuristic RBF) kernel.
    pub fn with_nu(nu: f64) -> Result<Self> {
        if !(0.0 < nu && nu <= 1.0) {
            return Err(DetectError::InvalidParameter(format!(
                "nu must be in (0, 1], got {nu}"
            )));
        }
        Ok(OcSvm {
            nu,
            ..Default::default()
        })
    }

    /// Resolves the kernel for a given training set.
    fn resolve_kernel(&self, train: &Matrix) -> Result<Kernel> {
        if let Some(k) = self.kernel {
            if !k.is_valid() {
                return Err(DetectError::InvalidParameter(format!(
                    "invalid kernel {k:?}"
                )));
            }
            return Ok(k);
        }
        let gamma = match self.gamma {
            GammaSpec::Fixed(g) => g,
            GammaSpec::Median => median_heuristic_gamma(train),
            GammaSpec::Scale => scale_gamma(train),
        };
        if !(gamma > 0.0 && gamma.is_finite()) {
            return Err(DetectError::InvalidParameter(format!(
                "resolved gamma {gamma} is invalid (degenerate data?)"
            )));
        }
        Ok(Kernel::Rbf { gamma })
    }
}

/// Median-of-pairwise-squared-distances bandwidth
/// `γ = 1 / (2 · median ‖x_i − x_j‖²)`, on at most ~2000 deterministic
/// pairs for large n.
pub fn median_heuristic_gamma(x: &Matrix) -> f64 {
    let n = x.nrows();
    if n < 2 {
        return 1.0;
    }
    let mut d2 = Vec::new();
    // stride so the number of pairs stays bounded
    let max_pairs = 2000usize;
    let total_pairs = n * (n - 1) / 2;
    let stride = (total_pairs / max_pairs).max(1);
    let mut c = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if c.is_multiple_of(stride) {
                let v = vector::dist2_sq(x.row(i), x.row(j));
                if v > 0.0 {
                    d2.push(v);
                }
            }
            c += 1;
        }
    }
    if d2.is_empty() {
        return 1.0;
    }
    1.0 / (2.0 * vector::median(&d2))
}

/// `γ = 1/(d · Var)` with the pooled per-column variance.
pub fn scale_gamma(x: &Matrix) -> f64 {
    let d = x.ncols();
    let mut var = 0.0;
    for j in 0..d {
        let col = x.col(j);
        let v = vector::variance_pop(&col);
        if v.is_finite() {
            var += v;
        }
    }
    var /= d as f64;
    if var <= 0.0 {
        1.0
    } else {
        1.0 / (d as f64 * var)
    }
}

/// A fitted one-class SVM.
#[derive(Debug, Clone)]
pub struct FittedOcSvm {
    pub(crate) kernel: Kernel,
    /// Support vectors (rows).
    pub(crate) support: Matrix,
    /// Dual coefficients of the support vectors.
    pub(crate) alpha: Vec<f64>,
    /// Offset ρ.
    pub(crate) rho: f64,
    pub(crate) dim: usize,
    /// Fraction of training points that ended up support vectors.
    pub(crate) sv_fraction: f64,
}

impl FittedOcSvm {
    /// The offset ρ of the decision function.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of support vectors.
    pub fn n_support(&self) -> usize {
        self.alpha.len()
    }

    /// Fraction of the training set retained as support vectors.
    pub fn sv_fraction(&self) -> f64 {
        self.sv_fraction
    }

    /// Signed decision value `f(x) = Σ α K − ρ` (negative ⇒ outlier).
    pub fn decision(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        if !vector::all_finite(x) {
            return Err(DetectError::NonFinite);
        }
        let mut s = 0.0;
        for (i, &a) in self.alpha.iter().enumerate() {
            s += a * self.kernel.eval(self.support.row(i), x);
        }
        Ok(s - self.rho)
    }
}

/// Per-chunk partial result of the maximal-violating-pair scan.
#[derive(Clone, Copy)]
struct PairScan {
    i_up: usize,
    g_up: f64,
    j_low: usize,
    g_low: f64,
}

impl PairScan {
    fn empty() -> Self {
        PairScan {
            i_up: usize::MAX,
            g_up: f64::INFINITY,
            j_low: usize::MAX,
            g_low: f64::NEG_INFINITY,
        }
    }

    /// Scans `lo..hi` with the exact strict comparisons of the sequential
    /// loop, so the chunk winner is the *earliest* index attaining the
    /// chunk extremum — the property the in-order reduction relies on.
    fn scan(lo: usize, hi: usize, g: &[f64], alpha: &[f64], c: f64, eps_box: f64) -> Self {
        let mut p = PairScan::empty();
        for t in lo..hi {
            if alpha[t] < c - eps_box && g[t] < p.g_up {
                p.g_up = g[t];
                p.i_up = t;
            }
            if alpha[t] > eps_box && g[t] > p.g_low {
                p.g_low = g[t];
                p.j_low = t;
            }
        }
        p
    }

    /// Folds a later chunk into `self` with the same strict comparisons:
    /// an exact tie keeps the earlier chunk's index, exactly as one
    /// sequential left-to-right scan would.
    fn merge(&mut self, later: &PairScan) {
        if later.g_up < self.g_up {
            self.g_up = later.g_up;
            self.i_up = later.i_up;
        }
        if later.g_low > self.g_low {
            self.g_low = later.g_low;
            self.j_low = later.j_low;
        }
    }
}

impl OcSvm {
    /// Fits and returns the concrete model (exposing ρ, support vectors and
    /// the SV fraction, which the ν-tuning in `mfod-eval` inspects), on
    /// the global worker pool — see [`OcSvm::fit_concrete_on`].
    pub fn fit_concrete(&self, train: &Matrix) -> Result<FittedOcSvm> {
        self.fit_concrete_on(par::global(), train)
    }

    /// [`OcSvm::fit_concrete`] on an explicit worker pool.
    ///
    /// The Gram matrix assembles one upper-triangular row stripe per
    /// training point across the pool, and for `n >= 512` the SMO pair
    /// search and gradient update fan out over fixed-size 256-element
    /// chunks. Every parallel path reduces its partial
    /// results in index order with the same strict comparisons as the
    /// sequential loop, so the fitted model — support vectors, dual
    /// coefficients, ρ — is **bit-for-bit identical** at any pool size.
    pub fn fit_concrete_on(&self, pool: &Pool, train: &Matrix) -> Result<FittedOcSvm> {
        self.fit_concrete_with(pool, train, SMO_PAR_MIN)
    }

    /// Implementation with an explicit parallelism threshold so tests can
    /// pin both the chunked (`par_min = 0`) and the sequential
    /// (`par_min = usize::MAX`) inner loops onto the same problem and
    /// assert bit parity between them.
    fn fit_concrete_with(
        &self,
        pool: &Pool,
        train: &Matrix,
        par_min: usize,
    ) -> Result<FittedOcSvm> {
        validate_features(train, 2)?;
        if !(0.0 < self.nu && self.nu <= 1.0) {
            return Err(DetectError::InvalidParameter(format!(
                "nu must be in (0, 1], got {}",
                self.nu
            )));
        }
        let n = train.nrows();
        let kernel = self.resolve_kernel(train)?;
        let c = 1.0 / (self.nu * n as f64);
        // Gram matrix: upper-triangular row stripes, mirrored afterwards.
        // Stripe i costs n − i kernel evaluations, so contiguous chunks of
        // stripes would be badly imbalanced; pairing stripe k with stripe
        // n−1−k makes every map item cost n + 1 evaluations. Each entry
        // is still the same single kernel evaluation the sequential
        // assembly performed.
        let stripe = |i: usize| {
            let row_i = train.row(i);
            (i..n)
                .map(|j| kernel.eval(row_i, train.row(j)))
                .collect::<Vec<f64>>()
        };
        let pairs = pool.map(n.div_ceil(2), |k| {
            let mirror = n - 1 - k;
            (stripe(k), (mirror > k).then(|| stripe(mirror)))
        });
        let mut q = Matrix::zeros(n, n);
        let mut fill = |i: usize, s: Vec<f64>| {
            for (off, v) in s.into_iter().enumerate() {
                let j = i + off;
                q[(i, j)] = v;
                q[(j, i)] = v;
            }
        };
        for (k, (first, second)) in pairs.into_iter().enumerate() {
            fill(k, first);
            if let Some(s) = second {
                fill(n - 1 - k, s);
            }
        }
        // Feasible start: fill ⌊1/C⌋ entries at the box bound, remainder on
        // the next one, so Σα = 1 and 0 <= α <= C.
        let mut alpha = vec![0.0; n];
        let full = (self.nu * n as f64).floor() as usize;
        for a in alpha.iter_mut().take(full.min(n)) {
            *a = c;
        }
        if full < n {
            alpha[full] = 1.0 - full as f64 * c;
        }
        // gradient g = Qα
        let mut g = q.matvec(&alpha);
        let mut iterations = 0;
        let eps_box = c * 1e-12;
        let chunked = n >= par_min;
        let chunks = n.div_ceil(SMO_CHUNK);
        loop {
            // maximal violating pair
            let pair = if chunked {
                let partials = pool.map(chunks, |ch| {
                    let lo = ch * SMO_CHUNK;
                    let hi = (lo + SMO_CHUNK).min(n);
                    PairScan::scan(lo, hi, &g, &alpha, c, eps_box)
                });
                let mut acc = PairScan::empty();
                for p in &partials {
                    acc.merge(p);
                }
                acc
            } else {
                PairScan::scan(0, n, &g, &alpha, c, eps_box)
            };
            let (i_up, g_up, j_low, g_low) = (pair.i_up, pair.g_up, pair.j_low, pair.g_low);
            if i_up == usize::MAX || j_low == usize::MAX || g_low - g_up < self.tol {
                break;
            }
            if iterations >= self.max_iter {
                return Err(DetectError::NoConvergence {
                    algorithm: "ocsvm-smo",
                    iterations,
                });
            }
            iterations += 1;
            let (i, j) = (i_up, j_low);
            let eta = (q[(i, i)] + q[(j, j)] - 2.0 * q[(i, j)]).max(1e-12);
            // unconstrained optimal step along e_i − e_j, then clip to box
            let mut delta = (g[j] - g[i]) / eta;
            delta = delta.min(c - alpha[i]).min(alpha[j]);
            if delta <= 0.0 {
                break; // numerically stuck: the pair cannot move
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            // rank-one gradient update: every element is an independent
            // `g[t] + δ(Q_ti − Q_tj)`, so chunked evaluation reproduces
            // the in-place loop exactly
            if chunked {
                let updates = pool.map(chunks, |ch| {
                    let lo = ch * SMO_CHUNK;
                    let hi = (lo + SMO_CHUNK).min(n);
                    (lo..hi)
                        .map(|t| g[t] + delta * (q[(t, i)] - q[(t, j)]))
                        .collect::<Vec<f64>>()
                });
                for (ch, seg) in updates.into_iter().enumerate() {
                    let lo = ch * SMO_CHUNK;
                    g[lo..lo + seg.len()].copy_from_slice(&seg);
                }
            } else {
                for t in 0..n {
                    g[t] += delta * (q[(t, i)] - q[(t, j)]);
                }
            }
        }
        // ρ: average decision value over free support vectors; fall back to
        // the midpoint of the bound gradients when none is strictly free.
        let mut rho_sum = 0.0;
        let mut rho_cnt = 0usize;
        for t in 0..n {
            if alpha[t] > eps_box && alpha[t] < c - eps_box {
                rho_sum += g[t];
                rho_cnt += 1;
            }
        }
        let rho = if rho_cnt > 0 {
            rho_sum / rho_cnt as f64
        } else {
            let mut lo = f64::NEG_INFINITY;
            let mut hi = f64::INFINITY;
            for t in 0..n {
                if alpha[t] > eps_box {
                    lo = lo.max(g[t]);
                }
                if alpha[t] < c - eps_box {
                    hi = hi.min(g[t]);
                }
            }
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => 0.5 * (lo + hi),
                (true, false) => lo,
                (false, true) => hi,
                (false, false) => 0.0,
            }
        };
        // retain support vectors only
        let sv_idx: Vec<usize> = (0..n).filter(|&t| alpha[t] > eps_box).collect();
        let all_cols: Vec<usize> = (0..train.ncols()).collect();
        let support = train.submatrix(&sv_idx, &all_cols);
        let sv_alpha: Vec<f64> = sv_idx.iter().map(|&t| alpha[t]).collect();
        Ok(FittedOcSvm {
            kernel,
            support,
            alpha: sv_alpha,
            rho,
            dim: train.ncols(),
            sv_fraction: sv_idx.len() as f64 / n as f64,
        })
    }
}

impl Detector for OcSvm {
    fn name(&self) -> &'static str {
        "ocsvm"
    }

    fn fit(&self, train: &Matrix) -> Result<Box<dyn FittedDetector>> {
        Ok(Box::new(self.fit_concrete(train)?))
    }
}

impl FittedDetector for FittedOcSvm {
    fn dim(&self) -> usize {
        self.dim
    }

    fn score_one(&self, x: &[f64]) -> Result<f64> {
        // outlyingness = ρ − Σ α K = −f(x)
        Ok(-self.decision(x)?)
    }

    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        Some(crate::snapshot::DetectorSnapshot::OcSvm(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::matrix_from_rows;

    fn ring_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 100.0;
                vec![
                    a.cos() + 0.05 * (7.0 * a).sin(),
                    a.sin() + 0.05 * (5.0 * a).cos(),
                ]
            })
            .collect();
        rows.push(vec![6.0, 6.0]);
        matrix_from_rows(&rows).unwrap()
    }

    fn fit_ocsvm(x: &Matrix, nu: f64) -> Box<dyn FittedDetector> {
        OcSvm::with_nu(nu).unwrap().fit(x).unwrap()
    }

    #[test]
    fn outlier_scores_highest() {
        let x = ring_with_outlier();
        let model = fit_ocsvm(&x, 0.1);
        let s = model.score_batch(&x).unwrap();
        let top = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, 100, "{s:?}");
    }

    #[test]
    fn nu_property_bounds() {
        // ν lower-bounds the SV fraction and (approximately) upper-bounds
        // the fraction of training points scored as outliers (f < 0).
        let x = ring_with_outlier();
        for &nu in &[0.05, 0.1, 0.3, 0.5] {
            let cfg = OcSvm::with_nu(nu).unwrap();
            let fitted = cfg.fit(&x).unwrap();
            let scores = fitted.score_batch(&x).unwrap();
            let outlier_frac =
                scores.iter().filter(|&&v| v > 1e-9).count() as f64 / x.nrows() as f64;
            assert!(
                outlier_frac <= nu + 0.08,
                "nu={nu}: outlier fraction {outlier_frac}"
            );
        }
    }

    #[test]
    fn sv_fraction_at_least_nu() {
        let x = ring_with_outlier();
        for &nu in &[0.1, 0.3, 0.5] {
            let model = OcSvm::with_nu(nu).unwrap().fit(&x).unwrap();
            let s = model.score_batch(&x).unwrap();
            assert!(s.iter().all(|v| v.is_finite()));
            // re-fit to inspect internals through the concrete type
            let cfg = OcSvm::with_nu(nu).unwrap();
            let kernel = cfg.resolve_kernel(&x).unwrap();
            assert!(matches!(kernel, Kernel::Rbf { .. }));
        }
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        // At the optimum: training points with decision f(x_i) > 0 (strictly
        // inside) must have α_i = 0, i.e. not be support vectors; points with
        // f(x_i) < 0 must sit at the box bound. We verify the observable
        // consequence: Σα over support vectors is 1 and the fraction of
        // training points with positive score is close to the SV-bound story.
        let x = ring_with_outlier();
        let cfg = OcSvm {
            nu: 0.2,
            tol: 1e-8,
            ..Default::default()
        };
        let model = cfg.fit_concrete(&x).unwrap();
        let total_alpha: f64 = model.alpha.iter().sum();
        assert!((total_alpha - 1.0).abs() < 1e-9, "Σα = {total_alpha}");
        // ν-property: SV fraction >= ν (up to one grid point of slack)
        assert!(
            model.sv_fraction() >= 0.2 - 1.0 / x.nrows() as f64,
            "sv fraction {}",
            model.sv_fraction()
        );
        assert!(model.n_support() > 0);
        assert!(model.rho().is_finite());
        // margin SVs (0 < α < C) lie on the boundary: |f| ≈ 0
        let c = 1.0 / (0.2 * x.nrows() as f64);
        for (i, &a) in model.alpha.iter().enumerate() {
            if a > 1e-9 && a < c - 1e-9 {
                let f = model.decision(model.support.row(i)).unwrap();
                assert!(f.abs() < 1e-5, "free SV {i} has |f| = {}", f.abs());
            }
        }
    }

    #[test]
    fn decision_sign_thresholding() {
        let x = ring_with_outlier();
        let cfg = OcSvm::with_nu(0.1).unwrap();
        let fitted = cfg.fit(&x).unwrap();
        // an obvious inlier region point scores negative (not outlying)
        let inlier_score = fitted.score_one(&[1.0, 0.0]).unwrap();
        let outlier_score = fitted.score_one(&[8.0, -8.0]).unwrap();
        assert!(inlier_score < outlier_score);
        assert!(
            outlier_score > 0.0,
            "far point must be flagged: {outlier_score}"
        );
    }

    #[test]
    fn works_with_linear_and_poly_kernels() {
        let x = ring_with_outlier();
        for kernel in [
            Kernel::Linear,
            Kernel::Polynomial {
                gamma: 1.0,
                coef0: 1.0,
                degree: 2,
            },
        ] {
            let cfg = OcSvm {
                kernel: Some(kernel),
                nu: 0.2,
                ..Default::default()
            };
            let fitted = cfg.fit(&x).unwrap();
            let s = fitted.score_batch(&x).unwrap();
            assert!(s.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn gamma_heuristics_positive() {
        let x = ring_with_outlier();
        assert!(median_heuristic_gamma(&x) > 0.0);
        assert!(scale_gamma(&x) > 0.0);
        // degenerate data falls back to 1.0
        let flat = Matrix::filled(10, 2, 3.0);
        assert_eq!(median_heuristic_gamma(&flat), 1.0);
        assert_eq!(scale_gamma(&flat), 1.0);
    }

    #[test]
    fn parameter_validation() {
        assert!(OcSvm::with_nu(0.0).is_err());
        assert!(OcSvm::with_nu(1.5).is_err());
        assert!(OcSvm::with_nu(1.0).is_ok());
        let x = ring_with_outlier();
        let bad = OcSvm {
            kernel: Some(Kernel::Rbf { gamma: -1.0 }),
            ..Default::default()
        };
        assert!(bad.fit(&x).is_err());
        let cfg = OcSvm::with_nu(0.1).unwrap();
        let fitted = cfg.fit(&x).unwrap();
        assert!(fitted.score_one(&[1.0]).is_err());
        assert!(fitted.score_one(&[f64::NAN, 1.0]).is_err());
        assert_eq!(cfg.name(), "ocsvm");
        assert_eq!(fitted.dim(), 2);
    }

    fn assert_fits_bit_equal(a: &FittedOcSvm, b: &FittedOcSvm, what: &str) {
        assert_eq!(a.dim, b.dim, "{what}: dim");
        assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "{what}: rho");
        assert_eq!(a.alpha.len(), b.alpha.len(), "{what}: support count");
        for (i, (x, y)) in a.alpha.iter().zip(&b.alpha).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: alpha {i}");
        }
        for (x, y) in a.support.as_slice().iter().zip(b.support.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: support vector entry");
        }
        assert_eq!(
            a.sv_fraction.to_bits(),
            b.sv_fraction.to_bits(),
            "{what}: sv fraction"
        );
    }

    #[test]
    fn chunked_smo_is_bit_identical_to_sequential() {
        // Force both inner-loop implementations onto the same problem:
        // par_min = 0 runs every scan chunked, par_min = MAX never does.
        let x = ring_with_outlier();
        let cfg = OcSvm::with_nu(0.2).unwrap();
        let pool = Pool::with_threads(4);
        let chunked = cfg.fit_concrete_with(&pool, &x, 0).unwrap();
        let sequential = cfg.fit_concrete_with(&pool, &x, usize::MAX).unwrap();
        assert_fits_bit_equal(&chunked, &sequential, "chunked vs sequential");
    }

    #[test]
    fn fit_is_bit_identical_across_pool_sizes() {
        let x = ring_with_outlier();
        let cfg = OcSvm::with_nu(0.15).unwrap();
        // chunked path pinned on at every pool size, including the global
        let reference = cfg
            .fit_concrete_with(&Pool::with_threads(1), &x, 0)
            .unwrap();
        for threads in [2usize, 3, 8] {
            let fitted = cfg
                .fit_concrete_with(&Pool::with_threads(threads), &x, 0)
                .unwrap();
            assert_fits_bit_equal(&fitted, &reference, &format!("{threads} threads"));
        }
        let global = cfg.fit_concrete(&x).unwrap();
        assert_fits_bit_equal(&global, &reference, "global pool");
        // and the scores a served model would produce agree bit for bit
        let s1 = FittedDetector::score_batch(&reference, &x).unwrap();
        let s2 = FittedDetector::score_batch(&global, &x).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunked_smo_spanning_many_chunks_matches_sequential() {
        // > 2 chunks (n > 512) so cross-chunk reduction order is exercised
        // with real chunk counts, including an uneven tail chunk.
        let rows: Vec<Vec<f64>> = (0..541)
            .map(|i| {
                let a = i as f64 * 0.117;
                vec![a.sin() + 0.01 * (13.0 * a).cos(), a.cos()]
            })
            .collect();
        let x = matrix_from_rows(&rows).unwrap();
        let cfg = OcSvm {
            nu: 0.1,
            max_iter: 200_000,
            ..Default::default()
        };
        let pool = Pool::with_threads(4);
        // n >= SMO_PAR_MIN: the default threshold engages the chunked path
        let default_path = cfg.fit_concrete_on(&pool, &x).unwrap();
        let sequential = cfg.fit_concrete_with(&pool, &x, usize::MAX).unwrap();
        assert_fits_bit_equal(&default_path, &sequential, "large-n default path");
    }

    #[test]
    fn duplicate_rows_handled() {
        // Many duplicated points: kernel matrix is rank-deficient; SMO must
        // still converge (eta is clamped).
        let mut rows = vec![vec![1.0, 1.0]; 30];
        rows.extend(vec![vec![-1.0, -1.0]; 30]);
        rows.push(vec![10.0, 10.0]);
        let x = matrix_from_rows(&rows).unwrap();
        let fitted = OcSvm::with_nu(0.2).unwrap().fit(&x).unwrap();
        let s = fitted.score_batch(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
        let top = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, 60);
    }
}
