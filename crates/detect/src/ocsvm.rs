//! ν-One-Class SVM (Schölkopf et al., *Neural Computation* 2001), solved by
//! sequential minimal optimization (SMO).
//!
//! The dual problem is
//!
//! ```text
//! min_α ½ αᵀ Q α    s.t.  0 <= α_i <= 1/(νn),  Σ α_i = 1
//! ```
//!
//! with `Q_ij = K(x_i, x_j)`. The decision function is
//! `f(x) = Σ_i α_i K(x_i, x) − ρ`, negative for outliers; ν upper-bounds the
//! training outlier fraction and lower-bounds the support-vector fraction.
//! We report the outlyingness score `ρ − Σ α K(x_i, x)` (higher = more
//! outlying), so thresholding at 0 recovers the usual decision rule.
//!
//! The SMO solver picks the maximally violating pair (the pair that most
//! violates dual feasibility), performs the exact two-variable update, and
//! stops when the duality gap proxy `max_{I_low} g − min_{I_up} g` falls
//! under `tol` — the textbook LIBSVM scheme specialized to the one-class
//! objective (no labels, no linear term).

use crate::error::DetectError;
use crate::features::validate_features;
use crate::kernel::Kernel;
use crate::{Detector, FittedDetector, Result};
use mfod_linalg::{vector, Matrix};

/// How the RBF bandwidth γ is chosen when the kernel is not given
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaSpec {
    /// Fixed value.
    Fixed(f64),
    /// Median heuristic: `γ = 1 / (2 · median(‖x_i − x_j‖²))` over a
    /// subsample of pairs — scale-free and robust.
    Median,
    /// `γ = 1 / (d · Var(X))` (the scikit-learn `"scale"` rule).
    Scale,
}

/// ν-one-class SVM configuration.
#[derive(Debug, Clone)]
pub struct OcSvm {
    /// ν ∈ (0, 1]: upper bound on the training outlier fraction and lower
    /// bound on the support-vector fraction.
    pub nu: f64,
    /// Kernel; `None` selects RBF with [`OcSvm::gamma`].
    pub kernel: Option<Kernel>,
    /// Bandwidth rule used when `kernel` is `None`.
    pub gamma: GammaSpec,
    /// SMO stopping tolerance on the maximal KKT violation.
    pub tol: f64,
    /// Iteration budget for the SMO loop.
    pub max_iter: usize,
}

impl Default for OcSvm {
    fn default() -> Self {
        OcSvm {
            nu: 0.1,
            kernel: None,
            gamma: GammaSpec::Median,
            tol: 1e-6,
            max_iter: 100_000,
        }
    }
}

impl OcSvm {
    /// OCSVM with the given ν and default (median-heuristic RBF) kernel.
    pub fn with_nu(nu: f64) -> Result<Self> {
        if !(0.0 < nu && nu <= 1.0) {
            return Err(DetectError::InvalidParameter(format!(
                "nu must be in (0, 1], got {nu}"
            )));
        }
        Ok(OcSvm {
            nu,
            ..Default::default()
        })
    }

    /// Resolves the kernel for a given training set.
    fn resolve_kernel(&self, train: &Matrix) -> Result<Kernel> {
        if let Some(k) = self.kernel {
            if !k.is_valid() {
                return Err(DetectError::InvalidParameter(format!(
                    "invalid kernel {k:?}"
                )));
            }
            return Ok(k);
        }
        let gamma = match self.gamma {
            GammaSpec::Fixed(g) => g,
            GammaSpec::Median => median_heuristic_gamma(train),
            GammaSpec::Scale => scale_gamma(train),
        };
        if !(gamma > 0.0 && gamma.is_finite()) {
            return Err(DetectError::InvalidParameter(format!(
                "resolved gamma {gamma} is invalid (degenerate data?)"
            )));
        }
        Ok(Kernel::Rbf { gamma })
    }
}

/// Median-of-pairwise-squared-distances bandwidth
/// `γ = 1 / (2 · median ‖x_i − x_j‖²)`, on at most ~2000 deterministic
/// pairs for large n.
pub fn median_heuristic_gamma(x: &Matrix) -> f64 {
    let n = x.nrows();
    if n < 2 {
        return 1.0;
    }
    let mut d2 = Vec::new();
    // stride so the number of pairs stays bounded
    let max_pairs = 2000usize;
    let total_pairs = n * (n - 1) / 2;
    let stride = (total_pairs / max_pairs).max(1);
    let mut c = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if c.is_multiple_of(stride) {
                let v = vector::dist2_sq(x.row(i), x.row(j));
                if v > 0.0 {
                    d2.push(v);
                }
            }
            c += 1;
        }
    }
    if d2.is_empty() {
        return 1.0;
    }
    1.0 / (2.0 * vector::median(&d2))
}

/// `γ = 1/(d · Var)` with the pooled per-column variance.
pub fn scale_gamma(x: &Matrix) -> f64 {
    let d = x.ncols();
    let mut var = 0.0;
    for j in 0..d {
        let col = x.col(j);
        let v = vector::variance_pop(&col);
        if v.is_finite() {
            var += v;
        }
    }
    var /= d as f64;
    if var <= 0.0 {
        1.0
    } else {
        1.0 / (d as f64 * var)
    }
}

/// A fitted one-class SVM.
#[derive(Debug, Clone)]
pub struct FittedOcSvm {
    kernel: Kernel,
    /// Support vectors (rows).
    support: Matrix,
    /// Dual coefficients of the support vectors.
    alpha: Vec<f64>,
    /// Offset ρ.
    rho: f64,
    dim: usize,
    /// Fraction of training points that ended up support vectors.
    sv_fraction: f64,
}

impl FittedOcSvm {
    /// The offset ρ of the decision function.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of support vectors.
    pub fn n_support(&self) -> usize {
        self.alpha.len()
    }

    /// Fraction of the training set retained as support vectors.
    pub fn sv_fraction(&self) -> f64 {
        self.sv_fraction
    }

    /// Signed decision value `f(x) = Σ α K − ρ` (negative ⇒ outlier).
    pub fn decision(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        if !vector::all_finite(x) {
            return Err(DetectError::NonFinite);
        }
        let mut s = 0.0;
        for (i, &a) in self.alpha.iter().enumerate() {
            s += a * self.kernel.eval(self.support.row(i), x);
        }
        Ok(s - self.rho)
    }
}

impl OcSvm {
    /// Fits and returns the concrete model (exposing ρ, support vectors and
    /// the SV fraction, which the ν-tuning in `mfod-eval` inspects).
    pub fn fit_concrete(&self, train: &Matrix) -> Result<FittedOcSvm> {
        validate_features(train, 2)?;
        if !(0.0 < self.nu && self.nu <= 1.0) {
            return Err(DetectError::InvalidParameter(format!(
                "nu must be in (0, 1], got {}",
                self.nu
            )));
        }
        let n = train.nrows();
        let kernel = self.resolve_kernel(train)?;
        let c = 1.0 / (self.nu * n as f64);
        // Gram matrix (n is a few hundred in this workspace's experiments).
        let mut q = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = kernel.eval(train.row(i), train.row(j));
                q[(i, j)] = v;
                q[(j, i)] = v;
            }
        }
        // Feasible start: fill ⌊1/C⌋ entries at the box bound, remainder on
        // the next one, so Σα = 1 and 0 <= α <= C.
        let mut alpha = vec![0.0; n];
        let full = (self.nu * n as f64).floor() as usize;
        for a in alpha.iter_mut().take(full.min(n)) {
            *a = c;
        }
        if full < n {
            alpha[full] = 1.0 - full as f64 * c;
        }
        // gradient g = Qα
        let mut g = q.matvec(&alpha);
        let mut iterations = 0;
        let eps_box = c * 1e-12;
        loop {
            // maximal violating pair
            let mut i_up = usize::MAX;
            let mut g_up = f64::INFINITY;
            let mut j_low = usize::MAX;
            let mut g_low = f64::NEG_INFINITY;
            for t in 0..n {
                if alpha[t] < c - eps_box && g[t] < g_up {
                    g_up = g[t];
                    i_up = t;
                }
                if alpha[t] > eps_box && g[t] > g_low {
                    g_low = g[t];
                    j_low = t;
                }
            }
            if i_up == usize::MAX || j_low == usize::MAX || g_low - g_up < self.tol {
                break;
            }
            if iterations >= self.max_iter {
                return Err(DetectError::NoConvergence {
                    algorithm: "ocsvm-smo",
                    iterations,
                });
            }
            iterations += 1;
            let (i, j) = (i_up, j_low);
            let eta = (q[(i, i)] + q[(j, j)] - 2.0 * q[(i, j)]).max(1e-12);
            // unconstrained optimal step along e_i − e_j, then clip to box
            let mut delta = (g[j] - g[i]) / eta;
            delta = delta.min(c - alpha[i]).min(alpha[j]);
            if delta <= 0.0 {
                break; // numerically stuck: the pair cannot move
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            for t in 0..n {
                g[t] += delta * (q[(t, i)] - q[(t, j)]);
            }
        }
        // ρ: average decision value over free support vectors; fall back to
        // the midpoint of the bound gradients when none is strictly free.
        let mut rho_sum = 0.0;
        let mut rho_cnt = 0usize;
        for t in 0..n {
            if alpha[t] > eps_box && alpha[t] < c - eps_box {
                rho_sum += g[t];
                rho_cnt += 1;
            }
        }
        let rho = if rho_cnt > 0 {
            rho_sum / rho_cnt as f64
        } else {
            let mut lo = f64::NEG_INFINITY;
            let mut hi = f64::INFINITY;
            for t in 0..n {
                if alpha[t] > eps_box {
                    lo = lo.max(g[t]);
                }
                if alpha[t] < c - eps_box {
                    hi = hi.min(g[t]);
                }
            }
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => 0.5 * (lo + hi),
                (true, false) => lo,
                (false, true) => hi,
                (false, false) => 0.0,
            }
        };
        // retain support vectors only
        let sv_idx: Vec<usize> = (0..n).filter(|&t| alpha[t] > eps_box).collect();
        let all_cols: Vec<usize> = (0..train.ncols()).collect();
        let support = train.submatrix(&sv_idx, &all_cols);
        let sv_alpha: Vec<f64> = sv_idx.iter().map(|&t| alpha[t]).collect();
        Ok(FittedOcSvm {
            kernel,
            support,
            alpha: sv_alpha,
            rho,
            dim: train.ncols(),
            sv_fraction: sv_idx.len() as f64 / n as f64,
        })
    }
}

impl Detector for OcSvm {
    fn name(&self) -> &'static str {
        "ocsvm"
    }

    fn fit(&self, train: &Matrix) -> Result<Box<dyn FittedDetector>> {
        Ok(Box::new(self.fit_concrete(train)?))
    }
}

impl FittedDetector for FittedOcSvm {
    fn dim(&self) -> usize {
        self.dim
    }

    fn score_one(&self, x: &[f64]) -> Result<f64> {
        // outlyingness = ρ − Σ α K = −f(x)
        Ok(-self.decision(x)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::matrix_from_rows;

    fn ring_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 100.0;
                vec![
                    a.cos() + 0.05 * (7.0 * a).sin(),
                    a.sin() + 0.05 * (5.0 * a).cos(),
                ]
            })
            .collect();
        rows.push(vec![6.0, 6.0]);
        matrix_from_rows(&rows).unwrap()
    }

    fn fit_ocsvm(x: &Matrix, nu: f64) -> Box<dyn FittedDetector> {
        OcSvm::with_nu(nu).unwrap().fit(x).unwrap()
    }

    #[test]
    fn outlier_scores_highest() {
        let x = ring_with_outlier();
        let model = fit_ocsvm(&x, 0.1);
        let s = model.score_batch(&x).unwrap();
        let top = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, 100, "{s:?}");
    }

    #[test]
    fn nu_property_bounds() {
        // ν lower-bounds the SV fraction and (approximately) upper-bounds
        // the fraction of training points scored as outliers (f < 0).
        let x = ring_with_outlier();
        for &nu in &[0.05, 0.1, 0.3, 0.5] {
            let cfg = OcSvm::with_nu(nu).unwrap();
            let fitted = cfg.fit(&x).unwrap();
            let scores = fitted.score_batch(&x).unwrap();
            let outlier_frac =
                scores.iter().filter(|&&v| v > 1e-9).count() as f64 / x.nrows() as f64;
            assert!(
                outlier_frac <= nu + 0.08,
                "nu={nu}: outlier fraction {outlier_frac}"
            );
        }
    }

    #[test]
    fn sv_fraction_at_least_nu() {
        let x = ring_with_outlier();
        for &nu in &[0.1, 0.3, 0.5] {
            let model = OcSvm::with_nu(nu).unwrap().fit(&x).unwrap();
            let s = model.score_batch(&x).unwrap();
            assert!(s.iter().all(|v| v.is_finite()));
            // re-fit to inspect internals through the concrete type
            let cfg = OcSvm::with_nu(nu).unwrap();
            let kernel = cfg.resolve_kernel(&x).unwrap();
            assert!(matches!(kernel, Kernel::Rbf { .. }));
        }
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        // At the optimum: training points with decision f(x_i) > 0 (strictly
        // inside) must have α_i = 0, i.e. not be support vectors; points with
        // f(x_i) < 0 must sit at the box bound. We verify the observable
        // consequence: Σα over support vectors is 1 and the fraction of
        // training points with positive score is close to the SV-bound story.
        let x = ring_with_outlier();
        let cfg = OcSvm {
            nu: 0.2,
            tol: 1e-8,
            ..Default::default()
        };
        let model = cfg.fit_concrete(&x).unwrap();
        let total_alpha: f64 = model.alpha.iter().sum();
        assert!((total_alpha - 1.0).abs() < 1e-9, "Σα = {total_alpha}");
        // ν-property: SV fraction >= ν (up to one grid point of slack)
        assert!(
            model.sv_fraction() >= 0.2 - 1.0 / x.nrows() as f64,
            "sv fraction {}",
            model.sv_fraction()
        );
        assert!(model.n_support() > 0);
        assert!(model.rho().is_finite());
        // margin SVs (0 < α < C) lie on the boundary: |f| ≈ 0
        let c = 1.0 / (0.2 * x.nrows() as f64);
        for (i, &a) in model.alpha.iter().enumerate() {
            if a > 1e-9 && a < c - 1e-9 {
                let f = model.decision(model.support.row(i)).unwrap();
                assert!(f.abs() < 1e-5, "free SV {i} has |f| = {}", f.abs());
            }
        }
    }

    #[test]
    fn decision_sign_thresholding() {
        let x = ring_with_outlier();
        let cfg = OcSvm::with_nu(0.1).unwrap();
        let fitted = cfg.fit(&x).unwrap();
        // an obvious inlier region point scores negative (not outlying)
        let inlier_score = fitted.score_one(&[1.0, 0.0]).unwrap();
        let outlier_score = fitted.score_one(&[8.0, -8.0]).unwrap();
        assert!(inlier_score < outlier_score);
        assert!(
            outlier_score > 0.0,
            "far point must be flagged: {outlier_score}"
        );
    }

    #[test]
    fn works_with_linear_and_poly_kernels() {
        let x = ring_with_outlier();
        for kernel in [
            Kernel::Linear,
            Kernel::Polynomial {
                gamma: 1.0,
                coef0: 1.0,
                degree: 2,
            },
        ] {
            let cfg = OcSvm {
                kernel: Some(kernel),
                nu: 0.2,
                ..Default::default()
            };
            let fitted = cfg.fit(&x).unwrap();
            let s = fitted.score_batch(&x).unwrap();
            assert!(s.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn gamma_heuristics_positive() {
        let x = ring_with_outlier();
        assert!(median_heuristic_gamma(&x) > 0.0);
        assert!(scale_gamma(&x) > 0.0);
        // degenerate data falls back to 1.0
        let flat = Matrix::filled(10, 2, 3.0);
        assert_eq!(median_heuristic_gamma(&flat), 1.0);
        assert_eq!(scale_gamma(&flat), 1.0);
    }

    #[test]
    fn parameter_validation() {
        assert!(OcSvm::with_nu(0.0).is_err());
        assert!(OcSvm::with_nu(1.5).is_err());
        assert!(OcSvm::with_nu(1.0).is_ok());
        let x = ring_with_outlier();
        let bad = OcSvm {
            kernel: Some(Kernel::Rbf { gamma: -1.0 }),
            ..Default::default()
        };
        assert!(bad.fit(&x).is_err());
        let cfg = OcSvm::with_nu(0.1).unwrap();
        let fitted = cfg.fit(&x).unwrap();
        assert!(fitted.score_one(&[1.0]).is_err());
        assert!(fitted.score_one(&[f64::NAN, 1.0]).is_err());
        assert_eq!(cfg.name(), "ocsvm");
        assert_eq!(fitted.dim(), 2);
    }

    #[test]
    fn duplicate_rows_handled() {
        // Many duplicated points: kernel matrix is rank-deficient; SMO must
        // still converge (eta is clamped).
        let mut rows = vec![vec![1.0, 1.0]; 30];
        rows.extend(vec![vec![-1.0, -1.0]; 30]);
        rows.push(vec![10.0, 10.0]);
        let x = matrix_from_rows(&rows).unwrap();
        let fitted = OcSvm::with_nu(0.2).unwrap().fit(&x).unwrap();
        let s = fitted.score_batch(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
        let top = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, 60);
    }
}
