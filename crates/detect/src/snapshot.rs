//! The tagged-union snapshot of fitted detectors.
//!
//! A fitted pipeline holds its detector as a `Box<dyn FittedDetector>`;
//! persistence goes through [`DetectorSnapshot`], a concrete enum over
//! the four fitted detector types, produced by the
//! [`crate::FittedDetector::snapshot`] hook. Model parameters are stored
//! as raw `f64` bit patterns, so a restored detector scores **bit-for-bit
//! identically** to the original — the detectors' scoring paths are pure
//! functions of their stored state.
//!
//! Decoding treats the bytes as untrusted: structural invariants that the
//! scoring hot paths rely on (index bounds, matching lengths,
//! forward-pointing tree children) are re-validated here, so a tampered
//! snapshot that survives the container CRC still fails with a typed
//! error instead of panicking or looping in `score_one`.

use crate::iforest::{FittedIsolationForest, Node, Tree};
use crate::kernel::Kernel;
use crate::lof::FittedLof;
use crate::mahalanobis::FittedMahalanobis;
use crate::ocsvm::FittedOcSvm;
use crate::FittedDetector;
use mfod_linalg::{Cholesky, Matrix};
use mfod_persist::{Decode, Decoder, Encode, Encoder, PersistError};

/// Concrete snapshot of any fitted detector shipped by this crate.
#[derive(Debug, Clone)]
pub enum DetectorSnapshot {
    /// A fitted local outlier factor model.
    Lof(FittedLof),
    /// A fitted isolation forest.
    IsolationForest(FittedIsolationForest),
    /// A fitted Mahalanobis detector.
    Mahalanobis(FittedMahalanobis),
    /// A fitted ν-one-class SVM.
    OcSvm(FittedOcSvm),
}

impl DetectorSnapshot {
    /// Unwraps the snapshot into a boxed live detector.
    pub fn into_fitted(self) -> Box<dyn FittedDetector> {
        match self {
            DetectorSnapshot::Lof(m) => Box::new(m),
            DetectorSnapshot::IsolationForest(m) => Box::new(m),
            DetectorSnapshot::Mahalanobis(m) => Box::new(m),
            DetectorSnapshot::OcSvm(m) => Box::new(m),
        }
    }

    /// The detector family name (matches `Detector::name`).
    pub fn name(&self) -> &'static str {
        match self {
            DetectorSnapshot::Lof(_) => "lof",
            DetectorSnapshot::IsolationForest(_) => "iforest",
            DetectorSnapshot::Mahalanobis(_) => "mahalanobis",
            DetectorSnapshot::OcSvm(_) => "ocsvm",
        }
    }
}

fn malformed(msg: impl Into<String>) -> PersistError {
    PersistError::Malformed(msg.into())
}

const TAG_LOF: u32 = 1;
const TAG_IFOREST: u32 = 2;
const TAG_MAHALANOBIS: u32 = 3;
const TAG_OCSVM: u32 = 4;

impl Encode for DetectorSnapshot {
    fn encode(&self, w: &mut Encoder) {
        match self {
            DetectorSnapshot::Lof(m) => {
                w.put_u32(TAG_LOF);
                m.train.encode(w);
                w.put_usize(m.k);
                m.k_dist.encode(w);
                m.lrd.encode(w);
            }
            DetectorSnapshot::IsolationForest(m) => {
                w.put_u32(TAG_IFOREST);
                w.put_usize(m.trees.len());
                for tree in &m.trees {
                    encode_tree(tree, w);
                }
                w.put_usize(m.dim);
                w.put_f64(m.c_psi);
            }
            DetectorSnapshot::Mahalanobis(m) => {
                w.put_u32(TAG_MAHALANOBIS);
                m.mean.encode(w);
                m.chol.encode(w);
            }
            DetectorSnapshot::OcSvm(m) => {
                w.put_u32(TAG_OCSVM);
                m.kernel.encode(w);
                m.support.encode(w);
                m.alpha.encode(w);
                w.put_f64(m.rho);
                w.put_usize(m.dim);
                w.put_f64(m.sv_fraction);
            }
        }
    }
}

impl Decode for DetectorSnapshot {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        match r.take_u32()? {
            TAG_LOF => {
                let train = Matrix::decode(r)?;
                let k = r.take_usize()?;
                let k_dist = Vec::<f64>::decode(r)?;
                let lrd = Vec::<f64>::decode(r)?;
                let n = train.nrows();
                if n == 0 || train.ncols() == 0 {
                    return Err(malformed(
                        "lof snapshot has an empty training matrix (every score \
                         would degenerate to the constant 1.0)",
                    ));
                }
                if k == 0 {
                    return Err(malformed("lof snapshot has k = 0"));
                }
                if k_dist.len() != n || lrd.len() != n {
                    return Err(malformed(format!(
                        "lof snapshot lengths disagree: {n} training rows, {} k-distances, \
                         {} densities",
                        k_dist.len(),
                        lrd.len()
                    )));
                }
                Ok(DetectorSnapshot::Lof(FittedLof {
                    train,
                    k,
                    k_dist,
                    lrd,
                }))
            }
            TAG_IFOREST => {
                let n_trees = r.take_len(1, "iforest trees")?;
                let mut trees = Vec::with_capacity(n_trees);
                for _ in 0..n_trees {
                    trees.push(decode_tree(r)?);
                }
                let dim = r.take_usize()?;
                let c_psi = r.take_f64()?;
                if trees.is_empty() {
                    return Err(malformed(
                        "iforest snapshot has zero trees (every score would be NaN)",
                    ));
                }
                if dim == 0 {
                    return Err(malformed("iforest snapshot has zero dimension"));
                }
                if !(c_psi > 0.0 && c_psi.is_finite()) {
                    return Err(malformed(format!(
                        "iforest snapshot normalization c_psi = {c_psi} out of range"
                    )));
                }
                for (t, tree) in trees.iter().enumerate() {
                    validate_tree(tree, dim)
                        .map_err(|msg| malformed(format!("iforest tree {t}: {msg}")))?;
                }
                Ok(DetectorSnapshot::IsolationForest(FittedIsolationForest {
                    trees,
                    dim,
                    c_psi,
                }))
            }
            TAG_MAHALANOBIS => {
                let mean = Vec::<f64>::decode(r)?;
                let chol = Cholesky::decode(r)?;
                if mean.is_empty() || chol.dim() != mean.len() {
                    return Err(malformed(format!(
                        "mahalanobis snapshot: mean has {} entries, factor is {}x{}",
                        mean.len(),
                        chol.dim(),
                        chol.dim()
                    )));
                }
                Ok(DetectorSnapshot::Mahalanobis(FittedMahalanobis {
                    mean,
                    chol,
                }))
            }
            TAG_OCSVM => {
                let kernel = Kernel::decode(r)?;
                let support = Matrix::decode(r)?;
                let alpha = Vec::<f64>::decode(r)?;
                let rho = r.take_f64()?;
                let dim = r.take_usize()?;
                let sv_fraction = r.take_f64()?;
                if support.nrows() == 0 {
                    return Err(malformed(
                        "ocsvm snapshot has zero support vectors (every score \
                         would degenerate to the constant ρ)",
                    ));
                }
                if support.ncols() != dim || dim == 0 {
                    return Err(malformed(format!(
                        "ocsvm snapshot: support vectors have {} columns, dim is {dim}",
                        support.ncols()
                    )));
                }
                if alpha.len() != support.nrows() {
                    return Err(malformed(format!(
                        "ocsvm snapshot: {} dual coefficients for {} support vectors",
                        alpha.len(),
                        support.nrows()
                    )));
                }
                Ok(DetectorSnapshot::OcSvm(FittedOcSvm {
                    kernel,
                    support,
                    alpha,
                    rho,
                    dim,
                    sv_fraction,
                }))
            }
            tag => Err(PersistError::UnknownTag {
                what: "detector",
                tag,
            }),
        }
    }
}

fn encode_tree(tree: &Tree, w: &mut Encoder) {
    w.put_usize(tree.nodes.len());
    for node in &tree.nodes {
        match *node {
            Node::Leaf { size } => {
                w.put_u8(0);
                w.put_u32(size);
            }
            Node::Internal {
                feature,
                threshold,
                left,
                right,
            } => {
                w.put_u8(1);
                w.put_usize(feature);
                w.put_f64(threshold);
                w.put_u32(left);
                w.put_u32(right);
            }
        }
    }
}

fn decode_tree(r: &mut Decoder<'_>) -> mfod_persist::Result<Tree> {
    let n = r.take_len(1, "iforest nodes")?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(match r.take_u8()? {
            0 => Node::Leaf {
                size: r.take_u32()?,
            },
            1 => Node::Internal {
                feature: r.take_usize()?,
                threshold: r.take_f64()?,
                left: r.take_u32()?,
                right: r.take_u32()?,
            },
            tag => {
                return Err(PersistError::UnknownTag {
                    what: "iforest node",
                    tag: u32::from(tag),
                })
            }
        });
    }
    Ok(Tree { nodes })
}

/// Checks the structural invariants `Tree::path_length` relies on: the
/// arena is non-empty, features are in range, and every internal node's
/// children point strictly forward (which the growth order guarantees and
/// which bounds every root-to-leaf walk, so a malicious snapshot cannot
/// send scoring into an out-of-bounds read or an infinite loop).
fn validate_tree(tree: &Tree, dim: usize) -> std::result::Result<(), String> {
    if tree.nodes.is_empty() {
        return Err("empty node arena".into());
    }
    let n = tree.nodes.len();
    for (i, node) in tree.nodes.iter().enumerate() {
        if let Node::Internal {
            feature,
            left,
            right,
            ..
        } = *node
        {
            if feature >= dim {
                return Err(format!("node {i} splits feature {feature}, dim is {dim}"));
            }
            let (l, rgt) = (left as usize, right as usize);
            if l >= n || rgt >= n || l <= i || rgt <= i {
                return Err(format!(
                    "node {i} has children {l}/{rgt} outside the forward range {}..{n}",
                    i + 1
                ));
            }
        }
    }
    Ok(())
}

const KERNEL_LINEAR: u8 = 0;
const KERNEL_RBF: u8 = 1;
const KERNEL_POLY: u8 = 2;

impl Encode for Kernel {
    fn encode(&self, w: &mut Encoder) {
        match *self {
            Kernel::Linear => w.put_u8(KERNEL_LINEAR),
            Kernel::Rbf { gamma } => {
                w.put_u8(KERNEL_RBF);
                w.put_f64(gamma);
            }
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => {
                w.put_u8(KERNEL_POLY);
                w.put_f64(gamma);
                w.put_f64(coef0);
                w.put_u32(degree);
            }
        }
    }
}

impl Decode for Kernel {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        let kernel = match r.take_u8()? {
            KERNEL_LINEAR => Kernel::Linear,
            KERNEL_RBF => Kernel::Rbf {
                gamma: r.take_f64()?,
            },
            KERNEL_POLY => Kernel::Polynomial {
                gamma: r.take_f64()?,
                coef0: r.take_f64()?,
                degree: r.take_u32()?,
            },
            tag => {
                return Err(PersistError::UnknownTag {
                    what: "kernel",
                    tag: u32::from(tag),
                })
            }
        };
        if !kernel.is_valid() {
            return Err(malformed(format!(
                "kernel parameters out of range: {kernel:?}"
            )));
        }
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::matrix_from_rows;
    use crate::{Detector, IsolationForest, Lof, Mahalanobis, OcSvm};

    fn training_blob() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let a = i as f64 * 0.31;
                vec![a.sin(), a.cos(), (2.3 * a).sin() * 0.4]
            })
            .collect();
        rows.push(vec![7.0, -7.0, 7.0]);
        matrix_from_rows(&rows).unwrap()
    }

    fn roundtrip(snap: &DetectorSnapshot) -> DetectorSnapshot {
        let mut w = Encoder::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = DetectorSnapshot::decode(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn every_detector_roundtrips_with_bit_identical_scores() {
        let x = training_blob();
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(Lof::new(10).unwrap()),
            Box::new(IsolationForest {
                n_trees: 25,
                ..Default::default()
            }),
            Box::new(Mahalanobis::default()),
            Box::new(OcSvm::with_nu(0.15).unwrap()),
        ];
        for det in detectors {
            let fitted = det.fit(&x).unwrap();
            let snap = fitted
                .snapshot()
                .unwrap_or_else(|| panic!("{} must support snapshots", det.name()));
            assert_eq!(snap.name(), det.name());
            let restored = roundtrip(&snap).into_fitted();
            assert_eq!(restored.dim(), fitted.dim());
            let a = fitted.score_batch(&x).unwrap();
            let b = restored.score_batch(&x).unwrap();
            for (i, (x1, x2)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x1.to_bits(),
                    x2.to_bits(),
                    "{}: row {i} diverged after reload",
                    det.name()
                );
            }
        }
    }

    #[test]
    fn reencoding_a_restored_snapshot_is_byte_identical() {
        let x = training_blob();
        let fitted = IsolationForest::default().fit(&x).unwrap();
        let snap = fitted.snapshot().unwrap();
        let mut w = Encoder::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = DetectorSnapshot::decode(&mut r).unwrap();
        let mut w2 = Encoder::new();
        back.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn unknown_detector_tag_is_typed() {
        let mut w = Encoder::new();
        w.put_u32(42);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            DetectorSnapshot::decode(&mut r),
            Err(PersistError::UnknownTag {
                what: "detector",
                ..
            })
        ));
    }

    #[test]
    fn corrupted_tree_children_are_rejected_not_looped() {
        // Hand-build an iforest snapshot whose internal node points at
        // itself — accepted structurally by the wire format, rejected by
        // the invariant check (it would loop forever in path_length).
        let mut w = Encoder::new();
        w.put_u32(TAG_IFOREST);
        w.put_usize(1); // one tree
        w.put_usize(1); // one node
        w.put_u8(1); // internal
        w.put_usize(0); // feature
        w.put_f64(0.5);
        w.put_u32(0); // left -> itself
        w.put_u32(0); // right -> itself
        w.put_usize(2); // dim
        w.put_f64(1.0); // c_psi
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            DetectorSnapshot::decode(&mut r),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn structurally_empty_models_are_rejected() {
        // zero trees: scoring would divide 0.0/0.0 into NaN
        let mut w = Encoder::new();
        w.put_u32(TAG_IFOREST);
        w.put_usize(0); // no trees
        w.put_usize(2); // dim
        w.put_f64(1.0); // c_psi
        let bytes = w.into_bytes();
        assert!(matches!(
            DetectorSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(PersistError::Malformed(_))
        ));
        // zero support vectors: scoring would collapse to the constant ρ
        let mut w = Encoder::new();
        w.put_u32(TAG_OCSVM);
        Kernel::Linear.encode(&mut w);
        Matrix::zeros(0, 2).encode(&mut w); // no support rows
        Vec::<f64>::new().encode(&mut w);
        w.put_f64(0.5); // rho
        w.put_usize(2); // dim
        w.put_f64(0.0); // sv_fraction
        let bytes = w.into_bytes();
        assert!(matches!(
            DetectorSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(PersistError::Malformed(_))
        ));
        // empty lof training matrix: scoring would collapse to 1.0
        let mut w = Encoder::new();
        w.put_u32(TAG_LOF);
        Matrix::zeros(0, 2).encode(&mut w);
        w.put_usize(3); // k
        Vec::<f64>::new().encode(&mut w);
        Vec::<f64>::new().encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            DetectorSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let x = training_blob();
        let fitted = Lof::new(5).unwrap().fit(&x).unwrap();
        let snap = fitted.snapshot().unwrap();
        let DetectorSnapshot::Lof(mut lof) = snap else {
            panic!("lof snapshot expected")
        };
        lof.k_dist.pop();
        let tampered = DetectorSnapshot::Lof(lof);
        let mut w = Encoder::new();
        tampered.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            DetectorSnapshot::decode(&mut r),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn invalid_kernel_parameters_are_rejected() {
        let mut w = Encoder::new();
        Kernel::Rbf { gamma: 1.0 }.encode(&mut w);
        let mut bytes = w.into_bytes();
        // overwrite gamma's bits with -1.0
        bytes[1..9].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            Kernel::decode(&mut r),
            Err(PersistError::Malformed(_))
        ));
    }
}
