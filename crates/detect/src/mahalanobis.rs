//! Mahalanobis-distance detector: the classical parametric yardstick
//! (a Gaussian ellipsoid around the mean). Fast, but non-robust — included
//! as the weakest baseline of the detector ablation (experiment A3).

use crate::error::DetectError;
use crate::features::validate_features;
use crate::{Detector, FittedDetector, Result};
use mfod_linalg::{vector, Cholesky, Matrix};

/// Mahalanobis detector configuration.
#[derive(Debug, Clone)]
pub struct Mahalanobis {
    /// Ridge added to the covariance diagonal (relative to its trace) to
    /// keep the estimate invertible for `d ≈ n` feature sets like gridded
    /// curves.
    pub ridge: f64,
}

impl Default for Mahalanobis {
    fn default() -> Self {
        Mahalanobis { ridge: 1e-6 }
    }
}

/// A fitted Mahalanobis model: mean vector and Cholesky factor of the
/// (ridged) covariance.
#[derive(Debug, Clone)]
pub struct FittedMahalanobis {
    pub(crate) mean: Vec<f64>,
    pub(crate) chol: Cholesky,
}

impl Detector for Mahalanobis {
    fn name(&self) -> &'static str {
        "mahalanobis"
    }

    fn fit(&self, train: &Matrix) -> Result<Box<dyn FittedDetector>> {
        validate_features(train, 2)?;
        if !(self.ridge >= 0.0 && self.ridge.is_finite()) {
            return Err(DetectError::InvalidParameter(format!(
                "ridge must be finite and >= 0, got {}",
                self.ridge
            )));
        }
        let n = train.nrows();
        let d = train.ncols();
        let mut mean = vec![0.0; d];
        for i in 0..n {
            vector::axpy(1.0, train.row(i), &mut mean);
        }
        vector::scale(1.0 / n as f64, &mut mean);
        // covariance
        let mut cov = Matrix::zeros(d, d);
        let mut centered = vec![0.0; d];
        for i in 0..n {
            for (c, (v, m)) in centered.iter_mut().zip(train.row(i).iter().zip(&mean)) {
                *c = v - m;
            }
            for a in 0..d {
                let ca = centered[a];
                if ca == 0.0 {
                    continue;
                }
                for b in a..d {
                    cov[(a, b)] += ca * centered[b];
                }
            }
        }
        let denom = (n - 1).max(1) as f64;
        for a in 0..d {
            for b in a..d {
                cov[(a, b)] /= denom;
                cov[(b, a)] = cov[(a, b)];
            }
        }
        // relative ridge keeps the scale of the data
        let scale = cov.trace().max(1e-300) / d as f64;
        for a in 0..d {
            cov[(a, a)] += self.ridge * scale + 1e-12;
        }
        let chol = Cholesky::new_jittered(&cov, 1e-10)?;
        Ok(Box::new(FittedMahalanobis { mean, chol }))
    }
}

impl FittedDetector for FittedMahalanobis {
    fn dim(&self) -> usize {
        self.mean.len()
    }

    fn score_one(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim() {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim(),
                got: x.len(),
            });
        }
        if !vector::all_finite(x) {
            return Err(DetectError::NonFinite);
        }
        let diff = vector::sub(x, &self.mean);
        let solved = self.chol.solve(&diff);
        Ok(vector::dot(&diff, &solved).max(0.0).sqrt())
    }

    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        Some(crate::snapshot::DetectorSnapshot::Mahalanobis(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::matrix_from_rows;

    fn anisotropic_blob() -> Matrix {
        // spread 10x along x, 1x along y
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let a = i as f64 * 0.7;
                vec![10.0 * a.sin(), a.cos()]
            })
            .collect();
        matrix_from_rows(&rows).unwrap()
    }

    #[test]
    fn respects_covariance_shape() {
        let x = anisotropic_blob();
        let model = Mahalanobis::default().fit(&x).unwrap();
        // a point far along the stretched axis is LESS outlying than one the
        // same Euclidean distance along the narrow axis
        let along = model.score_one(&[8.0, 0.0]).unwrap();
        let across = model.score_one(&[0.0, 8.0]).unwrap();
        assert!(across > along * 2.0, "across {across} vs along {along}");
    }

    #[test]
    fn mean_point_scores_zero() {
        let x = matrix_from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 0.0]]).unwrap();
        let model = Mahalanobis::default().fit(&x).unwrap();
        let s = model.score_one(&[3.0, 2.0]).unwrap(); // the mean
        assert!(s < 1e-6, "score at mean: {s}");
    }

    #[test]
    fn degenerate_directions_survive_ridge() {
        // perfectly collinear data: plain covariance is singular
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let x = matrix_from_rows(&rows).unwrap();
        let model = Mahalanobis::default().fit(&x).unwrap();
        let s = model.score_one(&[25.0, 50.0]).unwrap();
        assert!(s.is_finite());
        // off-line point is much more outlying
        let off = model.score_one(&[25.0, 0.0]).unwrap();
        assert!(off > s);
    }

    #[test]
    fn validations() {
        let bad = Mahalanobis { ridge: -1.0 };
        let x = anisotropic_blob();
        assert!(bad.fit(&x).is_err());
        assert!(Mahalanobis::default().fit(&Matrix::zeros(1, 2)).is_err());
        let model = Mahalanobis::default().fit(&x).unwrap();
        assert!(model.score_one(&[1.0]).is_err());
        assert!(model.score_one(&[f64::NAN, 0.0]).is_err());
        assert_eq!(Mahalanobis::default().name(), "mahalanobis");
        assert_eq!(model.dim(), 2);
    }
}
