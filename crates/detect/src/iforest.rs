//! Isolation Forest (Liu, Ting & Zhou, ICDM 2008).
//!
//! Outliers are "few and different", so random recursive partitioning
//! isolates them in fewer splits than inliers. Each tree is grown on a
//! subsample of `ψ` points with uniformly random (feature, threshold)
//! splits up to depth `⌈log₂ ψ⌉`; the anomaly score of a point is
//! `s(x) = 2^(−E[h(x)] / c(ψ))` where `h` is the path length (with the
//! average-BST correction `c(size)` credited at truncated leaves) — scores
//! near 1 are anomalous, near 0.5 or below are normal.

use crate::error::DetectError;
use crate::features::validate_features;
use crate::{Detector, FittedDetector, Result};
use mfod_linalg::{par, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Isolation Forest configuration.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    /// Number of trees (paper default: 100).
    pub n_trees: usize,
    /// Subsample size ψ per tree (paper default: 256; clamped to n).
    pub subsample: usize,
    /// RNG seed for reproducible forests.
    pub seed: u64,
}

impl Default for IsolationForest {
    fn default() -> Self {
        IsolationForest {
            n_trees: 100,
            subsample: 256,
            seed: 0xF0_4E57,
        }
    }
}

impl IsolationForest {
    /// Forest with explicit tree count and subsample size.
    pub fn new(n_trees: usize, subsample: usize, seed: u64) -> Result<Self> {
        if n_trees == 0 {
            return Err(DetectError::InvalidParameter("n_trees must be >= 1".into()));
        }
        if subsample < 2 {
            return Err(DetectError::InvalidParameter(
                "subsample must be >= 2".into(),
            ));
        }
        Ok(IsolationForest {
            n_trees,
            subsample,
            seed,
        })
    }

    /// Fits the forest on an explicit worker pool (tests and benchmarks;
    /// [`Detector::fit`] uses the global pool).
    ///
    /// A master RNG seeded with `self.seed` draws one sub-seed per tree
    /// **sequentially**, so each tree's subsample and growth are a pure
    /// function of `(seed, tree index)` — trees are independent and can be
    /// grown on any number of threads with a bit-for-bit identical forest.
    ///
    /// Tree growth is the workspace's canonical *straggler* workload —
    /// tree cost varies with the random split depths, so a contiguous
    /// per-thread partition of the forest leaves threads idle behind the
    /// one that drew the deep trees. The pool's work-stealing scheduler
    /// splits the forest into fine index-ordered sub-chunks instead;
    /// whichever thread finishes its cheap trees steals the next chunk
    /// (`benches/pool_throughput.rs` measures the effect).
    pub fn fit_on(&self, pool: &par::Pool, train: &Matrix) -> Result<FittedIsolationForest> {
        validate_features(train, 2)?;
        if self.n_trees == 0 || self.subsample < 2 {
            return Err(DetectError::InvalidParameter(
                "n_trees must be >= 1 and subsample >= 2".into(),
            ));
        }
        let n = train.nrows();
        let psi = self.subsample.min(n);
        let height_limit = (psi as f64).log2().ceil() as usize;
        let mut master = StdRng::seed_from_u64(self.seed);
        let tree_seeds: Vec<u64> = (0..self.n_trees).map(|_| master.random::<u64>()).collect();
        let trees = pool.map(self.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(tree_seeds[t]);
            // partial Fisher–Yates: the first psi entries become the subsample
            let mut candidates: Vec<usize> = (0..n).collect();
            for i in 0..psi {
                let j = rng.random_range(i..n);
                candidates.swap(i, j);
            }
            let mut idx = candidates[..psi].to_vec();
            Tree::grow(train, &mut idx, height_limit, &mut rng)
        });
        Ok(FittedIsolationForest {
            trees,
            dim: train.ncols(),
            c_psi: average_path_length(psi).max(f64::MIN_POSITIVE),
        })
    }
}

/// Euler–Mascheroni constant (not yet stable in `std::f64::consts`).
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Average path length of an unsuccessful BST search among `n` nodes:
/// `c(n) = 2 H(n−1) − 2(n−1)/n`, with `c(1) = 0`.
fn average_path_length(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    let harmonic = (nf - 1.0).ln() + EULER_GAMMA;
    2.0 * harmonic - 2.0 * (nf - 1.0) / nf
}

/// One node of an isolation tree, arena-allocated.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Internal {
        feature: usize,
        threshold: f64,
        /// Arena index of the left (`< threshold`) child.
        left: u32,
        /// Arena index of the right child.
        right: u32,
    },
    Leaf {
        /// Number of training points that reached this leaf.
        size: u32,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Tree {
    pub(crate) nodes: Vec<Node>,
}

impl Tree {
    /// Grows a tree on the points indexed by `idx` (mutated in place for
    /// in-partition swapping).
    fn grow(x: &Matrix, idx: &mut [usize], height_limit: usize, rng: &mut StdRng) -> Tree {
        let mut nodes = Vec::with_capacity(2 * idx.len());
        Self::grow_rec(x, idx, 0, height_limit, rng, &mut nodes);
        Tree { nodes }
    }

    fn grow_rec(
        x: &Matrix,
        idx: &mut [usize],
        depth: usize,
        height_limit: usize,
        rng: &mut StdRng,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        if idx.len() <= 1 || depth >= height_limit {
            nodes.push(Node::Leaf {
                size: idx.len() as u32,
            });
            return (nodes.len() - 1) as u32;
        }
        // choose a feature with non-degenerate spread; give up after d tries
        let d = x.ncols();
        let mut feature = None;
        let start = rng.random_range(0..d);
        for off in 0..d {
            let f = (start + off) % d;
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in idx.iter() {
                let v = x[(i, f)];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                feature = Some((f, lo, hi));
                break;
            }
        }
        let Some((feature, lo, hi)) = feature else {
            // all points identical on every feature: unsplittable
            nodes.push(Node::Leaf {
                size: idx.len() as u32,
            });
            return (nodes.len() - 1) as u32;
        };
        let threshold = lo + rng.random::<f64>() * (hi - lo);
        // partition idx in place: left part < threshold
        let mut split = 0;
        for i in 0..idx.len() {
            if x[(idx[i], feature)] < threshold {
                idx.swap(i, split);
                split += 1;
            }
        }
        // a uniform threshold in (lo, hi) cannot produce an empty side given
        // hi > lo, except through floating-point edge cases — fall back to a
        // leaf in that case
        if split == 0 || split == idx.len() {
            nodes.push(Node::Leaf {
                size: idx.len() as u32,
            });
            return (nodes.len() - 1) as u32;
        }
        let placeholder = nodes.len();
        nodes.push(Node::Leaf { size: 0 }); // replaced below
        let (left_idx, right_idx) = idx.split_at_mut(split);
        let left = Self::grow_rec(x, left_idx, depth + 1, height_limit, rng, nodes);
        let right = Self::grow_rec(x, right_idx, depth + 1, height_limit, rng, nodes);
        nodes[placeholder] = Node::Internal {
            feature,
            threshold,
            left,
            right,
        };
        placeholder as u32
    }

    /// Path length of `x` from the root, with the `c(size)` credit at leaves.
    fn path_length(&self, x: &[f64]) -> f64 {
        let mut node = 0u32;
        let mut depth = 0.0;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { size } => {
                    return depth + average_path_length(*size as usize);
                }
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                    depth += 1.0;
                }
            }
        }
    }
}

/// A fitted isolation forest.
#[derive(Debug, Clone)]
pub struct FittedIsolationForest {
    pub(crate) trees: Vec<Tree>,
    pub(crate) dim: usize,
    /// Normalization constant `c(ψ_effective)`.
    pub(crate) c_psi: f64,
}

impl Detector for IsolationForest {
    fn name(&self) -> &'static str {
        "iforest"
    }

    fn fit(&self, train: &Matrix) -> Result<Box<dyn FittedDetector>> {
        Ok(Box::new(self.fit_on(par::global(), train)?))
    }
}

impl FittedDetector for FittedIsolationForest {
    fn dim(&self) -> usize {
        self.dim
    }

    fn score_one(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.dim {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        if !mfod_linalg::vector::all_finite(x) {
            return Err(DetectError::NonFinite);
        }
        let mean_path: f64 =
            self.trees.iter().map(|t| t.path_length(x)).sum::<f64>() / self.trees.len() as f64;
        Ok(2.0_f64.powf(-mean_path / self.c_psi))
    }

    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        Some(crate::snapshot::DetectorSnapshot::IsolationForest(
            self.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::matrix_from_rows;

    fn blob_with_outlier() -> Matrix {
        let mut rows: Vec<Vec<f64>> = (0..128)
            .map(|i| {
                let a = i as f64 * 0.37;
                vec![a.sin(), a.cos(), (2.0 * a).sin() * 0.5]
            })
            .collect();
        rows.push(vec![10.0, -10.0, 10.0]);
        matrix_from_rows(&rows).unwrap()
    }

    #[test]
    fn average_path_length_values() {
        assert_eq!(average_path_length(0), 0.0);
        assert_eq!(average_path_length(1), 0.0);
        // c(2) = 2(ln 1 + γ) − 1 = 2γ − 1 ≈ 0.1544
        assert!((average_path_length(2) - (2.0 * EULER_GAMMA - 1.0)).abs() < 1e-12);
        // monotone increasing
        for n in 2..100 {
            assert!(average_path_length(n + 1) > average_path_length(n));
        }
    }

    #[test]
    fn outlier_gets_top_score() {
        let x = blob_with_outlier();
        let model = IsolationForest::default().fit(&x).unwrap();
        let scores = model.score_batch(&x).unwrap();
        let top = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(top, 128);
        // scores live in (0, 1]
        assert!(scores.iter().all(|&s| s > 0.0 && s <= 1.0));
        // the outlier's score exceeds the typical inlier score clearly
        let inlier_mean: f64 = scores[..128].iter().sum::<f64>() / 128.0;
        assert!(
            scores[128] > inlier_mean + 0.1,
            "{} vs {}",
            scores[128],
            inlier_mean
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let x = blob_with_outlier();
        let m1 = IsolationForest {
            seed: 7,
            ..Default::default()
        }
        .fit(&x)
        .unwrap();
        let m2 = IsolationForest {
            seed: 7,
            ..Default::default()
        }
        .fit(&x)
        .unwrap();
        let s1 = m1.score_batch(&x).unwrap();
        let s2 = m2.score_batch(&x).unwrap();
        assert_eq!(s1, s2);
        let m3 = IsolationForest {
            seed: 8,
            ..Default::default()
        }
        .fit(&x)
        .unwrap();
        let s3 = m3.score_batch(&x).unwrap();
        assert_ne!(s1, s3);
    }

    #[test]
    fn scores_unseen_points() {
        let x = blob_with_outlier();
        let model = IsolationForest::default().fit(&x).unwrap();
        let near = model.score_one(&[0.5, 0.8, 0.2]).unwrap();
        let far = model.score_one(&[-20.0, 20.0, -20.0]).unwrap();
        assert!(far > near, "far {far} near {near}");
    }

    #[test]
    fn handles_constant_data() {
        // unsplittable: all points identical; scoring must not panic or NaN
        let x = Matrix::filled(16, 2, 1.0);
        let model = IsolationForest::default().fit(&x).unwrap();
        let s = model.score_one(&[1.0, 1.0]).unwrap();
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn validations() {
        assert!(IsolationForest::new(0, 256, 0).is_err());
        assert!(IsolationForest::new(10, 1, 0).is_err());
        let x = Matrix::zeros(1, 2);
        assert!(IsolationForest::default().fit(&x).is_err());
        let x = blob_with_outlier();
        let model = IsolationForest::default().fit(&x).unwrap();
        assert!(model.score_one(&[1.0]).is_err());
        assert!(model.score_one(&[f64::NAN, 0.0, 0.0]).is_err());
        assert_eq!(model.dim(), 3);
        assert_eq!(IsolationForest::default().name(), "iforest");
    }

    #[test]
    fn fit_is_bit_identical_across_pool_sizes() {
        let x = blob_with_outlier();
        let cfg = IsolationForest {
            n_trees: 30,
            ..Default::default()
        };
        let m1 = cfg.fit_on(&par::Pool::with_threads(1), &x).unwrap();
        let m8 = cfg.fit_on(&par::Pool::with_threads(8), &x).unwrap();
        let global = cfg.fit(&x).unwrap();
        let s1 = m1.score_batch(&x).unwrap();
        let s8 = m8.score_batch(&x).unwrap();
        let sg = global.score_batch(&x).unwrap();
        for i in 0..s1.len() {
            assert_eq!(s1[i].to_bits(), s8[i].to_bits(), "row {i}");
            assert_eq!(s1[i].to_bits(), sg[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn subsample_larger_than_n_is_clamped() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let x = matrix_from_rows(&rows).unwrap();
        let model = IsolationForest {
            subsample: 1000,
            ..Default::default()
        }
        .fit(&x)
        .unwrap();
        let s = model.score_batch(&x).unwrap();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&v| v.is_finite()));
    }

    #[test]
    fn score_batch_dimension_check() {
        let x = blob_with_outlier();
        let model = IsolationForest::default().fit(&x).unwrap();
        let wrong = Matrix::zeros(3, 2);
        assert!(matches!(
            model.score_batch(&wrong),
            Err(DetectError::DimensionMismatch { .. })
        ));
    }
}
