//! # mfod-detect
//!
//! From-scratch multivariate outlier detectors — the "state-of-the-art
//! algorithms" the paper feeds with geometrically mapped functional data
//! (Sec. 3–4):
//!
//! * [`iforest::IsolationForest`] — Liu, Ting & Zhou (ICDM 2008);
//! * [`ocsvm::OcSvm`] — the ν-one-class SVM of Schölkopf et al. (2001),
//!   solved by sequential minimal optimization (SMO);
//! * [`lof::Lof`] — local outlier factor (extra detector for ablations);
//! * [`mahalanobis::Mahalanobis`] — the classical parametric yardstick.
//!
//! All detectors implement the [`Detector`] → [`FittedDetector`] pair and
//! orient scores **higher = more outlying**. Feature vectors are rows of a
//! [`mfod_linalg::Matrix`]; [`features::validate_features`] centralizes the
//! input checks.
//!
//! ```
//! use mfod_detect::prelude::*;
//! use mfod_linalg::Matrix;
//!
//! // 2-D blob plus one far-away point.
//! let mut rows: Vec<Vec<f64>> = (0..64)
//!     .map(|i| {
//!         let a = i as f64 * 0.1;
//!         vec![a.sin() * 0.1, a.cos() * 0.1]
//!     })
//!     .collect();
//! rows.push(vec![4.0, -4.0]);
//! let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
//! let x = Matrix::from_rows(&refs);
//!
//! let model = IsolationForest::default().fit(&x).unwrap();
//! let scores = model.score_batch(&x).unwrap();
//! let top = scores
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.total_cmp(b.1))
//!     .unwrap()
//!     .0;
//! assert_eq!(top, 64);
//! ```

pub mod error;
pub mod features;
pub mod iforest;
pub mod kernel;
pub mod lof;
pub mod mahalanobis;
pub mod ocsvm;
pub mod snapshot;

pub use error::DetectError;
pub use iforest::IsolationForest;
pub use kernel::Kernel;
pub use lof::Lof;
pub use mahalanobis::Mahalanobis;
pub use ocsvm::{GammaSpec, OcSvm};
pub use snapshot::DetectorSnapshot;

use mfod_linalg::Matrix;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, DetectError>;

/// An unsupervised outlier-detection algorithm configuration.
pub trait Detector: Send + Sync {
    /// Identifier used in experiment reports.
    fn name(&self) -> &'static str;

    /// Fits the detector on training rows (which may themselves contain
    /// outliers — robustness to training contamination is exactly what the
    /// paper's Fig. 3 probes).
    fn fit(&self, train: &Matrix) -> Result<Box<dyn FittedDetector>>;
}

/// A fitted detector ready to score unseen samples.
pub trait FittedDetector: Send + Sync {
    /// Feature dimension the model was trained on.
    fn dim(&self) -> usize;

    /// Outlyingness score of one sample; **higher = more outlying**.
    fn score_one(&self, x: &[f64]) -> Result<f64>;

    /// Scores every row of `data`.
    fn score_batch(&self, data: &Matrix) -> Result<Vec<f64>> {
        if data.ncols() != self.dim() {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim(),
                got: data.ncols(),
            });
        }
        (0..data.nrows())
            .map(|i| self.score_one(data.row(i)))
            .collect()
    }

    /// Scores every row of `data` across all available cores.
    ///
    /// Rows are scored independently and reassembled in row order, so the
    /// result is **bit-for-bit identical** to [`FittedDetector::score_batch`]
    /// — only the wall-clock changes. This is the serving-path entry point
    /// used by `mfod-stream`'s micro-batching.
    fn par_score_batch(&self, data: &Matrix) -> Result<Vec<f64>> {
        if data.ncols() != self.dim() {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim(),
                got: data.ncols(),
            });
        }
        mfod_linalg::par::par_try_map(data.nrows(), |i| self.score_one(data.row(i)))
    }

    /// The concrete snapshot form of this fitted model, when it supports
    /// persistence (see `mfod-persist` and [`snapshot::DetectorSnapshot`]).
    ///
    /// The four detectors shipped by this crate all return `Some`; the
    /// default is `None`, so a custom detector cannot silently write a
    /// model it could never restore — serialization layers surface the
    /// `None` as a typed error at snapshot time. Implementations must
    /// guarantee the restored model scores **bit-for-bit identically**.
    fn snapshot(&self) -> Option<DetectorSnapshot> {
        None
    }
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::error::DetectError;
    pub use crate::iforest::IsolationForest;
    pub use crate::kernel::Kernel;
    pub use crate::lof::Lof;
    pub use crate::mahalanobis::Mahalanobis;
    pub use crate::ocsvm::{GammaSpec, OcSvm};
    pub use crate::snapshot::DetectorSnapshot;
    pub use crate::{Detector, FittedDetector};
}
