//! Error type for the outlier detectors.

use mfod_linalg::LinalgError;
use std::fmt;

/// Errors produced while fitting or scoring detectors.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// The training set is too small.
    TooFewSamples {
        /// Samples provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Feature dimension differs between fit and score time.
    DimensionMismatch {
        /// Trained dimension.
        expected: usize,
        /// Dimension supplied.
        got: usize,
    },
    /// Input contains NaN or infinite values.
    NonFinite,
    /// A hyper-parameter is out of its valid range.
    InvalidParameter(String),
    /// The optimizer did not converge within its iteration budget.
    NoConvergence {
        /// Algorithm name.
        algorithm: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// An underlying linear algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::TooFewSamples { got, need } => {
                write!(f, "too few samples: got {got}, need {need}")
            }
            DetectError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: model expects {expected}, got {got}")
            }
            DetectError::NonFinite => write!(f, "input contains NaN or infinite values"),
            DetectError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DetectError::NoConvergence {
                algorithm,
                iterations,
            } => {
                write!(
                    f,
                    "{algorithm} did not converge after {iterations} iterations"
                )
            }
            DetectError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for DetectError {
    fn from(e: LinalgError) -> Self {
        DetectError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(DetectError::TooFewSamples { got: 1, need: 2 }
            .to_string()
            .contains('2'));
        assert!(DetectError::DimensionMismatch {
            expected: 3,
            got: 5
        }
        .to_string()
        .contains('5'));
        assert!(DetectError::InvalidParameter("nu".into())
            .to_string()
            .contains("nu"));
        assert!(DetectError::NoConvergence {
            algorithm: "smo",
            iterations: 9
        }
        .to_string()
        .contains("smo"));
        let e: DetectError = LinalgError::Empty.into();
        assert!(e.to_string().contains("linear algebra"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
