//! Kernel functions for the one-class SVM.

use mfod_linalg::vector;

/// A positive-definite kernel `K(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Linear kernel `xᵀy`.
    Linear,
    /// Gaussian RBF `exp(−γ ‖x − y‖²)`.
    Rbf {
        /// Bandwidth parameter γ > 0.
        gamma: f64,
    },
    /// Polynomial kernel `(γ xᵀy + coef0)^degree`.
    Polynomial {
        /// Scale γ > 0.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Degree (>= 1).
        degree: u32,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    /// Panics if `x` and `y` have different lengths.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => vector::dot(x, y),
            Kernel::Rbf { gamma } => (-gamma * vector::dist2_sq(x, y)).exp(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * vector::dot(x, y) + coef0).powi(degree as i32),
        }
    }

    /// Whether the parameters are in range.
    pub fn is_valid(&self) -> bool {
        match *self {
            Kernel::Linear => true,
            Kernel::Rbf { gamma } => gamma > 0.0 && gamma.is_finite(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => gamma > 0.0 && gamma.is_finite() && coef0.is_finite() && degree >= 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_kernel() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!(Kernel::Linear.is_valid());
    }

    #[test]
    fn rbf_kernel_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // K(x, x) = 1
        assert!((k.eval(&[1.0, -2.0], &[1.0, -2.0]) - 1.0).abs() < 1e-12);
        // symmetric
        let a = [0.0, 1.0];
        let b = [2.0, -1.0];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        // bounded in (0, 1]
        let v = k.eval(&a, &b);
        assert!(v > 0.0 && v <= 1.0);
        // known value: ‖a−b‖² = 8 → exp(−4)
        assert!((v - (-4.0_f64).exp()).abs() < 1e-12);
        assert!(k.is_valid());
        assert!(!Kernel::Rbf { gamma: 0.0 }.is_valid());
        assert!(!Kernel::Rbf { gamma: f64::NAN }.is_valid());
    }

    #[test]
    fn polynomial_kernel() {
        let k = Kernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        // (x·y + 1)² with x·y = 2 → 9
        assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 9.0);
        assert!(k.is_valid());
        assert!(!Kernel::Polynomial {
            gamma: -1.0,
            coef0: 0.0,
            degree: 2
        }
        .is_valid());
        assert!(!Kernel::Polynomial {
            gamma: 1.0,
            coef0: 0.0,
            degree: 0
        }
        .is_valid());
    }
}
