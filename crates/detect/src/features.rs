//! Feature-matrix validation and standardization helpers shared by the
//! detectors.

use crate::error::DetectError;
use crate::Result;
use mfod_linalg::{vector, Matrix};

/// Validates a feature matrix: non-empty, finite, at least `min_rows` rows.
pub fn validate_features(x: &Matrix, min_rows: usize) -> Result<()> {
    if x.nrows() < min_rows {
        return Err(DetectError::TooFewSamples {
            got: x.nrows(),
            need: min_rows,
        });
    }
    if x.ncols() == 0 {
        return Err(DetectError::InvalidParameter(
            "feature dimension is zero".into(),
        ));
    }
    if !x.is_finite() {
        return Err(DetectError::NonFinite);
    }
    Ok(())
}

/// Per-column standardization parameters learned on the training set.
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: Vec<f64>,
    /// Standard deviation with zero-variance columns clamped to 1 so that
    /// constant features pass through unchanged instead of exploding.
    std: Vec<f64>,
}

impl Standardizer {
    /// Learns column means and standard deviations.
    pub fn fit(x: &Matrix) -> Result<Self> {
        validate_features(x, 2)?;
        let d = x.ncols();
        let mut mean = Vec::with_capacity(d);
        let mut std = Vec::with_capacity(d);
        for j in 0..d {
            let col = x.col(j);
            mean.push(vector::mean(&col));
            let s = vector::std_dev(&col);
            std.push(if s > 1e-12 && s.is_finite() { s } else { 1.0 });
        }
        Ok(Standardizer { mean, std })
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Standardizes a whole matrix into a new one.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.ncols() != self.dim() {
            return Err(DetectError::DimensionMismatch {
                expected: self.dim(),
                got: x.ncols(),
            });
        }
        let mut out = x.clone();
        for i in 0..out.nrows() {
            self.transform_row(out.row_mut(i));
        }
        Ok(out)
    }
}

/// Builds a feature matrix from row vectors, validating consistency.
pub fn matrix_from_rows(rows: &[Vec<f64>]) -> Result<Matrix> {
    if rows.is_empty() {
        return Err(DetectError::TooFewSamples { got: 0, need: 1 });
    }
    let d = rows[0].len();
    if d == 0 {
        return Err(DetectError::InvalidParameter(
            "feature dimension is zero".into(),
        ));
    }
    for r in rows {
        if r.len() != d {
            return Err(DetectError::DimensionMismatch {
                expected: d,
                got: r.len(),
            });
        }
        if !vector::all_finite(r) {
            return Err(DetectError::NonFinite);
        }
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Ok(Matrix::from_rows(&refs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(validate_features(&x, 2).is_ok());
        assert!(matches!(
            validate_features(&x, 3),
            Err(DetectError::TooFewSamples { .. })
        ));
        let bad = Matrix::from_rows(&[&[f64::NAN, 1.0]]);
        assert!(matches!(
            validate_features(&bad, 1),
            Err(DetectError::NonFinite)
        ));
        let empty = Matrix::zeros(3, 0);
        assert!(validate_features(&empty, 1).is_err());
    }

    #[test]
    fn standardizer_zero_mean_unit_std() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let s = Standardizer::fit(&x).unwrap();
        let z = s.transform(&x).unwrap();
        for j in 0..2 {
            let col = z.col(j);
            assert!(vector::mean(&col).abs() < 1e-12);
            assert!((vector::std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_constant_column_passthrough() {
        let x = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0], &[5.0, 3.0]]);
        let s = Standardizer::fit(&x).unwrap();
        let z = s.transform(&x).unwrap();
        // constant column becomes zero (centered), not NaN
        assert!(z.col(0).iter().all(|&v| v == 0.0));
        assert!(z.is_finite());
    }

    #[test]
    fn standardizer_dimension_check() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let s = Standardizer::fit(&x).unwrap();
        let y = Matrix::zeros(2, 3);
        assert!(matches!(
            s.transform(&y),
            Err(DetectError::DimensionMismatch { .. })
        ));
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn rows_builder() {
        let m = matrix_from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert!(matrix_from_rows(&[]).is_err());
        assert!(matrix_from_rows(&[vec![]]).is_err());
        assert!(matrix_from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(matrix_from_rows(&[vec![f64::INFINITY]]).is_err());
    }
}
