//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no access to a crates
//! registry, so the handful of APIs the member crates rely on —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension trait with `random::<T>()` / `random_range(..)` — are
//! implemented here on top of xoshiro256++ (Blackman & Vigna), seeded
//! through SplitMix64. Determinism for a given seed is part of the
//! contract: experiment reproducibility and the proptest shim both depend
//! on it.

#![forbid(unsafe_code)]

/// A source of uniformly distributed `u64` values.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, small, and statistically solid for simulation
    /// workloads (not cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 spreads the seed over the full 256-bit state and
            // guarantees a non-zero state for every seed.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types drawable uniformly from an RNG.
pub trait Random: Sized {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` onto `[0, span)` by widening multiplication (Lemire);
/// the residual bias of ~`span / 2⁶⁴` is irrelevant for simulation.
#[inline]
fn mul_shift(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// The user-facing extension trait (the `Rng` of upstream `rand`, renamed
/// to match the call sites in this workspace).
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let v = rng.random_range(2usize..5);
            assert!((2..5).contains(&v));
            let w = rng.random_range(0usize..=1);
            seen_lo |= w == 0;
            seen_hi |= w == 1;
            let f = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let s = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&s));
        }
        assert!(seen_lo && seen_hi, "inclusive range must reach both ends");
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "trues {trues}");
    }
}
