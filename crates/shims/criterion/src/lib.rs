//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups with `sample_size` / `throughput`, and `Bencher::iter`
//! / `iter_batched`.
//!
//! The statistics are deliberately simple — per sample it times a
//! calibrated batch of iterations and reports min / mean / max over the
//! samples (plus elements-per-second when a [`Throughput`] is set). No
//! plots, no persistence, no outlier analysis.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Whether the bench binary was invoked in **smoke mode** — `--test` on
/// the command line (the flag upstream criterion honors under
/// `cargo bench -- --test`, and what CI uses to compile-and-run benches
/// cheaply) or a non-empty `CRITERION_SMOKE` environment variable.
///
/// In smoke mode the shim collapses timing to 2 samples × 1 ms per
/// benchmark; benches should additionally shrink their workloads and skip
/// wall-clock assertions (correctness/parity asserts should stay on).
pub fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
        || std::env::var("CRITERION_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// How `iter_batched` amortizes setup (accepted for API compatibility; the
/// shim always materializes one input per iteration up front).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Work-rate unit attached to a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs one timed batch of `iters` iterations per call.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup cost is excluded
    /// from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std_black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far leaner than upstream (100 samples × 3 s): these benches run
        // in CI-sized containers. Smoke mode collapses further so CI can
        // execute every bench as a correctness pass.
        if is_test_mode() {
            return Criterion {
                sample_size: 2,
                sample_budget: Duration::from_millis(1),
            };
        }
        Criterion {
            sample_size: 10,
            sample_budget: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Builder-style sample-size override (matches
    /// `Criterion::default().sample_size(n)` upstream).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Builder-style per-sample measurement budget.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.sample_budget = budget;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a single function with default settings.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size;
        let budget = self.sample_budget;
        run_benchmark(&id.into(), samples, budget, None, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Attaches a throughput so results also report a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &label,
            self.sample_size,
            self.criterion.sample_budget,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}
}

fn run_benchmark(
    label: &str,
    samples: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration pass: one iteration, used to pick a batch size that
    // fills the per-sample budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.iters = iters;
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {:>11}/s", si(n as f64 * 1e9 / mean)),
        Throughput::Bytes(n) => format!("  thrpt: {:>10}B/s", si(n as f64 * 1e9 / mean)),
    });
    println!(
        "{label:<44} time: [{} {} {}]{}",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            sample_budget: Duration::from_micros(200),
        };
        c.bench_function("smoke_iter", |b| b.iter(|| black_box(3u64).pow(7)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).throughput(Throughput::Elements(4));
        g.bench_function("smoke_batched", |b| {
            b.iter_batched(
                || vec![1.0f64; 16],
                |v| v.iter().sum::<f64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn formatting_covers_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(1.2e4).contains("µs"));
        assert!(fmt_ns(3.4e7).contains("ms"));
        assert!(fmt_ns(2.1e9).contains('s'));
        assert_eq!(si(1.5e3), "1.50k");
        assert!(si(2.5e6).ends_with('M'));
        assert!(si(3.5e9).ends_with('G'));
        assert_eq!(si(12.0), "12.0");
    }
}
