//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro, range/tuple/`Just`/`prop_map`/
//! `prop_flat_map`/collection strategies, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case panics with the usual assert
//!   message; inputs are printed by the assertion itself when the test
//!   formats them;
//! * **deterministic seeding** — every test function derives its RNG seed
//!   from its own name, so CI failures reproduce locally without a
//!   persistence file.

#![forbid(unsafe_code)]

/// Test-runner configuration.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Leaner than upstream's 256: the properties in this workspace
            // exercise O(m·L²) numeric kernels per case.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test seed (FNV-1a over the test name).
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Inclusive element-count range for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` may be a fixed `usize` or a (half-open or
    /// inclusive) range of lengths.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Choosing among explicit values.
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy drawing uniformly from a fixed list of values.
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from `values` (must be non-empty).
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use core::marker::PhantomData;
    use rand::rngs::StdRng;
    use rand::Random;

    /// Strategy yielding uniform values of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// The full uniform distribution of `T`.
    pub fn any<T: Random>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Random> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::random(rng)
        }
    }
}

/// Runtime support for the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Defines property tests: each `fn` runs `cases` times with fresh random
/// inputs drawn from the strategies on the right of each `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality (no shrinking: behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality (no shrinking: behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Must appear in the top-level block of a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Everything a test module needs, in one import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=5).prop_flat_map(|lo| (Just(lo), lo..=(lo + 10)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..3.0f64, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn flat_map_keeps_ordering((lo, hi) in pair()) {
            prop_assume!(lo >= 1);
            prop_assert!(lo <= hi, "lo {lo} hi {hi}");
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0.0..1.0f64, 7),
                       w in prop::collection::vec(any::<bool>(), 2..5usize)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!((2..5).contains(&w.len()));
        }

        #[test]
        fn map_applies(y in (0usize..4).prop_map(|v| v * 2)) {
            prop_assert!(y % 2 == 0 && y < 8);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(
            crate::test_runner::seed_for("a::t1"),
            crate::test_runner::seed_for("a::t2")
        );
    }
}
