//! The repeated-experiment runner behind Fig. 3: run a seeded experiment
//! many times (the paper: 50 random splittings) and aggregate each method's
//! metric into mean ± standard deviation.

use crate::error::EvalError;
use crate::Result;
use mfod_linalg::vector;
use std::collections::BTreeMap;

/// Aggregated result of one method over all repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSummary {
    /// Method identifier.
    pub method: String,
    /// Mean metric value.
    pub mean: f64,
    /// Sample standard deviation (0 for a single repetition).
    pub std: f64,
    /// All raw values, in repetition order.
    pub values: Vec<f64>,
}

/// Aggregated results of a repeated experiment, ordered by method name.
#[derive(Debug, Clone)]
pub struct RepeatedSummary {
    /// One summary per method.
    pub methods: Vec<MethodSummary>,
    /// Number of repetitions performed.
    pub repetitions: usize,
}

impl RepeatedSummary {
    /// Looks a method up by name.
    pub fn get(&self, method: &str) -> Option<&MethodSummary> {
        self.methods.iter().find(|m| m.method == method)
    }

    /// Renders a compact fixed-width table (method, mean ± std).
    pub fn to_table(&self, metric_name: &str) -> String {
        let mut out = String::new();
        let width = self
            .methods
            .iter()
            .map(|m| m.method.len())
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!(
            "{:width$}  {metric_name} (mean ± std over {} reps)\n",
            "method",
            self.repetitions,
            width = width
        ));
        for m in &self.methods {
            out.push_str(&format!(
                "{:width$}  {:.4} ± {:.4}\n",
                m.method,
                m.mean,
                m.std,
                width = width
            ));
        }
        out
    }
}

/// Runs `experiment` for `repetitions` seeds (`base_seed`, `base_seed+1`, …)
/// and aggregates per-method metrics. Each run returns
/// `(method name, metric value)` pairs; methods must be consistent across
/// repetitions (missing methods in some repetition are an error).
pub fn run_repeated<E: std::fmt::Display>(
    repetitions: usize,
    base_seed: u64,
    mut experiment: impl FnMut(u64) -> std::result::Result<Vec<(String, f64)>, E>,
) -> Result<RepeatedSummary> {
    if repetitions == 0 {
        return Err(EvalError::InvalidParameter(
            "repetitions must be >= 1".into(),
        ));
    }
    let mut per_method: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in 0..repetitions {
        let results =
            experiment(base_seed + r as u64).map_err(|e| EvalError::RepetitionFailed {
                repetition: r,
                message: e.to_string(),
            })?;
        for (name, value) in results {
            per_method.entry(name).or_default().push(value);
        }
    }
    let mut methods = Vec::with_capacity(per_method.len());
    for (method, values) in per_method {
        if values.len() != repetitions {
            return Err(EvalError::InvalidParameter(format!(
                "method {method} reported {} values for {repetitions} repetitions",
                values.len()
            )));
        }
        let mean = vector::mean(&values);
        let std = if values.len() > 1 {
            vector::std_dev(&values)
        } else {
            0.0
        };
        methods.push(MethodSummary {
            method,
            mean,
            std,
            values,
        });
    }
    Ok(RepeatedSummary {
        methods,
        repetitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_mean_and_std() {
        let summary = run_repeated::<String>(4, 100, |seed| {
            let v = (seed - 100) as f64;
            Ok(vec![("a".into(), v), ("b".into(), 10.0)])
        })
        .unwrap();
        assert_eq!(summary.repetitions, 4);
        let a = summary.get("a").unwrap();
        assert_eq!(a.values, vec![0.0, 1.0, 2.0, 3.0]);
        assert!((a.mean - 1.5).abs() < 1e-12);
        assert!((a.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let b = summary.get("b").unwrap();
        assert_eq!(b.std, 0.0);
        assert!(summary.get("missing").is_none());
    }

    #[test]
    fn propagates_failures_with_context() {
        let e = run_repeated(3, 0, |seed| {
            if seed == 1 {
                Err("boom".to_string())
            } else {
                Ok(vec![("a".into(), 1.0)])
            }
        })
        .unwrap_err();
        assert!(matches!(
            e,
            EvalError::RepetitionFailed { repetition: 1, .. }
        ));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn inconsistent_methods_rejected() {
        let e = run_repeated::<String>(2, 0, |seed| {
            if seed == 0 {
                Ok(vec![("a".into(), 1.0), ("b".into(), 2.0)])
            } else {
                Ok(vec![("a".into(), 1.0)])
            }
        })
        .unwrap_err();
        assert!(matches!(e, EvalError::InvalidParameter(_)));
    }

    #[test]
    fn zero_repetitions_rejected() {
        assert!(run_repeated::<String>(0, 0, |_| Ok(vec![])).is_err());
    }

    #[test]
    fn table_rendering() {
        let summary = run_repeated::<String>(2, 0, |_| {
            Ok(vec![("iforest".into(), 0.95), ("ocsvm".into(), 0.91)])
        })
        .unwrap();
        let table = summary.to_table("AUC");
        assert!(table.contains("iforest"));
        assert!(table.contains("0.9500"));
        assert!(table.contains("2 reps"));
    }

    #[test]
    fn single_repetition_has_zero_std() {
        let summary = run_repeated::<String>(1, 5, |_| Ok(vec![("m".into(), 0.5)])).unwrap();
        assert_eq!(summary.get("m").unwrap().std, 0.0);
    }
}
