//! # mfod-eval
//!
//! Evaluation machinery for the paper's experimental protocol (Sec. 4.1):
//!
//! * [`roc`] — ROC curves and the tie-aware Mann–Whitney AUC used as the
//!   headline metric of Fig. 3, plus precision@k / F1 utilities;
//! * [`cv`] — seeded k-fold cross-validation index generation (the paper
//!   tunes the OCSVM ν by 5-fold CV on the training set);
//! * [`runner`] — the repeated-split experiment runner that produces the
//!   "average and standard deviation AUC over 50 repetitions" aggregation
//!   of Fig. 3.
//!
//! The crate is deliberately detector-agnostic: it consumes plain score
//! vectors and boolean labels (`true` = outlier; scores oriented higher =
//! more outlying).

pub mod cv;
pub mod error;
pub mod roc;
pub mod runner;

pub use cv::KFold;
pub use error::EvalError;
pub use roc::{auc, roc_curve, RocPoint};
pub use runner::{run_repeated, MethodSummary, RepeatedSummary};

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, EvalError>;
