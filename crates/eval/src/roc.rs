//! ROC analysis: AUC (tie-aware Mann–Whitney), the full ROC curve, and
//! threshold metrics.

use crate::error::EvalError;
use crate::Result;
use mfod_linalg::vector;

fn validate(scores: &[f64], labels: &[bool]) -> Result<()> {
    if scores.len() != labels.len() {
        return Err(EvalError::LengthMismatch {
            scores: scores.len(),
            labels: labels.len(),
        });
    }
    if scores.iter().any(|v| v.is_nan()) {
        return Err(EvalError::NonFinite);
    }
    let pos = labels.iter().filter(|&&l| l).count();
    if pos == 0 || pos == labels.len() {
        return Err(EvalError::SingleClass);
    }
    Ok(())
}

/// Area under the ROC curve by the rank (Mann–Whitney U) formula with
/// average ranks for ties. `labels[i] = true` marks an outlier; higher
/// scores must indicate stronger outlyingness.
///
/// `AUC = (Σ ranks of positives − n₊(n₊+1)/2) / (n₊ n₋)`.
pub fn auc(scores: &[f64], labels: &[bool]) -> Result<f64> {
    validate(scores, labels)?;
    let ranks = vector::average_ranks(scores);
    let n_pos = labels.iter().filter(|&&l| l).count() as f64;
    let n_neg = labels.len() as f64 - n_pos;
    let rank_sum: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|&(_, &l)| l)
        .map(|(r, _)| r)
        .sum();
    Ok((rank_sum - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg))
}

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate.
    pub tpr: f64,
    /// Score threshold achieving this point (predict outlier when
    /// `score >= threshold`).
    pub threshold: f64,
}

/// The full ROC curve, from (0,0) (threshold +∞) to (1,1) (threshold −∞),
/// with one point per distinct score.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Result<Vec<RocPoint>> {
    validate(scores, labels)?;
    let n = scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a])); // descending
    let n_pos = labels.iter().filter(|&&l| l).count() as f64;
    let n_neg = n as f64 - n_pos;
    let mut curve = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f64::INFINITY,
    }];
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < n {
        // consume all samples tied at this score together
        let s = scores[order[i]];
        while i < n && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        curve.push(RocPoint {
            fpr: fp / n_neg,
            tpr: tp / n_pos,
            threshold: s,
        });
    }
    Ok(curve)
}

/// Trapezoidal area under a ROC curve — matches [`auc`] up to floating
/// point, provided the curve came from [`roc_curve`].
pub fn auc_from_curve(curve: &[RocPoint]) -> f64 {
    let mut area = 0.0;
    for w in curve.windows(2) {
        area += 0.5 * (w[1].tpr + w[0].tpr) * (w[1].fpr - w[0].fpr);
    }
    area
}

/// Precision among the `k` highest-scoring samples.
pub fn precision_at_k(scores: &[f64], labels: &[bool], k: usize) -> Result<f64> {
    validate(scores, labels)?;
    if k == 0 || k > scores.len() {
        return Err(EvalError::InvalidParameter(format!(
            "k must be in [1, n]; got {k} for n = {}",
            scores.len()
        )));
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let hits = order[..k].iter().filter(|&&i| labels[i]).count();
    Ok(hits as f64 / k as f64)
}

/// F1 score when predicting "outlier" for `score >= threshold`.
pub fn f1_at_threshold(scores: &[f64], labels: &[bool], threshold: f64) -> Result<f64> {
    validate(scores, labels)?;
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fnn = 0.0;
    for (&s, &l) in scores.iter().zip(labels) {
        let pred = s >= threshold;
        match (pred, l) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fnn += 1.0,
            (false, false) => {}
        }
    }
    if tp == 0.0 {
        return Ok(0.0);
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fnn);
    Ok(2.0 * precision * recall / (precision + recall))
}

/// The threshold maximizing F1, with its F1 value (scans every distinct
/// score as a candidate threshold).
pub fn best_f1(scores: &[f64], labels: &[bool]) -> Result<(f64, f64)> {
    validate(scores, labels)?;
    let mut best = (f64::INFINITY, 0.0);
    let mut distinct: Vec<f64> = scores.to_vec();
    distinct.sort_by(|a, b| a.total_cmp(b));
    distinct.dedup();
    for &t in &distinct {
        let f1 = f1_at_threshold(scores, labels, t)?;
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.1, 0.2, 0.3, 0.9, 0.95];
        let labels = [false, false, false, true, true];
        assert_eq!(auc(&scores, &labels).unwrap(), 1.0);
        // reversed scores: AUC 0
        let rev: Vec<f64> = scores.iter().map(|s| -s).collect();
        assert_eq!(auc(&rev, &labels).unwrap(), 0.0);
    }

    #[test]
    fn balanced_extremes_give_half() {
        // positives at ranks 1 and 4: rank sum 5 → AUC (5 − 3)/4 = 0.5
        let scores = [1.0, 2.0, 3.0, 4.0];
        let labels = [true, false, false, true];
        assert_eq!(auc(&scores, &labels).unwrap(), 0.5);
        // positives at ranks 2 and 4 → AUC 0.75
        let labels = [false, true, false, true];
        assert_eq!(auc(&scores, &labels).unwrap(), 0.75);
    }

    #[test]
    fn ties_are_averaged() {
        // all scores equal: AUC must be exactly 0.5
        let scores = [1.0; 6];
        let labels = [true, false, true, false, true, false];
        assert_eq!(auc(&scores, &labels).unwrap(), 0.5);
    }

    #[test]
    fn auc_invariant_under_monotone_transform() {
        let scores = [0.1, 0.5, 0.2, 0.9, 0.4, 0.7];
        let labels = [false, true, false, true, false, true];
        let a1 = auc(&scores, &labels).unwrap();
        let transformed: Vec<f64> = scores.iter().map(|s| (10.0 * s).exp()).collect();
        let a2 = auc(&transformed, &labels).unwrap();
        assert!((a1 - a2).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints_and_monotonicity() {
        let scores = [0.2, 0.8, 0.4, 0.6, 0.1, 0.9];
        let labels = [false, true, false, true, false, true];
        let curve = roc_curve(&scores, &labels).unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for w in curve.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn curve_area_matches_rank_auc() {
        let scores = [0.3, 0.1, 0.7, 0.5, 0.9, 0.2, 0.8, 0.4];
        let labels = [false, false, true, false, true, false, true, true];
        let a1 = auc(&scores, &labels).unwrap();
        let curve = roc_curve(&scores, &labels).unwrap();
        assert!((auc_from_curve(&curve) - a1).abs() < 1e-12);
    }

    #[test]
    fn curve_area_matches_rank_auc_with_ties() {
        let scores = [0.5, 0.5, 0.5, 0.9, 0.1, 0.9];
        let labels = [false, true, false, true, false, true];
        let a1 = auc(&scores, &labels).unwrap();
        let curve = roc_curve(&scores, &labels).unwrap();
        assert!((auc_from_curve(&curve) - a1).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            auc(&[1.0], &[true, false]),
            Err(EvalError::LengthMismatch { .. })
        ));
        assert!(matches!(
            auc(&[1.0, 2.0], &[true, true]),
            Err(EvalError::SingleClass)
        ));
        assert!(matches!(
            auc(&[f64::NAN, 2.0], &[true, false]),
            Err(EvalError::NonFinite)
        ));
    }

    #[test]
    fn precision_at_k_values() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [true, false, false, true];
        assert_eq!(precision_at_k(&scores, &labels, 1).unwrap(), 1.0);
        assert_eq!(precision_at_k(&scores, &labels, 2).unwrap(), 0.5);
        assert_eq!(precision_at_k(&scores, &labels, 4).unwrap(), 0.5);
        assert!(precision_at_k(&scores, &labels, 0).is_err());
        assert!(precision_at_k(&scores, &labels, 5).is_err());
    }

    #[test]
    fn f1_and_best_threshold() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        // threshold 0.5: perfect
        assert_eq!(f1_at_threshold(&scores, &labels, 0.5).unwrap(), 1.0);
        // threshold above everything: no predictions → 0
        assert_eq!(f1_at_threshold(&scores, &labels, 2.0).unwrap(), 0.0);
        let (t, f1) = best_f1(&scores, &labels).unwrap();
        assert_eq!(f1, 1.0);
        assert!(t > 0.2 && t <= 0.8);
    }
}
