//! Seeded k-fold cross-validation index generation and parallel per-fold
//! evaluation.

use crate::error::EvalError;
use crate::Result;
use mfod_linalg::par;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// K-fold splitter with a reproducible shuffle.
#[derive(Debug, Clone)]
pub struct KFold {
    /// Number of folds (>= 2).
    pub k: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl KFold {
    /// Creates a splitter with `k >= 2` folds.
    pub fn new(k: usize, seed: u64) -> Result<Self> {
        if k < 2 {
            return Err(EvalError::InvalidParameter(format!(
                "k must be >= 2, got {k}"
            )));
        }
        Ok(KFold { k, seed })
    }

    /// Produces `k` `(train_indices, validation_indices)` pairs partitioning
    /// `0..n`. Fold sizes differ by at most one.
    pub fn folds(&self, n: usize) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
        if n < self.k {
            return Err(EvalError::InvalidParameter(format!(
                "cannot split {n} samples into {} folds",
                self.k
            )));
        }
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let base = n / self.k;
        let extra = n % self.k;
        let mut folds = Vec::with_capacity(self.k);
        let mut start = 0;
        for f in 0..self.k {
            let size = base + usize::from(f < extra);
            let val: Vec<usize> = idx[start..start + size].to_vec();
            let train: Vec<usize> = idx[..start]
                .iter()
                .chain(&idx[start + size..])
                .copied()
                .collect();
            folds.push((train, val));
            start += size;
        }
        Ok(folds)
    }

    /// Splits `0..n` and evaluates `eval(fold_index, train, val)` on every
    /// fold across the **global worker pool**, returning the per-fold
    /// results in fold order. Folds are fitted/evaluated independently,
    /// so the output is bit-for-bit identical to the sequential loop at
    /// any thread count; the first failing fold (in fold order) reports.
    pub fn par_evaluate<T, E, F>(&self, n: usize, eval: F) -> std::result::Result<Vec<T>, E>
    where
        T: Send,
        E: Send + From<EvalError>,
        F: Fn(usize, &[usize], &[usize]) -> std::result::Result<T, E> + Sync,
    {
        let folds = self.folds(n).map_err(E::from)?;
        par_eval_folds(par::global(), &folds, eval)
    }
}

/// Evaluates `eval(fold_index, train, val)` over pre-computed `folds` on
/// an explicit worker pool, collecting results **in fold order** — the
/// parallel drop-in for `folds.iter().enumerate().map(…).collect()`.
/// Error selection is deterministic: the earliest failing fold wins,
/// exactly as in the sequential loop. Folds of unequal cost (they fit on
/// different training subsets) ride the pool's work-stealing scheduler,
/// so a cheap fold's thread steals the next one instead of idling behind
/// an expensive fold.
pub fn par_eval_folds<T, E, F>(
    pool: &par::Pool,
    folds: &[(Vec<usize>, Vec<usize>)],
    eval: F,
) -> std::result::Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &[usize], &[usize]) -> std::result::Result<T, E> + Sync,
{
    pool.try_map(folds.len(), |f| eval(f, &folds[f].0, &folds[f].1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_exactly() {
        let kf = KFold::new(5, 42).unwrap();
        let folds = kf.folds(23).unwrap();
        assert_eq!(folds.len(), 5);
        // validation sets partition 0..23
        let mut all: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // each (train, val) pair partitions as well
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            let mut merged: Vec<usize> = train.iter().chain(val).copied().collect();
            merged.sort_unstable();
            assert_eq!(merged, (0..23).collect::<Vec<_>>());
        }
        // fold sizes differ by at most 1
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KFold::new(3, 1).unwrap().folds(10).unwrap();
        let b = KFold::new(3, 1).unwrap().folds(10).unwrap();
        let c = KFold::new(3, 2).unwrap().folds(10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn validations() {
        assert!(KFold::new(1, 0).is_err());
        assert!(KFold::new(5, 0).unwrap().folds(3).is_err());
        assert!(KFold::new(2, 0).unwrap().folds(2).is_ok());
    }

    #[test]
    fn par_evaluate_matches_the_sequential_loop() {
        let kf = KFold::new(5, 11).unwrap();
        let n = 37;
        let folds = kf.folds(n).unwrap();
        let score = |f: usize, train: &[usize], val: &[usize]| -> f64 {
            let t: usize = train.iter().sum();
            let v: usize = val.iter().sum();
            (f as f64 + 1.0) * (t as f64).sqrt() - (v as f64).ln()
        };
        let sequential: Vec<f64> = folds
            .iter()
            .enumerate()
            .map(|(f, (tr, va))| score(f, tr, va))
            .collect();
        let pooled: Vec<f64> = kf
            .par_evaluate(n, |f, tr, va| Ok::<_, EvalError>(score(f, tr, va)))
            .unwrap();
        assert_eq!(
            sequential.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            pooled.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // explicit pools agree too
        for threads in [1usize, 4] {
            let pool = par::Pool::with_threads(threads);
            let on_pool: Vec<f64> = par_eval_folds(&pool, &folds, |f, tr, va| {
                Ok::<_, EvalError>(score(f, tr, va))
            })
            .unwrap();
            assert_eq!(sequential, on_pool, "threads={threads}");
        }
    }

    #[test]
    fn par_evaluate_reports_earliest_fold_error() {
        let kf = KFold::new(4, 3).unwrap();
        let err = kf
            .par_evaluate::<usize, EvalError, _>(20, |f, _, _| {
                if f >= 1 {
                    Err(EvalError::InvalidParameter(format!("fold {f}")))
                } else {
                    Ok(f)
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("fold 1"), "{err}");
        // a split failure surfaces through the same error type
        assert!(kf
            .par_evaluate::<usize, EvalError, _>(2, |f, _, _| Ok(f))
            .is_err());
    }
}
