//! Seeded k-fold cross-validation index generation.

use crate::error::EvalError;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// K-fold splitter with a reproducible shuffle.
#[derive(Debug, Clone)]
pub struct KFold {
    /// Number of folds (>= 2).
    pub k: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl KFold {
    /// Creates a splitter with `k >= 2` folds.
    pub fn new(k: usize, seed: u64) -> Result<Self> {
        if k < 2 {
            return Err(EvalError::InvalidParameter(format!(
                "k must be >= 2, got {k}"
            )));
        }
        Ok(KFold { k, seed })
    }

    /// Produces `k` `(train_indices, validation_indices)` pairs partitioning
    /// `0..n`. Fold sizes differ by at most one.
    pub fn folds(&self, n: usize) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
        if n < self.k {
            return Err(EvalError::InvalidParameter(format!(
                "cannot split {n} samples into {} folds",
                self.k
            )));
        }
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            idx.swap(i, j);
        }
        let base = n / self.k;
        let extra = n % self.k;
        let mut folds = Vec::with_capacity(self.k);
        let mut start = 0;
        for f in 0..self.k {
            let size = base + usize::from(f < extra);
            let val: Vec<usize> = idx[start..start + size].to_vec();
            let train: Vec<usize> = idx[..start]
                .iter()
                .chain(&idx[start + size..])
                .copied()
                .collect();
            folds.push((train, val));
            start += size;
        }
        Ok(folds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_exactly() {
        let kf = KFold::new(5, 42).unwrap();
        let folds = kf.folds(23).unwrap();
        assert_eq!(folds.len(), 5);
        // validation sets partition 0..23
        let mut all: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // each (train, val) pair partitions as well
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            let mut merged: Vec<usize> = train.iter().chain(val).copied().collect();
            merged.sort_unstable();
            assert_eq!(merged, (0..23).collect::<Vec<_>>());
        }
        // fold sizes differ by at most 1
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KFold::new(3, 1).unwrap().folds(10).unwrap();
        let b = KFold::new(3, 1).unwrap().folds(10).unwrap();
        let c = KFold::new(3, 2).unwrap().folds(10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn validations() {
        assert!(KFold::new(1, 0).is_err());
        assert!(KFold::new(5, 0).unwrap().folds(3).is_err());
        assert!(KFold::new(2, 0).unwrap().folds(2).is_ok());
    }
}
