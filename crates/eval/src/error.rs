//! Error type for evaluation utilities.

use std::fmt;

/// Errors produced by metric computation or experiment running.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Scores and labels disagree in length.
    LengthMismatch {
        /// Number of scores.
        scores: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A metric needs both classes present (AUC is undefined otherwise).
    SingleClass,
    /// Scores contain NaN (ordering undefined).
    NonFinite,
    /// A parameter is out of range.
    InvalidParameter(String),
    /// An experiment repetition failed; carries the repetition index and the
    /// stringified cause.
    RepetitionFailed {
        /// 0-based repetition index.
        repetition: usize,
        /// Cause description.
        message: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::LengthMismatch { scores, labels } => {
                write!(f, "length mismatch: {scores} scores vs {labels} labels")
            }
            EvalError::SingleClass => {
                write!(f, "metric undefined: only one class present in labels")
            }
            EvalError::NonFinite => write!(f, "scores contain NaN or infinite values"),
            EvalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            EvalError::RepetitionFailed {
                repetition,
                message,
            } => {
                write!(f, "repetition {repetition} failed: {message}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(EvalError::LengthMismatch {
            scores: 3,
            labels: 4
        }
        .to_string()
        .contains('4'));
        assert!(EvalError::SingleClass.to_string().contains("one class"));
        assert!(EvalError::NonFinite.to_string().contains("NaN"));
        assert!(EvalError::InvalidParameter("k".into())
            .to_string()
            .contains('k'));
        assert!(EvalError::RepetitionFailed {
            repetition: 3,
            message: "x".into()
        }
        .to_string()
        .contains('3'));
    }
}
