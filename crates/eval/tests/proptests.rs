//! Property-based tests for the evaluation utilities.

use mfod_eval::roc::{auc_from_curve, best_f1, f1_at_threshold, precision_at_k};
use mfod_eval::{auc, roc_curve, KFold};
use proptest::prelude::*;

/// Scores plus labels guaranteed to contain both classes.
fn scored_labels(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    (
        prop::collection::vec(-100.0..100.0f64, n),
        prop::collection::vec(any::<bool>(), n - 2),
    )
        .prop_map(|(scores, mut labels)| {
            labels.push(true);
            labels.push(false);
            (scores, labels)
        })
}

proptest! {
    #[test]
    fn auc_in_unit_interval((scores, labels) in scored_labels(12)) {
        let a = auc(&scores, &labels).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn auc_flips_under_negation((scores, labels) in scored_labels(10)) {
        let a = auc(&scores, &labels).unwrap();
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let b = auc(&neg, &labels).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-10, "{a} + {b} != 1");
    }

    #[test]
    fn auc_flips_under_label_swap((scores, labels) in scored_labels(10)) {
        let a = auc(&scores, &labels).unwrap();
        let swapped: Vec<bool> = labels.iter().map(|l| !l).collect();
        let b = auc(&scores, &swapped).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-10);
    }

    #[test]
    fn auc_invariant_under_monotone_map((scores, labels) in scored_labels(10)) {
        let a = auc(&scores, &labels).unwrap();
        let mapped: Vec<f64> = scores.iter().map(|s| (s * 0.01).tanh() * 3.0 + 7.0).collect();
        let b = auc(&mapped, &labels).unwrap();
        prop_assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn curve_area_equals_rank_auc((scores, labels) in scored_labels(14)) {
        let a = auc(&scores, &labels).unwrap();
        let curve = roc_curve(&scores, &labels).unwrap();
        prop_assert!((auc_from_curve(&curve) - a).abs() < 1e-10);
    }

    #[test]
    fn roc_curve_monotone((scores, labels) in scored_labels(12)) {
        let curve = roc_curve(&scores, &labels).unwrap();
        for w in curve.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr - 1e-12);
            prop_assert!(w[1].tpr >= w[0].tpr - 1e-12);
        }
        prop_assert_eq!(curve.first().map(|p| (p.fpr, p.tpr)), Some((0.0, 0.0)));
        prop_assert_eq!(curve.last().map(|p| (p.fpr, p.tpr)), Some((1.0, 1.0)));
    }

    #[test]
    fn precision_at_k_bounds((scores, labels) in scored_labels(10), k in 1usize..10) {
        let p = precision_at_k(&scores, &labels, k).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn best_f1_dominates_arbitrary_thresholds(
        (scores, labels) in scored_labels(10),
        t in -100.0..100.0f64,
    ) {
        let (_, best) = best_f1(&scores, &labels).unwrap();
        let any = f1_at_threshold(&scores, &labels, t).unwrap();
        prop_assert!(best + 1e-12 >= any, "best {best} < f1@{t} = {any}");
    }

    #[test]
    fn kfold_partitions(n in 6usize..60, k in 2usize..6, seed in 0u64..100) {
        prop_assume!(n >= k);
        let folds = KFold::new(k, seed).unwrap().folds(n).unwrap();
        let mut all: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), n);
            // disjoint
            let mut t = train.clone();
            t.extend(val);
            t.sort_unstable();
            t.dedup();
            prop_assert_eq!(t.len(), n);
        }
    }
}
