//! Property-based tests for the log-bucket histogram invariants: edge
//! monotonicity, count conservation under merge, quantile ordering, and
//! snapshot determinism for fixed event sequences.

use mfod_obs::{Histogram, HistogramSnapshot, HIST_BUCKETS};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<u64>> {
    // Mix tiny, mid-range and huge magnitudes so all bucket regions are
    // exercised (plain uniform u64 would almost never land below 2^32).
    prop::collection::vec(
        (0u32..64u32, 0u64..1024u64).prop_map(|(shift, off)| (1u64 << shift).wrapping_add(off)),
        0..200,
    )
}

fn snapshot_of(vals: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn count_equals_bucket_sum(vals in values()) {
        let s = snapshot_of(&vals);
        prop_assert_eq!(s.count, vals.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn max_and_sum_match_inputs(vals in values()) {
        let s = snapshot_of(&vals);
        prop_assert_eq!(s.max, vals.iter().copied().max().unwrap_or(0));
        let sum: u64 = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(s.sum, sum);
    }

    #[test]
    fn merge_conserves_counts(a in values(), b in values()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let m = sa.merge(&sb);
        prop_assert_eq!(m.count, sa.count + sb.count);
        prop_assert_eq!(m.buckets.iter().sum::<u64>(), m.count);
        for i in 0..HIST_BUCKETS {
            prop_assert_eq!(m.buckets[i], sa.buckets[i] + sb.buckets[i]);
        }
        prop_assert_eq!(m.max, sa.max.max(sb.max));
        // Merge is commutative.
        prop_assert_eq!(&m, &sb.merge(&sa));
    }

    #[test]
    fn quantiles_are_monotone_in_p(vals in values(), ps in prop::collection::vec(0.0f64..=1.0, 2..12)) {
        let s = snapshot_of(&vals);
        prop_assume!(s.count > 0);
        let mut sorted = ps.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = None;
        for p in sorted {
            let q = s.quantile(p).unwrap();
            if let Some(prev) = last {
                prop_assert!(q >= prev, "q({p}) = {q} < {prev}");
            }
            last = Some(q);
        }
    }

    #[test]
    fn quantile_upper_bounds_true_quantile(vals in values()) {
        prop_assume!(!vals.is_empty());
        let s = snapshot_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for &(p, _) in &[(0.5, ()), (0.95, ()), (0.99, ()), (1.0, ())] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let q = s.quantile(p).unwrap();
            prop_assert!(q >= truth, "q({p}) = {q} below true quantile {truth}");
            // The bucket edge over-estimates by at most 2x (log2 buckets).
            prop_assert!(q == 0 || q / 2 <= truth, "q({p}) = {q} more than 2x {truth}");
        }
    }

    #[test]
    fn snapshots_are_deterministic(vals in values()) {
        let a = snapshot_of(&vals);
        let b = snapshot_of(&vals);
        prop_assert_eq!(&a, &b);
        // Order-independence: bucket counts are a multiset property.
        let mut rev = vals.clone();
        rev.reverse();
        let c = snapshot_of(&rev);
        prop_assert_eq!(&a.buckets[..], &c.buckets[..]);
        prop_assert_eq!(a.count, c.count);
        prop_assert_eq!(a.max, c.max);
    }

    #[test]
    fn diff_of_prefix_recovers_suffix(vals in values(), split in 0usize..200) {
        let cut = split.min(vals.len());
        let early = snapshot_of(&vals[..cut]);
        let all = snapshot_of(&vals);
        let d = all.diff(&early);
        let suffix = snapshot_of(&vals[cut..]);
        prop_assert_eq!(d.count, suffix.count);
        prop_assert_eq!(&d.buckets[..], &suffix.buckets[..]);
    }
}
