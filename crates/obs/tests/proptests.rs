//! Property-based tests for the log-bucket histogram invariants (edge
//! monotonicity, count conservation under merge, quantile ordering,
//! snapshot determinism), the event journal (bounded memory, drop
//! conservation, paired span export) and the rotating windows (no
//! double-counting across slot boundaries).

use mfod_obs::{journal, Histogram, HistogramSnapshot, Recorder, HIST_BUCKETS};
use mfod_obs::{WindowedCounter, WindowedHistogram, WINDOW_SLOTS};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises proptest cases that touch the process-global journal and
/// recorder gate (cases from different `#[test]` fns interleave).
static GLOBAL: Mutex<()> = Mutex::new(());

fn global_locked() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    // Mix tiny, mid-range and huge magnitudes so all bucket regions are
    // exercised (plain uniform u64 would almost never land below 2^32).
    prop::collection::vec(
        (0u32..64u32, 0u64..1024u64).prop_map(|(shift, off)| (1u64 << shift).wrapping_add(off)),
        0..200,
    )
}

fn snapshot_of(vals: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn count_equals_bucket_sum(vals in values()) {
        let s = snapshot_of(&vals);
        prop_assert_eq!(s.count, vals.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn max_and_sum_match_inputs(vals in values()) {
        let s = snapshot_of(&vals);
        prop_assert_eq!(s.max, vals.iter().copied().max().unwrap_or(0));
        let sum: u64 = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(s.sum, sum);
    }

    #[test]
    fn merge_conserves_counts(a in values(), b in values()) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let m = sa.merge(&sb);
        prop_assert_eq!(m.count, sa.count + sb.count);
        prop_assert_eq!(m.buckets.iter().sum::<u64>(), m.count);
        for i in 0..HIST_BUCKETS {
            prop_assert_eq!(m.buckets[i], sa.buckets[i] + sb.buckets[i]);
        }
        prop_assert_eq!(m.max, sa.max.max(sb.max));
        // Merge is commutative.
        prop_assert_eq!(&m, &sb.merge(&sa));
    }

    #[test]
    fn quantiles_are_monotone_in_p(vals in values(), ps in prop::collection::vec(0.0f64..=1.0, 2..12)) {
        let s = snapshot_of(&vals);
        prop_assume!(s.count > 0);
        let mut sorted = ps.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = None;
        for p in sorted {
            let q = s.quantile(p).unwrap();
            if let Some(prev) = last {
                prop_assert!(q >= prev, "q({p}) = {q} < {prev}");
            }
            last = Some(q);
        }
    }

    #[test]
    fn quantile_upper_bounds_true_quantile(vals in values()) {
        prop_assume!(!vals.is_empty());
        let s = snapshot_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for &(p, _) in &[(0.5, ()), (0.95, ()), (0.99, ()), (1.0, ())] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let q = s.quantile(p).unwrap();
            prop_assert!(q >= truth, "q({p}) = {q} below true quantile {truth}");
            // The bucket edge over-estimates by at most 2x (log2 buckets).
            prop_assert!(q == 0 || q / 2 <= truth, "q({p}) = {q} more than 2x {truth}");
        }
    }

    #[test]
    fn snapshots_are_deterministic(vals in values()) {
        let a = snapshot_of(&vals);
        let b = snapshot_of(&vals);
        prop_assert_eq!(&a, &b);
        // Order-independence: bucket counts are a multiset property.
        let mut rev = vals.clone();
        rev.reverse();
        let c = snapshot_of(&rev);
        prop_assert_eq!(&a.buckets[..], &c.buckets[..]);
        prop_assert_eq!(a.count, c.count);
        prop_assert_eq!(a.max, c.max);
    }

    #[test]
    fn diff_of_prefix_recovers_suffix(vals in values(), split in 0usize..200) {
        let cut = split.min(vals.len());
        let early = snapshot_of(&vals[..cut]);
        let all = snapshot_of(&vals);
        let d = all.diff(&early);
        let suffix = snapshot_of(&vals[cut..]);
        prop_assert_eq!(d.count, suffix.count);
        prop_assert_eq!(&d.buckets[..], &suffix.buckets[..]);
    }
}

// ---------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------

/// A random journal operation: span begin/end over a small fixed name
/// set, or an instant event.
#[derive(Debug, Clone, Copy)]
enum Op {
    Begin(u32),
    End(u32),
    Instant,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u32..3, 0u32..4).prop_map(|(kind, name)| match kind {
            0 => Op::Begin(name),
            1 => Op::End(name),
            _ => Op::Instant,
        }),
        0..120,
    )
}

proptest! {
    #[test]
    fn journal_memory_is_bounded_and_counts_conserve(extra in 0u64..600) {
        let _g = global_locked();
        Recorder::install(true);
        journal::reset();
        let emitted = journal::RING_CAPACITY as u64 + extra;
        for _ in 0..emitted {
            journal::instant_id(journal::NAME_POOL_CHUNK);
        }
        let s = journal::stats();
        prop_assert_eq!(s.recorded, journal::RING_CAPACITY as u64);
        prop_assert_eq!(s.dropped, extra);
        prop_assert_eq!(s.recorded + s.dropped, s.emitted);
        prop_assert_eq!(s.emitted, emitted);
        journal::reset();
        Recorder::install(false);
    }

    #[test]
    fn exported_trace_has_only_paired_spans(seq in ops()) {
        let _g = global_locked();
        Recorder::install(true);
        journal::reset();
        for &op in &seq {
            match op {
                Op::Begin(n) => journal::span_begin(n),
                Op::End(n) => journal::span_end(n),
                Op::Instant => journal::instant_id(journal::NAME_POOL_CHUNK),
            }
        }
        let json = journal::chrome_trace_json();
        journal::reset();
        Recorder::install(false);

        // Replay the LIFO pairing the exporter promises: an End pairs
        // with the most recent open Begin iff the names match.
        let mut stack: Vec<u32> = Vec::new();
        let mut pairs = 0usize;
        let mut instants = 0usize;
        for &op in &seq {
            match op {
                Op::Begin(n) => stack.push(n),
                Op::End(n) => {
                    if let Some(top) = stack.pop() {
                        if top == n {
                            pairs += 1;
                        }
                    }
                }
                Op::Instant => instants += 1,
            }
        }
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        prop_assert_eq!(begins, ends, "unbalanced spans in {}", json);
        prop_assert_eq!(begins, pairs);
        prop_assert_eq!(json.matches("\"ph\":\"i\"").count(), instants);
    }
}

// ---------------------------------------------------------------------
// Rotating windows
// ---------------------------------------------------------------------

/// Monotone non-decreasing slot ids (wall clocks only move forward).
fn slot_ids() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..8, 0..300).prop_map(|increments| {
        let mut id = 0u64;
        increments
            .into_iter()
            .map(|d| {
                id += d;
                id
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn window_counter_never_double_counts_across_rotation(ids in slot_ids()) {
        prop_assume!(!ids.is_empty());
        let w = Box::new(WindowedCounter::new());
        for &id in &ids {
            w.add_at(id, 1);
        }
        let now = *ids.last().unwrap();
        let expected = ids
            .iter()
            .filter(|&&id| id + WINDOW_SLOTS as u64 > now)
            .count() as u64;
        prop_assert_eq!(w.sum_live(now), expected);
    }

    #[test]
    fn window_histogram_conserves_live_counts(ids in slot_ids(), v in 1u64..1_000_000) {
        prop_assume!(!ids.is_empty());
        let w = Box::new(WindowedHistogram::new());
        for &id in &ids {
            w.record_at(id, v);
        }
        let now = *ids.last().unwrap();
        let expected = ids
            .iter()
            .filter(|&&id| id + WINDOW_SLOTS as u64 > now)
            .count() as u64;
        let s = w.snapshot_live(now);
        prop_assert_eq!(s.count, expected);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), expected);
        if expected > 0 {
            prop_assert_eq!(s.max, v);
        }
    }
}
