//! A lock-free, bounded, per-thread event journal: span begin/end and
//! instant events with nanosecond timestamps on a process-wide epoch
//! clock, merged on demand into Chrome trace-event JSON.
//!
//! # Design
//!
//! Each thread owns one fixed-capacity ring of event slots. Only the
//! owning thread writes; a slot is published by a release store of the
//! ring's length, after which it is immutable (**keep-first-N**: when
//! the ring is full, later events are dropped and counted rather than
//! overwriting older ones). That makes reads trivially safe without
//! locks and gives the conservation law
//! `recorded + dropped == emitted` per ring.
//!
//! Keep-first-N also means the recorded events on a thread are a strict
//! time *prefix* of what was emitted: an `End` can only be present if
//! its `Begin` (which came earlier on the same thread) is present too.
//! Orphan `End`s are therefore impossible; orphan `Begin`s (whose `End`
//! was dropped) are excluded at export time by a per-thread stack walk,
//! so every span in the exported trace has a matched begin/end pair.
//!
//! All entry points gate on [`Recorder::enabled`], so a disabled
//! recorder pays one relaxed load and a predictable branch — the same
//! contract as the metric hooks.

use crate::recorder::Recorder;
use crate::span::Phase;
use std::cell::OnceCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events each thread-local ring can hold before dropping (and
/// counting) the overflow. 8192 events × 16 bytes ≈ 128 KiB per
/// recording thread, allocated lazily on that thread's first event.
pub const RING_CAPACITY: usize = 8192;

const KIND_BEGIN: u64 = 0;
const KIND_END: u64 = 1;
const KIND_INSTANT: u64 = 2;

/// Fixed name id for pool sub-chunk execution spans (phases use their
/// [`Phase::index`] as the id).
pub const NAME_POOL_CHUNK: u32 = 8;
/// First id handed out by the dynamic name interner.
const FIRST_DYNAMIC: u32 = 16;

/// What a journal event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in the trace).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`), e.g. a fault firing.
    Instant,
}

/// A decoded journal event (export/test view; the wire form is two
/// packed `u64` words).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Journal-assigned thread id (dense, starts at 1).
    pub tid: u64,
    /// Nanoseconds since the process epoch clock.
    pub ts_ns: u64,
    pub kind: EventKind,
    pub name: String,
}

/// Journal-wide drop accounting. Invariant (per ring, hence in total):
/// `recorded + dropped == emitted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Events sitting in rings, readable by the exporter.
    pub recorded: u64,
    /// Events discarded because their thread's ring was full.
    pub dropped: u64,
    /// Events offered to the journal while recording was enabled.
    pub emitted: u64,
    /// Threads that have recorded at least one event.
    pub threads: usize,
}

struct Slot {
    ts: AtomicU64,
    /// `kind << 32 | name_id`.
    tag: AtomicU64,
}

struct ThreadRing {
    tid: u64,
    slots: Vec<Slot>,
    /// Published event count; slots below it are immutable.
    len: AtomicUsize,
    dropped: AtomicU64,
    emitted: AtomicU64,
}

impl ThreadRing {
    fn new(tid: u64) -> ThreadRing {
        let mut slots = Vec::with_capacity(RING_CAPACITY);
        for _ in 0..RING_CAPACITY {
            slots.push(Slot {
                ts: AtomicU64::new(0),
                tag: AtomicU64::new(0),
            });
        }
        ThreadRing {
            tid,
            slots,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
        }
    }

    /// Single-writer push (only the owning thread calls this), so a
    /// plain load/store pair on `len` suffices; the release store
    /// publishes the freshly written slot.
    fn push(&self, ts: u64, kind: u64, name_id: u32) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[i];
        slot.ts.store(ts, Ordering::Relaxed);
        slot.tag
            .store(kind << 32 | u64::from(name_id), Ordering::Relaxed);
        self.len.store(i + 1, Ordering::Release);
    }

    fn events(&self) -> Vec<(u64, u64, u32)> {
        let len = self.len.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..len]
            .iter()
            .map(|s| {
                let tag = s.tag.load(Ordering::Relaxed);
                (
                    s.ts.load(Ordering::Relaxed),
                    tag >> 32,
                    (tag & u32::MAX as u64) as u32,
                )
            })
            .collect()
    }
}

static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NAMES: Mutex<Vec<String>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
}

/// Nanoseconds since the process epoch (the first clock read by the
/// journal or the windowed metrics; shared so both timelines agree).
#[inline]
pub(crate) fn epoch_nanos() -> u64 {
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

fn rings_locked() -> std::sync::MutexGuard<'static, Vec<Arc<ThreadRing>>> {
    RINGS.lock().unwrap_or_else(|e| e.into_inner())
}

fn names_locked() -> std::sync::MutexGuard<'static, Vec<String>> {
    NAMES.lock().unwrap_or_else(|e| e.into_inner())
}

fn push(kind: u64, name_id: u32) {
    let ts = epoch_nanos();
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
            rings_locked().push(Arc::clone(&ring));
            ring
        });
        ring.push(ts, kind, name_id);
    });
}

/// Interns `name`, returning a stable id usable with [`span_begin`],
/// [`span_end`] and [`instant_id`]. Takes a mutex and scans linearly —
/// intended for rare events or one-time setup, never per-item hot
/// paths.
pub fn intern(name: &str) -> u32 {
    let mut names = names_locked();
    if let Some(pos) = names.iter().position(|n| n == name) {
        return FIRST_DYNAMIC + pos as u32;
    }
    names.push(name.to_string());
    FIRST_DYNAMIC + (names.len() - 1) as u32
}

fn name_of(id: u32) -> String {
    if (id as usize) < Phase::COUNT {
        return Phase::ALL[id as usize].name().to_string();
    }
    if id == NAME_POOL_CHUNK {
        return "pool.chunk".to_string();
    }
    names_locked()
        .get((id - FIRST_DYNAMIC) as usize)
        .cloned()
        .unwrap_or_else(|| format!("name#{id}"))
}

/// Records a span-begin event for `name_id` (a [`Phase::index`],
/// [`NAME_POOL_CHUNK`], or an [`intern`]ed id). No-op when the
/// recorder is disabled.
#[inline]
pub fn span_begin(name_id: u32) {
    if Recorder::enabled() {
        push(KIND_BEGIN, name_id);
    }
}

/// Records the matching span-end event. Begin/end pairs must nest
/// (LIFO) per thread — RAII guards at the call sites guarantee this.
#[inline]
pub fn span_end(name_id: u32) {
    if Recorder::enabled() {
        push(KIND_END, name_id);
    }
}

/// Records an instant event under an already-interned id.
#[inline]
pub fn instant_id(name_id: u32) {
    if Recorder::enabled() {
        push(KIND_INSTANT, name_id);
    }
}

/// Records an instant event, interning `name` on the fly. Meant for
/// rare occurrences (fault firings, registry swaps, quarantines);
/// pre-intern with [`intern`] if a site could ever become hot.
#[inline]
pub fn instant(name: &str) {
    if Recorder::enabled() {
        push(KIND_INSTANT, intern(name));
    }
}

/// Current journal-wide drop accounting.
pub fn stats() -> JournalStats {
    let rings = rings_locked();
    let mut s = JournalStats::default();
    for ring in rings.iter() {
        let recorded = ring.len.load(Ordering::Acquire).min(ring.slots.len()) as u64;
        s.recorded += recorded;
        s.dropped += ring.dropped.load(Ordering::Relaxed);
        s.emitted += ring.emitted.load(Ordering::Relaxed);
        if ring.emitted.load(Ordering::Relaxed) > 0 {
            s.threads += 1;
        }
    }
    s
}

/// Clears every ring (test epochs). Not synchronised against
/// concurrent writers: a thread mid-push may land one event into the
/// cleared ring, which is fine for the test-serialised use this is
/// meant for.
pub fn reset() {
    for ring in rings_locked().iter() {
        ring.len.store(0, Ordering::Release);
        ring.dropped.store(0, Ordering::Relaxed);
        ring.emitted.store(0, Ordering::Relaxed);
    }
}

/// All recorded events, merged across threads (ordered by thread, then
/// recording order — timestamps are monotone per thread). Unpaired
/// begin events are *included* here; use [`chrome_trace_json`] for the
/// matched view.
pub fn events() -> Vec<JournalEvent> {
    let rings: Vec<Arc<ThreadRing>> = {
        let mut v: Vec<_> = rings_locked().iter().cloned().collect();
        v.sort_by_key(|r| r.tid);
        v
    };
    let mut out = Vec::new();
    for ring in rings {
        for (ts, kind, name_id) in ring.events() {
            out.push(JournalEvent {
                tid: ring.tid,
                ts_ns: ts,
                kind: match kind {
                    KIND_BEGIN => EventKind::Begin,
                    KIND_END => EventKind::End,
                    _ => EventKind::Instant,
                },
                name: name_of(name_id),
            });
        }
    }
    out
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialises the journal as Chrome trace-event JSON (the format
/// `chrome://tracing` / Perfetto open directly). Spans whose end was
/// dropped are excluded, so every emitted `"B"` has a matching `"E"`;
/// instant events are emitted with thread scope. Drop accounting is
/// attached under `otherData` (viewers ignore unknown top-level keys).
pub fn chrome_trace_json() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let rings: Vec<Arc<ThreadRing>> = {
        let mut v: Vec<_> = rings_locked().iter().cloned().collect();
        v.sort_by_key(|r| r.tid);
        v
    };
    for ring in &rings {
        let events = ring.events();
        // Per-thread LIFO walk: pair each End with the most recent open
        // Begin; keep only paired spans (plus all instants).
        let mut keep = vec![false; events.len()];
        let mut open: Vec<usize> = Vec::new();
        for (i, &(_, kind, name_id)) in events.iter().enumerate() {
            match kind {
                KIND_BEGIN => open.push(i),
                KIND_END => {
                    if let Some(b) = open.pop() {
                        if events[b].2 == name_id {
                            keep[b] = true;
                            keep[i] = true;
                        }
                    }
                }
                _ => keep[i] = true,
            }
        }
        for (i, &(ts, kind, name_id)) in events.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let ph = match kind {
                KIND_BEGIN => "B",
                KIND_END => "E",
                _ => "i",
            };
            out.push_str("\n{\"name\":\"");
            escape_json(&name_of(name_id), &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03}",
                ring.tid,
                ts / 1_000,
                ts % 1_000
            );
            if kind == KIND_INSTANT {
                out.push_str(",\"s\":\"t\"");
            }
            out.push('}');
        }
    }
    let s = stats();
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"recorded\":{},\"dropped\":{},\"emitted\":{}}}}}",
        s.recorded, s.dropped, s.emitted
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::locked;

    #[test]
    fn disabled_journal_records_nothing() {
        let _g = locked();
        Recorder::install(false);
        reset();
        span_begin(0);
        span_end(0);
        instant("never");
        let s = stats();
        assert_eq!((s.recorded, s.dropped, s.emitted), (0, 0, 0));
    }

    #[test]
    fn spans_and_instants_round_trip() {
        let _g = locked();
        Recorder::install(true);
        reset();
        span_begin(Phase::FitFeatures.index() as u32);
        instant("registry.swap");
        span_end(Phase::FitFeatures.index() as u32);
        let evs = events();
        let mine: Vec<_> = evs
            .iter()
            .filter(|e| e.name == "fit-features" || e.name == "registry.swap")
            .collect();
        assert_eq!(mine.len(), 3);
        assert_eq!(mine[0].kind, EventKind::Begin);
        assert_eq!(mine[1].kind, EventKind::Instant);
        assert_eq!(mine[2].kind, EventKind::End);
        assert!(mine[0].ts_ns <= mine[1].ts_ns && mine[1].ts_ns <= mine[2].ts_ns);
        reset();
        Recorder::install(false);
    }

    #[test]
    fn ring_is_bounded_and_conserves_counts() {
        let _g = locked();
        Recorder::install(true);
        reset();
        let extra = 100u64;
        for _ in 0..RING_CAPACITY as u64 + extra {
            instant_id(NAME_POOL_CHUNK);
        }
        let s = stats();
        assert_eq!(s.recorded, RING_CAPACITY as u64);
        assert_eq!(s.dropped, extra);
        assert_eq!(s.recorded + s.dropped, s.emitted);
        reset();
        Recorder::install(false);
    }

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let a = intern("some.point");
        let b = intern("some.point");
        let c = intern("other.point");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(name_of(a), "some.point");
        assert_eq!(
            name_of(Phase::ScoreDetector.index() as u32),
            "score-detector"
        );
        assert_eq!(name_of(NAME_POOL_CHUNK), "pool.chunk");
    }

    #[test]
    fn trace_export_drops_unmatched_begins() {
        let _g = locked();
        Recorder::install(true);
        reset();
        span_begin(0);
        span_begin(1);
        span_end(1);
        // span 0 never ends: it must not appear in the export
        let json = chrome_trace_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert!(json.contains("\"name\":\"fit-detector\""));
        assert!(!json.contains("\"name\":\"fit-features\""));
        reset();
        Recorder::install(false);
    }
}
