//! Lock-free metric primitives: counters, gauges, log₂-bucketed
//! histograms, and their plain-data snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i ∈ 1..=64` holds values with bit length `i`, i.e.
/// `2^(i-1) <= v < 2^i`.
pub const HIST_BUCKETS: usize = 65;

/// A monotone lock-free event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Fresh zeroed counter (const so it can live in a `static`).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and report epochs).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins lock-free gauge (e.g. the active model generation).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Fresh zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Replaces the gauge value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `v` to the gauge (e.g. bytes mapped in).
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Subtracts `v`, saturating at zero under concurrent mixes (e.g.
    /// bytes unmapped; a reset racing a release must not wrap).
    #[inline]
    pub fn sub(&self, v: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(v))
            });
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A lock-free histogram over `u64` values (typically nanoseconds) with
/// fixed log₂ bucket boundaries, so snapshots of a fixed value sequence
/// are deterministic. Concurrent recording is safe; cross-field
/// atomicity is not promised (monitoring-grade, like `StreamStats`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for `v == 0`, otherwise the bit length of
/// `v` (1..=64).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper edge of bucket `i`: the largest value that lands in
/// it. Quantiles report this edge, so they upper-bound the true
/// quantile by construction.
#[inline]
pub(crate) fn bucket_upper_edge(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Fresh empty histogram (const so it can live in a `static`).
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`,
    /// ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Copies the histogram into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, slot) in buckets.iter_mut().zip(&self.buckets) {
            *b = slot.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Resets every bucket and aggregate to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Plain-data copy of a [`Histogram`]: diffable, mergeable, and the unit
/// of quantile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (same unit as recorded, typically ns).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)` (bucket 0
    /// holds exactly the value 0).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean recorded value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper-bound quantile: the inclusive upper edge of the bucket in
    /// which the `ceil(p·count)`-th smallest value falls. `None` when
    /// empty; `p` is clamped to `[0, 1]`. Monotone in `p` by
    /// construction (the cumulative walk never moves backwards).
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return Some(bucket_upper_edge(i));
            }
        }
        // Unreachable when count == Σ buckets; tolerate torn concurrent
        // snapshots by falling back to the last non-empty bucket edge.
        Some(bucket_upper_edge(
            self.buckets.iter().rposition(|&b| b > 0).unwrap_or(0),
        ))
    }

    /// Convenience: `quantile(p)` as a [`Duration`] for nanosecond
    /// histograms.
    pub fn quantile_duration(&self, p: f64) -> Option<Duration> {
        self.quantile(p).map(Duration::from_nanos)
    }

    /// Pointwise sum of two snapshots (counts conserve: the merged
    /// `count`/`buckets` are the saturating element-wise sums).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&other.buckets))
        {
            *out = a.saturating_add(*b);
        }
        HistogramSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// What happened since `earlier`: saturating element-wise
    /// subtraction (the `max` keeps the later value — maxima are not
    /// decomposable).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *out = a.saturating_sub(*b);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_add_sub_tracks_a_level_and_saturates() {
        let g = Gauge::new();
        g.add(4_096);
        g.add(1_024);
        assert_eq!(g.get(), 5_120);
        g.sub(1_024);
        assert_eq!(g.get(), 4_096);
        // releases racing a reset must clamp at zero, never wrap
        g.sub(1 << 40);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_edges_are_strictly_monotone() {
        for i in 1..HIST_BUCKETS {
            assert!(bucket_upper_edge(i - 1) < bucket_upper_edge(i), "edge {i}");
        }
        assert_eq!(bucket_upper_edge(64), u64::MAX);
    }

    #[test]
    fn record_and_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1012);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
        assert_eq!(s.mean(), Some(1012.0 / 5.0));
        // 1000 has bit length 10 → bucket 10, upper edge 1023.
        assert_eq!(s.quantile(1.0), Some(1023));
        assert_eq!(s.quantile(0.0), Some(0));
    }

    #[test]
    fn quantile_is_upper_bound_and_monotone() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let q = s.quantile(p).unwrap();
            assert!(q >= last, "q({p}) = {q} < {last}");
            last = q;
        }
        // True p50 of 1..=100 is 50 → bucket 6 edge 63.
        assert_eq!(s.quantile(0.5), Some(63));
        assert!(s.quantile(0.5).unwrap() >= 50);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn merge_conserves_counts() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 1 << 40] {
            b.record(v);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.buckets.iter().sum::<u64>(), 5);
        assert_eq!(m.max, 1 << 40);
        assert_eq!(m.sum, 1 + 5 + 9 + 2 + (1 << 40));
    }

    #[test]
    fn diff_inverts_accumulation() {
        let h = Histogram::new();
        h.record(7);
        let early = h.snapshot();
        h.record(70);
        h.record(700);
        let late = h.snapshot();
        let d = late.diff(&early);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 770);
        assert_eq!(d.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.max, 3999);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(41);
        g.set(42);
        assert_eq!(g.get(), 42);
    }
}
