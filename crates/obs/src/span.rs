//! Lightweight span timers: a thread-local span stack that attributes
//! *exclusive* wall time (total minus time spent in child spans) to a
//! fixed set of pipeline phases.

use crate::recorder::Recorder;
use std::cell::RefCell;
use std::time::Instant;

/// The instrumented pipeline phases. A fixed enum keeps span recording
/// allocation-free and the snapshot layout stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Fit-time feature construction: smoothing, basis selection and
    /// geometric mapping fan-out over the training samples.
    FitFeatures,
    /// Fitting the outlier detector on the assembled feature matrix.
    FitDetector,
    /// Score-time feature construction (smoothing + mapping of incoming
    /// samples).
    ScoreFeatures,
    /// Scoring the assembled features with the fitted detector.
    ScoreDetector,
}

impl Phase {
    /// Number of phases (length of the per-phase histogram array).
    pub const COUNT: usize = 4;

    /// All phases in snapshot order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::FitFeatures,
        Phase::FitDetector,
        Phase::ScoreFeatures,
        Phase::ScoreDetector,
    ];

    /// Stable snapshot/report name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::FitFeatures => "fit-features",
            Phase::FitDetector => "fit-detector",
            Phase::ScoreFeatures => "score-features",
            Phase::ScoreDetector => "score-detector",
        }
    }

    /// Slot index into [`crate::Metrics::phases`] (and
    /// `MetricsSnapshot::phases`), in [`Phase::ALL`] order.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

struct SpanFrame {
    /// Nanoseconds spent in already-finished child spans, subtracted
    /// from this span's total to get its exclusive time.
    child_nanos: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<SpanFrame>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span: created with [`SpanTimer::start`], it records the
/// phase's *exclusive* elapsed time into the global recorder when
/// dropped. When the recorder is disabled, `start` touches no clock and
/// `drop` is a no-op — the guard is just a `None`.
///
/// Spans must nest (LIFO), which scoped guards guarantee; the stack is
/// per thread, so spans on pool workers don't interleave with the
/// caller's.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct SpanTimer {
    armed: Option<(Phase, Instant)>,
}

impl SpanTimer {
    /// Opens a span for `phase` if the recorder is enabled.
    #[inline]
    pub fn start(phase: Phase) -> SpanTimer {
        if !Recorder::enabled() {
            return SpanTimer { armed: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(SpanFrame { child_nanos: 0 }));
        crate::journal::span_begin(phase.index() as u32);
        SpanTimer {
            armed: Some((phase, Instant::now())),
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some((phase, started)) = self.armed.take() else {
            return;
        };
        // The journal gets the *total* span interval (begin..end, what a
        // trace viewer nests visually); the histogram below still gets
        // the exclusive time, exactly as before the journal existed.
        crate::journal::span_end(phase.index() as u32);
        let total = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let child = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().map(|f| f.child_nanos).unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                parent.child_nanos = parent.child_nanos.saturating_add(total);
            }
            child
        });
        Recorder::metrics().phases[phase.index()].record(total.saturating_sub(child));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_and_order_are_stable() {
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::FitFeatures.name(), "fit-features");
        assert_eq!(Phase::ScoreDetector.name(), "score-detector");
    }

    #[test]
    fn disabled_span_is_inert() {
        // Runs without the global test lock: a disabled span touches
        // neither the stack nor the metrics.
        let before = SPAN_STACK.with(|s| s.borrow().len());
        {
            let _span = SpanTimer {
                armed: None, // simulate Recorder disabled
            };
        }
        assert_eq!(SPAN_STACK.with(|s| s.borrow().len()), before);
    }
}
