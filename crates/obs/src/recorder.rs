//! The process-wide recorder: one static bundle of named metric slots,
//! an enable gate resolved from `MFOD_OBS`, ordered snapshots with
//! `diff`, a hand-rolled JSON dump, a human-readable report, a Chrome
//! trace export of the event journal, and a scrape endpoint.

use crate::http::HttpHandle;
use crate::journal;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::span::Phase;
use crate::window::{self, WindowedCounter, WindowedHistogram};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

/// Environment variable that enables the recorder when set to `1`.
pub const ENV_OBS: &str = "MFOD_OBS";
/// Environment variable naming the JSON dump path used by
/// [`json_dump_guard`] and honoured by [`Recorder::dump_json_to_env`].
pub const ENV_OBS_JSON: &str = "MFOD_OBS_JSON";
/// Environment variable naming the Chrome trace-event JSON path used by
/// [`json_dump_guard`] and honoured by [`Recorder::dump_trace_to_env`].
pub const ENV_OBS_TRACE: &str = "MFOD_OBS_TRACE";

/// Per-phase histogram array (exclusive nanoseconds per span).
pub type PhaseSlots = [Histogram; Phase::COUNT];

/// Every metric slot the workspace records into, grouped by subsystem.
/// All slots are const-initialised so the whole bundle lives in one
/// `static` with zero startup cost.
#[derive(Debug)]
pub struct Metrics {
    // -- mfod_linalg::par::Pool ---------------------------------------
    /// Parallel map operations issued.
    pub pool_maps: Counter,
    /// Sub-chunks handed to the shared injector (excludes the chunk the
    /// caller runs inline).
    pub pool_chunks_queued: Counter,
    /// Queued sub-chunks the *caller* stole back while helping.
    pub pool_caller_steals: Counter,
    /// Queued sub-chunks executed by pool workers.
    pub pool_worker_runs: Counter,
    /// Nanoseconds a sub-chunk waited between injection and execution.
    pub pool_queue_wait: Histogram,
    /// Nanoseconds a sub-chunk spent executing.
    pub pool_chunk_run: Histogram,

    // -- SelectionPlan cache (mfod_fda) -------------------------------
    /// Plan-cache lookups that reused a cached plan.
    pub plan_cache_hits: Counter,
    /// Plan-cache lookups that had to build a plan.
    pub plan_cache_misses: Counter,
    /// Plans evicted by the LRU capacity bound.
    pub plan_cache_evictions: Counter,
    /// Nanoseconds spent building selection plans (misses only).
    pub plan_build: Histogram,

    // -- MicroBatcher / OnlineScorer (mfod_stream) --------------------
    /// Micro-batches flushed because the batch filled up.
    pub stream_flush_full: Counter,
    /// Micro-batches flushed because `max_delay` expired.
    pub stream_flush_expired: Counter,
    /// Micro-batches flushed by an explicit `finish`.
    pub stream_flush_manual: Counter,
    /// Pending windows dropped (drained unscored) via `take_pending`.
    pub stream_window_drops: Counter,
    /// Nanoseconds from the oldest pending window's arrival to its
    /// flush (batch assembly latency).
    pub stream_batch_assembly: Histogram,
    /// Nanoseconds spent scoring one micro-batch end to end.
    pub stream_batch_score: Histogram,

    // -- ModelRegistry / watch_dir (mfod_persist) ---------------------
    /// Successful model swaps (`install_*`).
    pub registry_swaps: Counter,
    /// Generation of the most recently installed model.
    pub registry_generation: Gauge,
    /// Directory sweeps executed (`load_dir`).
    pub registry_sweeps: Counter,
    /// Snapshot files rejected across sweeps.
    pub registry_rejected: Counter,
    /// Files skipped as byte-identical to the active model.
    pub registry_unchanged: Counter,
    /// Nanoseconds per directory sweep.
    pub registry_sweep_time: Histogram,
    /// Nanoseconds per model install (`install_bytes`/`install_mapped`:
    /// validate + decode + swap, excluding file discovery).
    pub registry_install_time: Histogram,

    // -- Snapshot decode tiers (mfod_persist) -------------------------
    /// Sections decoded through the eager owned tier.
    pub persist_sections_eager: Counter,
    /// Sections decoded lazily on first touch.
    pub persist_sections_lazy: Counter,
    /// Nanoseconds per lazy first-touch section decode.
    pub persist_first_touch: Histogram,
    /// Bytes currently memory-mapped (or owner-pinned) by snapshot
    /// buffers: `add` on map, `sub` on release.
    pub persist_mapped_bytes: Gauge,

    // -- Failure semantics (mfod-stream / mfod-persist) ---------------
    /// Typed errors surfaced by the serving path: failed or injected
    /// flushes, deadline misses, overload rejections, quarantines.
    pub errors_total: Counter,
    /// Windows shed by the overload policy (rejected or dropped-oldest).
    pub sheds_total: Counter,
    /// Micro-batch flushes that exceeded their scoring deadline.
    pub deadline_misses: Counter,
    /// Sessions whose pending windows were quarantined after repeated
    /// flush failures.
    pub quarantined_sessions: Counter,
    /// Current watcher backoff level (0 when the last sweep succeeded).
    pub registry_backoff: Gauge,

    // -- Crash-consistent model store (mfod-persist) ------------------
    /// Generations promoted through the transactional protocol.
    pub store_promotions: Counter,
    /// Store opens that ran the log-replay recovery path.
    pub store_recoveries: Counter,
    /// Rollback calls that re-pointed the active generation.
    pub store_rollbacks: Counter,
    /// Artifacts moved into `quarantine/` (torn, uncommitted, orphaned
    /// or damaged — moved, never deleted).
    pub store_quarantined: Counter,
    /// Issues reported by fsck walks (0 adds on clean walks).
    pub store_fsck_issues: Counter,

    // -- Windowed telemetry (rates and rolling distributions) ---------
    /// Windows scored per rolling window (→ windows/sec).
    pub win_stream_windows: WindowedCounter,
    /// Model swaps per rolling window (→ swaps/min).
    pub win_registry_swaps: WindowedCounter,
    /// Snapshot files rejected by directory sweeps per rolling window
    /// (→ rejections/min) — the feed behind quarantine decisions.
    pub win_registry_rejected: WindowedCounter,
    /// Windows shed per rolling window (→ sheds/sec).
    pub win_sheds: WindowedCounter,
    /// Serving errors per rolling window (→ errors/sec).
    pub win_errors: WindowedCounter,
    /// Rolling micro-batch scoring latency (ns; rolling p50/p95/p99).
    pub win_batch_score: WindowedHistogram,
    /// Rolling outlier-score distribution sketch in nanoscore units
    /// (see [`crate::window::quantize_score`]) — the drift-monitor
    /// substrate.
    pub win_score_dist: WindowedHistogram,

    // -- Pipeline phases (mfod) ---------------------------------------
    /// Exclusive nanoseconds per pipeline phase, indexed by
    /// [`Phase::index`].
    pub phases: PhaseSlots,
}

impl Metrics {
    const fn new() -> Self {
        Metrics {
            pool_maps: Counter::new(),
            pool_chunks_queued: Counter::new(),
            pool_caller_steals: Counter::new(),
            pool_worker_runs: Counter::new(),
            pool_queue_wait: Histogram::new(),
            pool_chunk_run: Histogram::new(),
            plan_cache_hits: Counter::new(),
            plan_cache_misses: Counter::new(),
            plan_cache_evictions: Counter::new(),
            plan_build: Histogram::new(),
            stream_flush_full: Counter::new(),
            stream_flush_expired: Counter::new(),
            stream_flush_manual: Counter::new(),
            stream_window_drops: Counter::new(),
            stream_batch_assembly: Histogram::new(),
            stream_batch_score: Histogram::new(),
            registry_swaps: Counter::new(),
            registry_generation: Gauge::new(),
            registry_sweeps: Counter::new(),
            registry_rejected: Counter::new(),
            registry_unchanged: Counter::new(),
            registry_sweep_time: Histogram::new(),
            registry_install_time: Histogram::new(),
            persist_sections_eager: Counter::new(),
            persist_sections_lazy: Counter::new(),
            persist_first_touch: Histogram::new(),
            persist_mapped_bytes: Gauge::new(),
            errors_total: Counter::new(),
            sheds_total: Counter::new(),
            deadline_misses: Counter::new(),
            quarantined_sessions: Counter::new(),
            registry_backoff: Gauge::new(),
            store_promotions: Counter::new(),
            store_recoveries: Counter::new(),
            store_rollbacks: Counter::new(),
            store_quarantined: Counter::new(),
            store_fsck_issues: Counter::new(),
            win_stream_windows: WindowedCounter::new(),
            win_registry_swaps: WindowedCounter::new(),
            win_registry_rejected: WindowedCounter::new(),
            win_sheds: WindowedCounter::new(),
            win_errors: WindowedCounter::new(),
            win_batch_score: WindowedHistogram::new(),
            win_score_dist: WindowedHistogram::new(),
            phases: [const { Histogram::new() }; Phase::COUNT],
        }
    }

    fn reset(&self) {
        self.pool_maps.reset();
        self.pool_chunks_queued.reset();
        self.pool_caller_steals.reset();
        self.pool_worker_runs.reset();
        self.pool_queue_wait.reset();
        self.pool_chunk_run.reset();
        self.plan_cache_hits.reset();
        self.plan_cache_misses.reset();
        self.plan_cache_evictions.reset();
        self.plan_build.reset();
        self.stream_flush_full.reset();
        self.stream_flush_expired.reset();
        self.stream_flush_manual.reset();
        self.stream_window_drops.reset();
        self.stream_batch_assembly.reset();
        self.stream_batch_score.reset();
        self.registry_swaps.reset();
        self.registry_generation.reset();
        self.registry_sweeps.reset();
        self.registry_rejected.reset();
        self.registry_unchanged.reset();
        self.registry_sweep_time.reset();
        self.registry_install_time.reset();
        self.persist_sections_eager.reset();
        self.persist_sections_lazy.reset();
        self.persist_first_touch.reset();
        self.persist_mapped_bytes.reset();
        self.errors_total.reset();
        self.sheds_total.reset();
        self.deadline_misses.reset();
        self.quarantined_sessions.reset();
        self.registry_backoff.reset();
        self.store_promotions.reset();
        self.store_recoveries.reset();
        self.store_rollbacks.reset();
        self.store_quarantined.reset();
        self.store_fsck_issues.reset();
        self.win_stream_windows.reset();
        self.win_registry_swaps.reset();
        self.win_registry_rejected.reset();
        self.win_sheds.reset();
        self.win_errors.reset();
        self.win_batch_score.reset();
        self.win_score_dist.reset();
        for h in &self.phases {
            h.reset();
        }
    }
}

static METRICS: Metrics = Metrics::new();

const GATE_UNSET: u8 = 0;
const GATE_ON: u8 = 1;
const GATE_OFF: u8 = 2;

static GATE: AtomicU8 = AtomicU8::new(GATE_UNSET);

/// The process-wide recorder facade. All state is static; the type only
/// namespaces the API.
#[derive(Debug)]
pub struct Recorder;

impl Recorder {
    /// Whether recording is enabled. The first call resolves
    /// [`ENV_OBS`] (`MFOD_OBS=1`); afterwards this is a single relaxed
    /// load plus a predictable branch — the entire disabled-path cost.
    #[inline]
    pub fn enabled() -> bool {
        match GATE.load(Ordering::Relaxed) {
            GATE_ON => true,
            GATE_OFF => false,
            _ => {
                let on = std::env::var(ENV_OBS).is_ok_and(|v| v == "1");
                GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
                on
            }
        }
    }

    /// Forces the gate on or off, overriding the environment. Tests use
    /// this to toggle recording at runtime (e.g. the bit-parity and
    /// overhead checks).
    pub fn install(enabled: bool) {
        GATE.store(if enabled { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    }

    /// Unconditional access to the metric slots (reads, tests, span
    /// recording). Hot paths should gate through [`active`] instead.
    #[inline]
    pub fn metrics() -> &'static Metrics {
        &METRICS
    }

    /// Zeroes every metric slot. Snapshots taken before a reset are
    /// unaffected (they are plain copies).
    pub fn reset() {
        METRICS.reset();
    }

    /// Copies every slot into an ordered, diffable snapshot.
    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot::capture(&METRICS)
    }

    /// Writes the current snapshot as JSON to `path`.
    pub fn dump_json(path: &Path) -> std::io::Result<()> {
        std::fs::write(path, Self::snapshot().to_json())
    }

    /// Writes the current snapshot to the path named by
    /// [`ENV_OBS_JSON`], if set. Returns the path written.
    pub fn dump_json_to_env() -> std::io::Result<Option<PathBuf>> {
        match std::env::var_os(ENV_OBS_JSON) {
            Some(p) if !p.is_empty() => {
                let path = PathBuf::from(p);
                Self::dump_json(&path)?;
                Ok(Some(path))
            }
            _ => Ok(None),
        }
    }

    /// Writes the merged event journal as Chrome trace-event JSON to
    /// `path` (open it in `chrome://tracing` or Perfetto).
    pub fn dump_trace(path: &Path) -> std::io::Result<()> {
        std::fs::write(path, journal::chrome_trace_json())
    }

    /// Writes the Chrome trace to the path named by [`ENV_OBS_TRACE`],
    /// if set. Returns the path written.
    pub fn dump_trace_to_env() -> std::io::Result<Option<PathBuf>> {
        match std::env::var_os(ENV_OBS_TRACE) {
            Some(p) if !p.is_empty() => {
                let path = PathBuf::from(p);
                Self::dump_trace(&path)?;
                Ok(Some(path))
            }
            _ => Ok(None),
        }
    }

    /// Starts the scrape endpoint on `addr` (e.g. `127.0.0.1:9464`, or
    /// port 0 for an ephemeral port). The returned handle stops the
    /// server when dropped; see [`HttpHandle::addr`] for the bound
    /// address.
    pub fn serve(addr: &str) -> std::io::Result<HttpHandle> {
        crate::http::serve(addr)
    }

    /// Starts the scrape endpoint on the address named by
    /// [`crate::ENV_OBS_HTTP`], if set.
    pub fn serve_from_env() -> std::io::Result<Option<HttpHandle>> {
        match std::env::var(crate::http::ENV_OBS_HTTP) {
            Ok(addr) if !addr.is_empty() => Self::serve(&addr).map(Some),
            _ => Ok(None),
        }
    }
}

/// Gate for hot-path instrumentation: `Some(&Metrics)` only when the
/// recorder is enabled, so disabled call sites cost one load + branch
/// and never construct an `Instant`.
///
/// ```
/// if let Some(obs) = mfod_obs::active() {
///     obs.pool_maps.add(1);
/// }
/// ```
#[inline]
pub fn active() -> Option<&'static Metrics> {
    Recorder::enabled().then_some(&METRICS)
}

/// RAII guard returned by [`json_dump_guard`]: on drop, writes the
/// final snapshot to the [`ENV_OBS_JSON`] path and the Chrome trace to
/// the [`ENV_OBS_TRACE`] path (when set). Dump errors are reported on
/// stderr but never panic — telemetry must not take down a shutdown
/// path, yet a silently missing dump is a debugging dead end.
#[derive(Debug)]
pub struct JsonDumpGuard(());

impl Drop for JsonDumpGuard {
    fn drop(&mut self) {
        if let Err(e) = Recorder::dump_json_to_env() {
            eprintln!("mfod-obs: failed to write {ENV_OBS_JSON} metrics dump: {e}");
        }
        if let Err(e) = Recorder::dump_trace_to_env() {
            eprintln!("mfod-obs: failed to write {ENV_OBS_TRACE} trace dump: {e}");
        }
    }
}

/// Creates a guard that dumps the metrics JSON on drop (typically held
/// for the lifetime of `main`).
pub fn json_dump_guard() -> JsonDumpGuard {
    JsonDumpGuard(())
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// Pool metric snapshot (see the matching [`Metrics`] fields).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    pub maps: u64,
    pub chunks_queued: u64,
    pub caller_steals: u64,
    pub worker_runs: u64,
    pub queue_wait: HistogramSnapshot,
    pub chunk_run: HistogramSnapshot,
}

impl PoolSnapshot {
    /// Fraction of queued sub-chunks the caller stole back (`None`
    /// until something was queued).
    pub fn caller_steal_share(&self) -> Option<f64> {
        (self.chunks_queued > 0).then(|| self.caller_steals as f64 / self.chunks_queued as f64)
    }
}

/// Selection-plan cache snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanCacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub build: HistogramSnapshot,
}

impl PlanCacheSnapshot {
    /// Hit rate over all lookups (`None` before the first lookup).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Streaming micro-batcher snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreamObsSnapshot {
    pub flush_full: u64,
    pub flush_expired: u64,
    pub flush_manual: u64,
    pub window_drops: u64,
    pub batch_assembly: HistogramSnapshot,
    pub batch_score: HistogramSnapshot,
}

/// Model-registry snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    pub swaps: u64,
    pub generation: u64,
    pub sweeps: u64,
    pub rejected: u64,
    pub unchanged: u64,
    pub sweep_time: HistogramSnapshot,
    pub install_time: HistogramSnapshot,
}

/// Snapshot-decode-tier snapshot (`mfod-persist`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PersistSnapshot {
    pub sections_eager: u64,
    pub sections_lazy: u64,
    pub first_touch: HistogramSnapshot,
    pub mapped_bytes: u64,
}

impl PersistSnapshot {
    /// Share of section decodes deferred to first touch (`None` until a
    /// section was decoded through either tier).
    pub fn lazy_share(&self) -> Option<f64> {
        let total = self.sections_eager + self.sections_lazy;
        (total > 0).then(|| self.sections_lazy as f64 / total as f64)
    }
}

/// Failure-semantics snapshot: the graceful-degradation counters and the
/// watcher backoff level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureSnapshot {
    pub errors: u64,
    pub sheds: u64,
    pub deadline_misses: u64,
    pub quarantined_sessions: u64,
    pub registry_backoff: u64,
}

/// Crash-consistent-store snapshot: promotion/recovery/rollback/
/// quarantine/fsck counters from the durability layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreSnapshot {
    pub promotions: u64,
    pub recoveries: u64,
    pub rollbacks: u64,
    pub quarantined: u64,
    pub fsck_issues: u64,
}

/// Windowed-telemetry snapshot: rates and rolling distributions over
/// the last [`window::WINDOW_SLOTS`]×[`window::WINDOW_SLOT_MILLIS`]
/// (60×1s). Rates are 0.0 while nothing was recorded, so snapshots of
/// idle windows stay deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSnapshot {
    /// Windows scored per second over the live window.
    pub windows_per_sec: f64,
    /// Model swaps per minute over the live window.
    pub swaps_per_min: f64,
    /// Sweep rejections per minute over the live window.
    pub rejected_per_min: f64,
    /// Windows shed per second over the live window.
    pub sheds_per_sec: f64,
    /// Serving errors per second over the live window.
    pub errors_per_sec: f64,
    /// Rolling micro-batch scoring latency (ns).
    pub batch_score: HistogramSnapshot,
    /// Rolling outlier-score distribution in nanoscore units
    /// ([`window::quantize_score`]).
    pub score_dist: HistogramSnapshot,
}

/// One pipeline phase's exclusive-time histogram, labelled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    pub phase: Phase,
    pub exclusive: HistogramSnapshot,
}

/// A point-in-time copy of every recorder slot. Field order is fixed
/// and mirrors [`Metrics`], so two snapshots of the same run are
/// directly comparable and [`MetricsSnapshot::diff`] is well defined.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub pool: PoolSnapshot,
    pub plan_cache: PlanCacheSnapshot,
    pub stream: StreamObsSnapshot,
    pub registry: RegistrySnapshot,
    pub persist: PersistSnapshot,
    pub failures: FailureSnapshot,
    pub store: StoreSnapshot,
    pub window: WindowSnapshot,
    /// Indexed by [`Phase::index`], in [`Phase::ALL`] order.
    pub phases: Vec<PhaseSnapshot>,
}

impl MetricsSnapshot {
    fn capture(m: &Metrics) -> MetricsSnapshot {
        MetricsSnapshot {
            pool: PoolSnapshot {
                maps: m.pool_maps.get(),
                chunks_queued: m.pool_chunks_queued.get(),
                caller_steals: m.pool_caller_steals.get(),
                worker_runs: m.pool_worker_runs.get(),
                queue_wait: m.pool_queue_wait.snapshot(),
                chunk_run: m.pool_chunk_run.snapshot(),
            },
            plan_cache: PlanCacheSnapshot {
                hits: m.plan_cache_hits.get(),
                misses: m.plan_cache_misses.get(),
                evictions: m.plan_cache_evictions.get(),
                build: m.plan_build.snapshot(),
            },
            stream: StreamObsSnapshot {
                flush_full: m.stream_flush_full.get(),
                flush_expired: m.stream_flush_expired.get(),
                flush_manual: m.stream_flush_manual.get(),
                window_drops: m.stream_window_drops.get(),
                batch_assembly: m.stream_batch_assembly.snapshot(),
                batch_score: m.stream_batch_score.snapshot(),
            },
            registry: RegistrySnapshot {
                swaps: m.registry_swaps.get(),
                generation: m.registry_generation.get(),
                sweeps: m.registry_sweeps.get(),
                rejected: m.registry_rejected.get(),
                unchanged: m.registry_unchanged.get(),
                sweep_time: m.registry_sweep_time.snapshot(),
                install_time: m.registry_install_time.snapshot(),
            },
            persist: PersistSnapshot {
                sections_eager: m.persist_sections_eager.get(),
                sections_lazy: m.persist_sections_lazy.get(),
                first_touch: m.persist_first_touch.snapshot(),
                mapped_bytes: m.persist_mapped_bytes.get(),
            },
            failures: FailureSnapshot {
                errors: m.errors_total.get(),
                sheds: m.sheds_total.get(),
                deadline_misses: m.deadline_misses.get(),
                quarantined_sessions: m.quarantined_sessions.get(),
                registry_backoff: m.registry_backoff.get(),
            },
            store: StoreSnapshot {
                promotions: m.store_promotions.get(),
                recoveries: m.store_recoveries.get(),
                rollbacks: m.store_rollbacks.get(),
                quarantined: m.store_quarantined.get(),
                fsck_issues: m.store_fsck_issues.get(),
            },
            window: {
                let now_id = window::now_slot_id();
                WindowSnapshot {
                    windows_per_sec: m.win_stream_windows.rate_per_sec(now_id),
                    swaps_per_min: m.win_registry_swaps.rate_per_sec(now_id) * 60.0,
                    rejected_per_min: m.win_registry_rejected.rate_per_sec(now_id) * 60.0,
                    sheds_per_sec: m.win_sheds.rate_per_sec(now_id),
                    errors_per_sec: m.win_errors.rate_per_sec(now_id),
                    batch_score: m.win_batch_score.snapshot_live(now_id),
                    score_dist: m.win_score_dist.snapshot_live(now_id),
                }
            },
            phases: Phase::ALL
                .iter()
                .map(|&p| PhaseSnapshot {
                    phase: p,
                    exclusive: m.phases[p.index()].snapshot(),
                })
                .collect(),
        }
    }

    /// What happened since `earlier`: counters and histogram buckets
    /// subtract (saturating); the generation gauge and histogram maxima
    /// keep the later value.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            pool: PoolSnapshot {
                maps: self.pool.maps.saturating_sub(earlier.pool.maps),
                chunks_queued: self
                    .pool
                    .chunks_queued
                    .saturating_sub(earlier.pool.chunks_queued),
                caller_steals: self
                    .pool
                    .caller_steals
                    .saturating_sub(earlier.pool.caller_steals),
                worker_runs: self
                    .pool
                    .worker_runs
                    .saturating_sub(earlier.pool.worker_runs),
                queue_wait: self.pool.queue_wait.diff(&earlier.pool.queue_wait),
                chunk_run: self.pool.chunk_run.diff(&earlier.pool.chunk_run),
            },
            plan_cache: PlanCacheSnapshot {
                hits: self.plan_cache.hits.saturating_sub(earlier.plan_cache.hits),
                misses: self
                    .plan_cache
                    .misses
                    .saturating_sub(earlier.plan_cache.misses),
                evictions: self
                    .plan_cache
                    .evictions
                    .saturating_sub(earlier.plan_cache.evictions),
                build: self.plan_cache.build.diff(&earlier.plan_cache.build),
            },
            stream: StreamObsSnapshot {
                flush_full: self
                    .stream
                    .flush_full
                    .saturating_sub(earlier.stream.flush_full),
                flush_expired: self
                    .stream
                    .flush_expired
                    .saturating_sub(earlier.stream.flush_expired),
                flush_manual: self
                    .stream
                    .flush_manual
                    .saturating_sub(earlier.stream.flush_manual),
                window_drops: self
                    .stream
                    .window_drops
                    .saturating_sub(earlier.stream.window_drops),
                batch_assembly: self
                    .stream
                    .batch_assembly
                    .diff(&earlier.stream.batch_assembly),
                batch_score: self.stream.batch_score.diff(&earlier.stream.batch_score),
            },
            registry: RegistrySnapshot {
                swaps: self.registry.swaps.saturating_sub(earlier.registry.swaps),
                generation: self.registry.generation,
                sweeps: self.registry.sweeps.saturating_sub(earlier.registry.sweeps),
                rejected: self
                    .registry
                    .rejected
                    .saturating_sub(earlier.registry.rejected),
                unchanged: self
                    .registry
                    .unchanged
                    .saturating_sub(earlier.registry.unchanged),
                sweep_time: self.registry.sweep_time.diff(&earlier.registry.sweep_time),
                install_time: self
                    .registry
                    .install_time
                    .diff(&earlier.registry.install_time),
            },
            persist: PersistSnapshot {
                sections_eager: self
                    .persist
                    .sections_eager
                    .saturating_sub(earlier.persist.sections_eager),
                sections_lazy: self
                    .persist
                    .sections_lazy
                    .saturating_sub(earlier.persist.sections_lazy),
                first_touch: self.persist.first_touch.diff(&earlier.persist.first_touch),
                // a level, not a rate: keep the later reading
                mapped_bytes: self.persist.mapped_bytes,
            },
            failures: FailureSnapshot {
                errors: self.failures.errors.saturating_sub(earlier.failures.errors),
                sheds: self.failures.sheds.saturating_sub(earlier.failures.sheds),
                deadline_misses: self
                    .failures
                    .deadline_misses
                    .saturating_sub(earlier.failures.deadline_misses),
                quarantined_sessions: self
                    .failures
                    .quarantined_sessions
                    .saturating_sub(earlier.failures.quarantined_sessions),
                // a level, not a rate: keep the later reading
                registry_backoff: self.failures.registry_backoff,
            },
            store: StoreSnapshot {
                promotions: self
                    .store
                    .promotions
                    .saturating_sub(earlier.store.promotions),
                recoveries: self
                    .store
                    .recoveries
                    .saturating_sub(earlier.store.recoveries),
                rollbacks: self.store.rollbacks.saturating_sub(earlier.store.rollbacks),
                quarantined: self
                    .store
                    .quarantined
                    .saturating_sub(earlier.store.quarantined),
                fsck_issues: self
                    .store
                    .fsck_issues
                    .saturating_sub(earlier.store.fsck_issues),
            },
            // Already windowed — a diff keeps the later reading.
            window: self.window.clone(),
            phases: self
                .phases
                .iter()
                .zip(&earlier.phases)
                .map(|(now, then)| PhaseSnapshot {
                    phase: now.phase,
                    exclusive: now.exclusive.diff(&then.exclusive),
                })
                .collect(),
        }
    }

    /// Serialises the snapshot as a stable, hand-rolled JSON object
    /// (no external dependency; field order matches the struct).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"pool\": {");
        push_u64(&mut out, "maps", self.pool.maps, true);
        push_u64(&mut out, "chunks_queued", self.pool.chunks_queued, false);
        push_u64(&mut out, "caller_steals", self.pool.caller_steals, false);
        push_u64(&mut out, "worker_runs", self.pool.worker_runs, false);
        push_hist(&mut out, "queue_wait_ns", &self.pool.queue_wait);
        push_hist(&mut out, "chunk_run_ns", &self.pool.chunk_run);
        out.push_str("},\n  \"plan_cache\": {");
        push_u64(&mut out, "hits", self.plan_cache.hits, true);
        push_u64(&mut out, "misses", self.plan_cache.misses, false);
        push_u64(&mut out, "evictions", self.plan_cache.evictions, false);
        push_hist(&mut out, "build_ns", &self.plan_cache.build);
        out.push_str("},\n  \"stream\": {");
        push_u64(&mut out, "flush_full", self.stream.flush_full, true);
        push_u64(&mut out, "flush_expired", self.stream.flush_expired, false);
        push_u64(&mut out, "flush_manual", self.stream.flush_manual, false);
        push_u64(&mut out, "window_drops", self.stream.window_drops, false);
        push_hist(&mut out, "batch_assembly_ns", &self.stream.batch_assembly);
        push_hist(&mut out, "batch_score_ns", &self.stream.batch_score);
        out.push_str("},\n  \"registry\": {");
        push_u64(&mut out, "swaps", self.registry.swaps, true);
        push_u64(&mut out, "generation", self.registry.generation, false);
        push_u64(&mut out, "sweeps", self.registry.sweeps, false);
        push_u64(&mut out, "rejected", self.registry.rejected, false);
        push_u64(&mut out, "unchanged", self.registry.unchanged, false);
        push_hist(&mut out, "sweep_ns", &self.registry.sweep_time);
        push_hist(&mut out, "install_ns", &self.registry.install_time);
        out.push_str("},\n  \"persist\": {");
        push_u64(
            &mut out,
            "sections_eager",
            self.persist.sections_eager,
            true,
        );
        push_u64(&mut out, "sections_lazy", self.persist.sections_lazy, false);
        push_u64(&mut out, "mapped_bytes", self.persist.mapped_bytes, false);
        push_hist(&mut out, "first_touch_ns", &self.persist.first_touch);
        out.push_str("},\n  \"failures\": {");
        push_u64(&mut out, "errors_total", self.failures.errors, true);
        push_u64(&mut out, "sheds_total", self.failures.sheds, false);
        push_u64(
            &mut out,
            "deadline_misses",
            self.failures.deadline_misses,
            false,
        );
        push_u64(
            &mut out,
            "quarantined_sessions",
            self.failures.quarantined_sessions,
            false,
        );
        push_u64(
            &mut out,
            "registry_backoff",
            self.failures.registry_backoff,
            false,
        );
        out.push_str("},\n  \"store\": {");
        push_u64(&mut out, "promotions", self.store.promotions, true);
        push_u64(&mut out, "recoveries", self.store.recoveries, false);
        push_u64(&mut out, "rollbacks", self.store.rollbacks, false);
        push_u64(&mut out, "quarantined", self.store.quarantined, false);
        push_u64(&mut out, "fsck_issues", self.store.fsck_issues, false);
        out.push_str("},\n  \"window\": {");
        let w = &self.window;
        push_f64(&mut out, "windows_per_sec", w.windows_per_sec, true);
        push_f64(&mut out, "swaps_per_min", w.swaps_per_min, false);
        push_f64(&mut out, "rejected_per_min", w.rejected_per_min, false);
        push_f64(&mut out, "sheds_per_sec", w.sheds_per_sec, false);
        push_f64(&mut out, "errors_per_sec", w.errors_per_sec, false);
        push_hist(&mut out, "batch_score_ns", &w.batch_score);
        push_hist(&mut out, "score_dist_nanoscore", &w.score_dist);
        out.push_str("},\n  \"phases\": {");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": ", p.phase.name());
            hist_json(&mut out, &p.exclusive);
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a human-readable multi-section report (what
    /// `examples/observability.rs` prints).
    pub fn format_report(&self) -> String {
        let mut r = String::with_capacity(2048);
        r.push_str("== mfod-obs report ==\n");

        let p = &self.pool;
        let share = p
            .caller_steal_share()
            .map(|s| format!("{:.1}%", 100.0 * s))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(
            r,
            "pool       {} maps · {} sub-chunks queued · {} caller steals ({share} share) · {} worker runs",
            p.maps, p.chunks_queued, p.caller_steals, p.worker_runs
        );
        hist_line(&mut r, "  queue wait", &p.queue_wait);
        hist_line(&mut r, "  chunk run ", &p.chunk_run);

        let c = &self.plan_cache;
        let rate = c
            .hit_rate()
            .map(|h| format!("{:.1}%", 100.0 * h))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(
            r,
            "plan cache {} hits / {} misses (hit rate {rate}) · {} evictions",
            c.hits, c.misses, c.evictions
        );
        hist_line(&mut r, "  plan build", &c.build);

        let s = &self.stream;
        let _ = writeln!(
            r,
            "stream     flushes: {} full / {} expired / {} manual · {} window drops",
            s.flush_full, s.flush_expired, s.flush_manual, s.window_drops
        );
        hist_line(&mut r, "  assembly  ", &s.batch_assembly);
        hist_line(&mut r, "  batch lat ", &s.batch_score);

        let g = &self.registry;
        let _ = writeln!(
            r,
            "registry   generation {} · {} swaps · {} sweeps · {} rejected · {} unchanged",
            g.generation, g.swaps, g.sweeps, g.rejected, g.unchanged
        );
        hist_line(&mut r, "  sweep     ", &g.sweep_time);
        hist_line(&mut r, "  install   ", &g.install_time);

        let pe = &self.persist;
        let share = pe
            .lazy_share()
            .map(|s| format!("{:.1}%", 100.0 * s))
            .unwrap_or_else(|| "n/a".into());
        let _ = writeln!(
            r,
            "persist    sections: {} eager / {} lazy ({share} lazy) · {} bytes mapped",
            pe.sections_eager, pe.sections_lazy, pe.mapped_bytes
        );
        hist_line(&mut r, "  1st touch ", &pe.first_touch);

        let f = &self.failures;
        let _ = writeln!(
            r,
            "failures   {} errors · {} sheds · {} deadline misses · {} quarantined · backoff level {}",
            f.errors, f.sheds, f.deadline_misses, f.quarantined_sessions, f.registry_backoff
        );

        let st = &self.store;
        let _ = writeln!(
            r,
            "store      {} promotions · {} recoveries · {} rollbacks · {} quarantined · {} fsck issues",
            st.promotions, st.recoveries, st.rollbacks, st.quarantined, st.fsck_issues
        );

        let w = &self.window;
        let _ = writeln!(
            r,
            "window({}x{}ms) {:.2} windows/s · {:.2} swaps/min · {:.2} rejected/min · {:.2} sheds/s · {:.2} errors/s",
            window::WINDOW_SLOTS,
            window::WINDOW_SLOT_MILLIS,
            w.windows_per_sec,
            w.swaps_per_min,
            w.rejected_per_min,
            w.sheds_per_sec,
            w.errors_per_sec
        );
        hist_line(&mut r, "  score lat ", &w.batch_score);
        score_dist_line(&mut r, "  score dist", &w.score_dist);

        r.push_str("phases (exclusive time)\n");
        for ph in &self.phases {
            hist_line(&mut r, &format!("  {:<14}", ph.phase.name()), &ph.exclusive);
        }
        r
    }
}

fn push_u64(out: &mut String, key: &str, v: u64, first: bool) {
    if !first {
        out.push(',');
    }
    let _ = write!(out, "\n    \"{key}\": {v}");
}

fn push_f64(out: &mut String, key: &str, v: f64, first: bool) {
    if !first {
        out.push(',');
    }
    let _ = write!(out, "\n    \"{key}\": {v:.6}");
}

fn push_hist(out: &mut String, key: &str, h: &HistogramSnapshot) {
    let _ = write!(out, ",\n    \"{key}\": ");
    hist_json(out, h);
}

fn hist_json(out: &mut String, h: &HistogramSnapshot) {
    let q = |p: f64| h.quantile(p).unwrap_or(0);
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
        h.count,
        h.sum,
        h.max,
        q(0.50),
        q(0.95),
        q(0.99)
    );
    // Trailing zero buckets are elided (the decoder implies them),
    // keeping dumps compact while staying a plain JSON array.
    let last = h.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
    for (i, b) in h.buckets[..last].iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}");
}

/// Report line for the score-distribution sketch: nanoscore bucket
/// edges rendered back in score units.
fn score_dist_line(r: &mut String, label: &str, h: &HistogramSnapshot) {
    if h.count == 0 {
        let _ = writeln!(r, "{label}  (no samples)");
        return;
    }
    let q = |p: f64| window::dequantize_score(h.quantile(p).unwrap_or(0));
    let _ = writeln!(
        r,
        "{label}  n={:<6} p50 {:.4} · p95 {:.4} · p99 {:.4} · max {:.4}",
        h.count,
        q(0.50),
        q(0.95),
        q(0.99),
        window::dequantize_score(h.max)
    );
}

fn hist_line(r: &mut String, label: &str, h: &HistogramSnapshot) {
    if h.count == 0 {
        let _ = writeln!(r, "{label}  (no samples)");
        return;
    }
    let q = |p: f64| fmt_nanos(h.quantile(p).unwrap_or(0));
    let _ = writeln!(
        r,
        "{label}  n={:<6} p50 {} · p95 {} · p99 {} · max {}",
        h.count,
        q(0.50),
        q(0.95),
        q(0.99),
        fmt_nanos(h.max)
    );
}

/// Formats a nanosecond value with a readable unit.
fn fmt_nanos(ns: u64) -> String {
    let d = Duration::from_nanos(ns);
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanTimer;
    use crate::testutil::locked;

    #[test]
    fn install_overrides_and_gates_active() {
        let _g = locked();
        Recorder::install(false);
        assert!(active().is_none());
        Recorder::install(true);
        assert!(active().is_some());
        assert!(Recorder::enabled());
        Recorder::install(false);
    }

    #[test]
    fn snapshot_roundtrip_and_diff() {
        let _g = locked();
        Recorder::install(true);
        Recorder::reset();
        let m = Recorder::metrics();
        m.pool_maps.add(2);
        m.plan_cache_hits.add(3);
        m.plan_cache_misses.add(1);
        m.registry_generation.set(7);
        m.stream_batch_score.record(1_500);
        let early = Recorder::snapshot();
        m.pool_maps.add(5);
        m.stream_batch_score.record(3_000);
        let late = Recorder::snapshot();
        let d = late.diff(&early);
        assert_eq!(d.pool.maps, 5);
        assert_eq!(d.plan_cache.hits, 0);
        assert_eq!(d.registry.generation, 7);
        assert_eq!(d.stream.batch_score.count, 1);
        assert_eq!(early.plan_cache.hit_rate(), Some(0.75));
        Recorder::reset();
        Recorder::install(false);
    }

    #[test]
    fn spans_record_exclusive_time() {
        let _g = locked();
        Recorder::install(true);
        Recorder::reset();
        {
            let _outer = SpanTimer::start(Phase::FitFeatures);
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = SpanTimer::start(Phase::FitDetector);
                std::thread::sleep(Duration::from_millis(4));
            }
        }
        let snap = Recorder::snapshot();
        let outer = &snap.phases[Phase::FitFeatures.index()].exclusive;
        let inner = &snap.phases[Phase::FitDetector.index()].exclusive;
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The outer span's exclusive time excludes the inner span, so
        // both should be ~4ms — in particular the outer must be below
        // the 8ms total (sleep granularity leaves plenty of headroom).
        assert!(inner.sum >= 3_000_000, "inner {}ns", inner.sum);
        assert!(outer.sum >= 3_000_000, "outer {}ns", outer.sum);
        assert!(
            outer.sum < 7_000_000,
            "outer kept child time: {}ns",
            outer.sum
        );
        Recorder::reset();
        Recorder::install(false);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = locked();
        Recorder::install(false);
        Recorder::reset();
        {
            let _span = SpanTimer::start(Phase::ScoreDetector);
        }
        assert_eq!(
            Recorder::snapshot().phases[Phase::ScoreDetector.index()]
                .exclusive
                .count,
            0
        );
    }

    #[test]
    fn json_and_report_contain_all_sections() {
        let _g = locked();
        Recorder::install(true);
        Recorder::reset();
        let m = Recorder::metrics();
        m.pool_caller_steals.add(4);
        m.pool_chunks_queued.add(8);
        m.stream_batch_score.record(2_000_000);
        m.registry_generation.set(3);
        m.persist_sections_lazy.add(2);
        m.persist_sections_eager.add(6);
        m.persist_mapped_bytes.add(4_096);
        m.persist_first_touch.record(10_000);
        m.registry_install_time.record(5_000_000);
        m.errors_total.add(5);
        m.sheds_total.add(2);
        m.deadline_misses.add(1);
        m.quarantined_sessions.add(1);
        m.registry_backoff.set(3);
        m.store_promotions.add(7);
        m.store_recoveries.add(2);
        m.store_rollbacks.add(1);
        m.store_quarantined.add(3);
        m.store_fsck_issues.add(4);
        let snap = Recorder::snapshot();
        let json = snap.to_json();
        for key in [
            "\"pool\"",
            "\"plan_cache\"",
            "\"stream\"",
            "\"registry\"",
            "\"persist\"",
            "\"phases\"",
            "\"caller_steals\": 4",
            "\"generation\": 3",
            "\"sections_lazy\": 2",
            "\"mapped_bytes\": 4096",
            "\"install_ns\"",
            "\"first_touch_ns\"",
            "\"failures\"",
            "\"errors_total\": 5",
            "\"sheds_total\": 2",
            "\"deadline_misses\": 1",
            "\"quarantined_sessions\": 1",
            "\"registry_backoff\": 3",
            "\"store\"",
            "\"promotions\": 7",
            "\"recoveries\": 2",
            "\"rollbacks\": 1",
            "\"quarantined\": 3",
            "\"fsck_issues\": 4",
            "\"window\"",
            "\"windows_per_sec\"",
            "\"swaps_per_min\"",
            "\"rejected_per_min\"",
            "\"batch_score_ns\"",
            "\"score_dist_nanoscore\"",
            "\"p50\"",
            "\"buckets\"",
            "\"fit-features\"",
        ] {
            assert!(json.contains(key), "JSON missing {key}:\n{json}");
        }
        let report = snap.format_report();
        for needle in [
            "pool",
            "caller steals",
            "50.0% share",
            "plan cache",
            "stream",
            "batch lat",
            "registry   generation 3",
            "persist    sections: 6 eager / 2 lazy (25.0% lazy) · 4096 bytes mapped",
            "failures   5 errors · 2 sheds · 1 deadline misses · 1 quarantined · backoff level 3",
            "store      7 promotions · 2 recoveries · 1 rollbacks · 3 quarantined · 4 fsck issues",
            "rejected/min",
            "window(60x1000ms)",
            "windows/s",
            "score dist",
            "phases",
        ] {
            assert!(
                report.contains(needle),
                "report missing {needle}:\n{report}"
            );
        }
        Recorder::reset();
        Recorder::install(false);
    }

    #[test]
    fn windowed_slots_surface_rates_and_rolling_quantiles() {
        let _g = locked();
        Recorder::install(true);
        Recorder::reset();
        let m = Recorder::metrics();
        // Record into the *current* wall-clock slot so capture (which
        // reads the live window at `now_slot_id`) sees everything.
        let now_id = crate::window::now_slot_id();
        m.win_stream_windows.add_at(now_id, 30);
        m.win_registry_swaps.add_at(now_id, 2);
        m.win_batch_score.record_at(now_id, 1_000_000);
        m.win_score_dist
            .record_at(now_id, crate::window::quantize_score(0.5));
        let snap = Recorder::snapshot();
        assert!(snap.window.windows_per_sec > 0.0);
        assert!(snap.window.swaps_per_min > 0.0);
        assert_eq!(snap.window.batch_score.count, 1);
        assert_eq!(snap.window.score_dist.count, 1);
        // The sketch quantile dequantizes back near the score (log₂
        // buckets → upper edge within 2× of the true value).
        let p50 = crate::window::dequantize_score(snap.window.score_dist.quantile(0.5).unwrap());
        assert!((0.5..=1.0).contains(&p50), "p50 {p50}");
        let report = snap.format_report();
        assert!(report.contains("score dist"), "{report}");
        Recorder::reset();
        Recorder::install(false);
    }

    #[test]
    fn snapshot_is_deterministic_for_fixed_sequence() {
        let _g = locked();
        let run = || {
            Recorder::install(true);
            Recorder::reset();
            let m = Recorder::metrics();
            for v in [3u64, 17, 1_024, 0, 999_999] {
                m.pool_queue_wait.record(v);
                m.stream_batch_assembly.record(v * 2);
            }
            m.pool_maps.add(5);
            let snap = Recorder::snapshot();
            Recorder::reset();
            Recorder::install(false);
            snap
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn dump_json_writes_file() {
        let _g = locked();
        let dir = std::env::temp_dir().join("mfod_obs_test_dump");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        Recorder::dump_json(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(750), "750ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.5ms");
        assert_eq!(fmt_nanos(1_500_000_000), "1.50s");
    }
}
