//! Workspace-wide runtime observability: lock-free counters and gauges,
//! log-bucketed latency histograms, and lightweight span timers behind a
//! process-wide [`Recorder`] that costs one relaxed atomic load and a
//! predictable branch when disabled.
//!
//! # Design
//!
//! The crate is split in two layers:
//!
//! * **Primitives** ([`Counter`], [`Gauge`], [`Histogram`]) are plain
//!   lock-free types with no enable gate. Components that always want
//!   their own counters (e.g. `StreamStats` in `mfod-stream`) embed them
//!   directly.
//! * **The global [`Recorder`]** owns one static [`Metrics`] bundle with a
//!   named slot for every instrumented subsystem (pool, plan cache,
//!   stream, registry, pipeline phases). Hot paths gate on
//!   [`active`]`()` — `None` unless observability is enabled — so the
//!   disabled path never touches a clock or an atomic counter.
//!
//! # Enabling
//!
//! Observability is off by default. Turn it on with the environment
//! variable `MFOD_OBS=1` (read once, lazily), or programmatically with
//! [`Recorder::install`] (tests use this to toggle at runtime; it
//! overrides the environment). With `MFOD_OBS_JSON=<path>` set, a
//! [`json_dump_guard`] writes the full [`MetricsSnapshot`] as JSON to
//! `<path>` when dropped; [`Recorder::dump_json`] does the same on
//! demand. `MFOD_OBS_TRACE=<path>` additionally dumps the event
//! [`journal`] as Chrome trace-event JSON, and
//! `MFOD_OBS_HTTP=<addr>` (via [`Recorder::serve_from_env`]) starts a
//! std-only scrape endpoint serving `/metrics` (Prometheus text
//! exposition), `/report` and `/trace`.
//!
//! # Determinism
//!
//! Histogram bucket boundaries are fixed powers of two, so for a fixed
//! sequence of recorded values the snapshot — buckets, count, sum, max,
//! and every quantile — is bit-for-bit reproducible. Wall-clock derived
//! values (latencies) vary run to run, but the *structure* of a snapshot
//! and all count-derived fields do not. Instrumentation never influences
//! computed results: enabling the recorder changes only what is counted,
//! never what is scored (guarded by bit-parity tests in the workspace
//! facade).

mod http;
pub mod journal;
mod metrics;
mod recorder;
mod span;
pub mod window;

pub use http::{prometheus_text, HttpHandle, ENV_OBS_HTTP};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use recorder::{
    active, json_dump_guard, FailureSnapshot, JsonDumpGuard, MetricsSnapshot, PersistSnapshot,
    PhaseSnapshot, PlanCacheSnapshot, PoolSnapshot, Recorder, RegistrySnapshot, StreamObsSnapshot,
    WindowSnapshot, ENV_OBS, ENV_OBS_JSON, ENV_OBS_TRACE,
};
pub use recorder::{Metrics, PhaseSlots};
pub use span::{Phase, SpanTimer};
pub use window::{WindowedCounter, WindowedHistogram, WINDOW_SLOTS, WINDOW_SLOT_MILLIS};

/// Serialises unit tests that toggle the global gate, reset the
/// metrics bundle, or read/clear the global journal — spans feed the
/// journal, so recorder and journal tests share one lock.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn locked() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
