//! Windowed telemetry: fixed-slot rotating time windows over counters
//! and histograms, yielding event rates and rolling quantiles over the
//! last [`WINDOW_SLOTS`]×[`WINDOW_SLOT_MILLIS`] (60×1s by default)
//! instead of process-lifetime aggregates.
//!
//! Each window is a fixed array of slots tagged with the slot id they
//! belong to (`epoch_nanos / slot_length`). A recorder claims the
//! current slot by CAS-ing the tag forward and zeroing the slot before
//! writing into it; readers sum only slots whose tag is inside the
//! live window, so stale slots age out without a background thread.
//! Like the rest of the crate the structures are monitoring-grade: a
//! record racing a slot rotation may land in the retiring slot (and be
//! zeroed) or the fresh one, but a slot's tag and contents always
//! describe the same window to within that race, and no event is ever
//! counted twice.
//!
//! Deterministic tests inject explicit slot ids through the `*_at`
//! entry points instead of the epoch clock.

use crate::journal::epoch_nanos;
use crate::metrics::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Slots per rotating window.
pub const WINDOW_SLOTS: usize = 60;
/// Wall-clock length of one slot in milliseconds.
pub const WINDOW_SLOT_MILLIS: u64 = 1_000;

/// The current slot id on the shared epoch clock.
#[inline]
pub fn now_slot_id() -> u64 {
    epoch_nanos() / (WINDOW_SLOT_MILLIS * 1_000_000)
}

/// Seconds of wall clock the live window covers at `now_id` (smaller
/// than the full window right after process start, so early rates are
/// not diluted by slots that never existed).
fn covered_secs(now_id: u64) -> f64 {
    let slots = (now_id + 1).min(WINDOW_SLOTS as u64);
    slots as f64 * (WINDOW_SLOT_MILLIS as f64 / 1_000.0)
}

/// Whether a slot tagged `slot_id` is inside the live window at
/// `now_id`.
#[inline]
fn live(slot_id: u64, now_id: u64) -> bool {
    slot_id <= now_id && slot_id + WINDOW_SLOTS as u64 > now_id
}

/// A rotating-window event counter: `add` lands in the current slot,
/// [`WindowedCounter::rate_per_sec`] reads the last
/// [`WINDOW_SLOTS`]-slot sum as a rate.
#[derive(Debug)]
pub struct WindowedCounter {
    slots: [CounterSlot; WINDOW_SLOTS],
}

#[derive(Debug)]
struct CounterSlot {
    id: AtomicU64,
    value: AtomicU64,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowedCounter {
    /// Fresh window (const so it can live in the static bundle).
    pub const fn new() -> Self {
        WindowedCounter {
            slots: [const {
                CounterSlot {
                    id: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                }
            }; WINDOW_SLOTS],
        }
    }

    /// Adds `n` to the current wall-clock slot.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_at(now_slot_id(), n);
    }

    /// Adds `n` to the slot for an explicit `slot_id` (deterministic
    /// tests; production code uses [`WindowedCounter::add`]).
    pub fn add_at(&self, slot_id: u64, n: u64) {
        let slot = &self.slots[(slot_id % WINDOW_SLOTS as u64) as usize];
        if claim(&slot.id, slot_id) {
            slot.value.store(0, Ordering::Relaxed);
        }
        if slot.id.load(Ordering::Relaxed) == slot_id {
            slot.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sum over the live window at `now_id`.
    pub fn sum_live(&self, now_id: u64) -> u64 {
        self.slots
            .iter()
            .filter(|s| live(s.id.load(Ordering::Relaxed), now_id))
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }

    /// Events per second over the live window at `now_id`.
    pub fn rate_per_sec(&self, now_id: u64) -> f64 {
        self.sum_live(now_id) as f64 / covered_secs(now_id)
    }

    /// Zeroes every slot (test epochs).
    pub fn reset(&self) {
        for s in &self.slots {
            s.id.store(0, Ordering::Relaxed);
            s.value.store(0, Ordering::Relaxed);
        }
    }
}

/// A rotating-window histogram: rolling p50/p95/p99 over the last
/// [`WINDOW_SLOTS`] slots via [`WindowedHistogram::snapshot_live`].
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: [HistSlot; WINDOW_SLOTS],
}

#[derive(Debug)]
struct HistSlot {
    id: AtomicU64,
    hist: Histogram,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowedHistogram {
    /// Fresh window (const; ~33 KiB of zeroed atomics per instance).
    pub const fn new() -> Self {
        WindowedHistogram {
            slots: [const {
                HistSlot {
                    id: AtomicU64::new(0),
                    hist: Histogram::new(),
                }
            }; WINDOW_SLOTS],
        }
    }

    /// Records `v` into the current wall-clock slot.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_at(now_slot_id(), v);
    }

    /// Records a duration in nanoseconds (saturating), mirroring
    /// [`Histogram::record_duration`].
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records `v` into the slot for an explicit `slot_id`
    /// (deterministic tests).
    pub fn record_at(&self, slot_id: u64, v: u64) {
        let slot = &self.slots[(slot_id % WINDOW_SLOTS as u64) as usize];
        if claim(&slot.id, slot_id) {
            slot.hist.reset();
        }
        if slot.id.load(Ordering::Relaxed) == slot_id {
            slot.hist.record(v);
        }
    }

    /// Merged snapshot of the live window at `now_id` — the rolling
    /// distribution the p50/p95/p99 report lines come from.
    pub fn snapshot_live(&self, now_id: u64) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for s in &self.slots {
            if live(s.id.load(Ordering::Relaxed), now_id) {
                out = out.merge(&s.hist.snapshot());
            }
        }
        out
    }

    /// Zeroes every slot (test epochs).
    pub fn reset(&self) {
        for s in &self.slots {
            s.id.store(0, Ordering::Relaxed);
            s.hist.reset();
        }
    }
}

/// Rotates `tag` forward to `slot_id` if it is behind. Returns `true`
/// for the one caller that won the rotation and must zero the slot
/// before writing. Tags never move backwards, so a racer holding a
/// stale id simply drops its sample.
fn claim(tag: &AtomicU64, slot_id: u64) -> bool {
    let mut cur = tag.load(Ordering::Acquire);
    while cur < slot_id {
        match tag.compare_exchange_weak(cur, slot_id, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Quantizes a non-negative outlier score for the windowed score
/// distribution sketch: nanoscore units (`score × 10⁹`) bucketed by the
/// shared log₂ histogram, i.e. ~2× relative resolution. Negative, NaN
/// and infinite scores clamp to the edge buckets.
#[inline]
pub fn quantize_score(score: f64) -> u64 {
    if score.is_nan() || score <= 0.0 {
        return 0;
    }
    let q = score * 1e9;
    if q >= u64::MAX as f64 {
        u64::MAX
    } else {
        q as u64
    }
}

/// Inverse of [`quantize_score`] for display (bucket edges back to
/// score units).
#[inline]
pub fn dequantize_score(q: u64) -> f64 {
    q as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rotation_never_double_counts() {
        let w = Box::new(WindowedCounter::new());
        // Fill slot ids 0..3×WINDOW_SLOTS: each id gets exactly one
        // event; wrapping over the same physical slot must discard the
        // old window's count, not add to it.
        let last = 3 * WINDOW_SLOTS as u64 - 1;
        for id in 0..=last {
            w.add_at(id, 1);
        }
        assert_eq!(w.sum_live(last), WINDOW_SLOTS as u64);
        assert_eq!(w.rate_per_sec(last), 1.0);
    }

    #[test]
    fn stale_slots_age_out_without_writes() {
        let w = Box::new(WindowedCounter::new());
        w.add_at(5, 10);
        assert_eq!(w.sum_live(5), 10);
        // Window moves past slot 5 with no further writes: count gone.
        assert_eq!(w.sum_live(5 + WINDOW_SLOTS as u64), 0);
    }

    #[test]
    fn late_sample_for_retired_slot_is_dropped() {
        let w = Box::new(WindowedCounter::new());
        let far = 2 * WINDOW_SLOTS as u64; // claims physical slot 0
        w.add_at(far, 3);
        w.add_at(0, 99); // stale id for the same physical slot
        assert_eq!(w.sum_live(far), 3);
    }

    #[test]
    fn early_window_rate_uses_covered_span() {
        let w = Box::new(WindowedCounter::new());
        w.add_at(0, 4);
        w.add_at(1, 4);
        // Two 1s slots elapsed → 8 events / 2s.
        assert_eq!(w.rate_per_sec(1), 4.0);
    }

    #[test]
    fn histogram_window_rolls_quantiles() {
        let w = Box::new(WindowedHistogram::new());
        for i in 0..WINDOW_SLOTS as u64 {
            w.record_at(i, 100);
        }
        let s = w.snapshot_live(WINDOW_SLOTS as u64 - 1);
        assert_eq!(s.count, WINDOW_SLOTS as u64);
        // Rotate far forward: one fresh slot only.
        let far = 10 * WINDOW_SLOTS as u64;
        w.record_at(far, 1_000_000);
        let s = w.snapshot_live(far);
        // Slots tagged 0..WINDOW_SLOTS are all stale at `far` except
        // the reclaimed one, which was zeroed.
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn score_quantization_clamps_and_inverts() {
        assert_eq!(quantize_score(-1.0), 0);
        assert_eq!(quantize_score(f64::NAN), 0);
        assert_eq!(quantize_score(0.0), 0);
        assert_eq!(quantize_score(f64::INFINITY), u64::MAX);
        let q = quantize_score(0.25);
        assert_eq!(q, 250_000_000);
        assert!((dequantize_score(q) - 0.25).abs() < 1e-12);
    }
}
