//! A hand-rolled, std-only HTTP scrape endpoint for the recorder:
//! `/metrics` in Prometheus text exposition format, `/report` as the
//! human-readable report, `/trace` as Chrome trace-event JSON.
//!
//! The server is a single background thread over a blocking
//! [`TcpListener`]; scrapes are rare and tiny, so one connection at a
//! time is plenty and keeps the crate dependency-free. The returned
//! [`HttpHandle`] stops the server on drop (mirroring the registry
//! watcher's `WatchHandle`): it raises a stop flag and unblocks the
//! accept loop with a self-connection, then joins the thread.

use crate::journal;
use crate::metrics::{bucket_upper_edge, HistogramSnapshot, HIST_BUCKETS};
use crate::recorder::{MetricsSnapshot, Recorder};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable naming the scrape bind address
/// (e.g. `MFOD_OBS_HTTP=127.0.0.1:9464`), honoured by
/// [`Recorder::serve_from_env`].
pub const ENV_OBS_HTTP: &str = "MFOD_OBS_HTTP";

/// Running scrape server. Dropping the handle stops the server and
/// joins its thread; [`HttpHandle::addr`] reports the bound address
/// (useful with port 0).
#[derive(Debug)]
pub struct HttpHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl HttpHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread (same as dropping).
    pub fn stop(self) {}
}

impl Drop for HttpHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop; an error just means the server
        // already noticed the flag some other way.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves scrapes on a background thread.
pub(crate) fn serve(addr: &str) -> std::io::Result<HttpHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("mfod-obs-http".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(mut stream) = conn {
                    let _ = handle_conn(&mut stream);
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        })?;
    Ok(HttpHandle {
        stop,
        addr: local,
        thread: Some(thread),
    })
}

fn handle_conn(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read the request head (bounded; scrape requests are tiny).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8 * 1024 {
            break;
        }
    }
    let line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n".to_string(),
        )
    } else {
        match path.split('?').next().unwrap_or(path) {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                prometheus_text(&Recorder::snapshot()),
            ),
            "/report" => (
                "200 OK",
                "text/plain; charset=utf-8",
                Recorder::snapshot().format_report(),
            ),
            "/trace" => (
                "200 OK",
                "application/json; charset=utf-8",
                journal::chrome_trace_json(),
            ),
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "mfod-obs scrape endpoint: /metrics /report /trace\n".to_string(),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let mut resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    resp.push_str(&body);
    stream.write_all(resp.as_bytes())
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, v: u64) {
    family(out, name, help, "counter");
    let _ = writeln!(out, "{name} {v}");
}

fn gauge_u64(out: &mut String, name: &str, help: &str, v: u64) {
    family(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {v}");
}

fn gauge_f64(out: &mut String, name: &str, help: &str, v: f64) {
    family(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {v:.6}");
}

/// Emits one histogram series (the `# HELP`/`# TYPE` header is the
/// caller's job, so labelled families share a single header). Trailing
/// empty buckets are elided — cumulative `le` series stay valid with
/// any subset of edges as long as `+Inf` is present and counts are
/// non-decreasing, which they are by construction.
fn histogram_series(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let last = h.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
    let mut cum = 0u64;
    for i in 0..last.min(HIST_BUCKETS) {
        cum = cum.saturating_add(h.buckets[i]);
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}",
            bucket_upper_edge(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
    }
}

fn histogram(out: &mut String, name: &str, help: &str, labels: &str, h: &HistogramSnapshot) {
    family(out, name, help, "histogram");
    histogram_series(out, name, labels, h);
}

/// Renders a [`MetricsSnapshot`] (plus journal drop accounting) in
/// Prometheus text exposition format 0.0.4.
pub fn prometheus_text(s: &MetricsSnapshot) -> String {
    let mut o = String::with_capacity(8 * 1024);

    counter(
        &mut o,
        "mfod_pool_maps_total",
        "Parallel map operations issued.",
        s.pool.maps,
    );
    counter(
        &mut o,
        "mfod_pool_chunks_queued_total",
        "Sub-chunks handed to the pool injector.",
        s.pool.chunks_queued,
    );
    counter(
        &mut o,
        "mfod_pool_caller_steals_total",
        "Queued sub-chunks the caller stole back.",
        s.pool.caller_steals,
    );
    counter(
        &mut o,
        "mfod_pool_worker_runs_total",
        "Queued sub-chunks executed by pool workers.",
        s.pool.worker_runs,
    );
    histogram(
        &mut o,
        "mfod_pool_queue_wait_ns",
        "Sub-chunk injection-to-execution wait (ns).",
        "",
        &s.pool.queue_wait,
    );
    histogram(
        &mut o,
        "mfod_pool_chunk_run_ns",
        "Sub-chunk execution time (ns).",
        "",
        &s.pool.chunk_run,
    );

    counter(
        &mut o,
        "mfod_plan_cache_hits_total",
        "Selection-plan cache hits.",
        s.plan_cache.hits,
    );
    counter(
        &mut o,
        "mfod_plan_cache_misses_total",
        "Selection-plan cache misses.",
        s.plan_cache.misses,
    );
    counter(
        &mut o,
        "mfod_plan_cache_evictions_total",
        "Selection plans evicted by the LRU bound.",
        s.plan_cache.evictions,
    );
    histogram(
        &mut o,
        "mfod_plan_build_ns",
        "Selection-plan build time (ns).",
        "",
        &s.plan_cache.build,
    );

    counter(
        &mut o,
        "mfod_stream_flush_full_total",
        "Micro-batches flushed because the batch filled.",
        s.stream.flush_full,
    );
    counter(
        &mut o,
        "mfod_stream_flush_expired_total",
        "Micro-batches flushed because max_delay expired.",
        s.stream.flush_expired,
    );
    counter(
        &mut o,
        "mfod_stream_flush_manual_total",
        "Micro-batches flushed by an explicit finish.",
        s.stream.flush_manual,
    );
    counter(
        &mut o,
        "mfod_stream_window_drops_total",
        "Pending windows drained unscored.",
        s.stream.window_drops,
    );
    histogram(
        &mut o,
        "mfod_stream_batch_assembly_ns",
        "Oldest-window arrival-to-flush latency (ns).",
        "",
        &s.stream.batch_assembly,
    );
    histogram(
        &mut o,
        "mfod_stream_batch_score_ns",
        "Micro-batch scoring time (ns).",
        "",
        &s.stream.batch_score,
    );

    counter(
        &mut o,
        "mfod_registry_swaps_total",
        "Successful model swaps.",
        s.registry.swaps,
    );
    gauge_u64(
        &mut o,
        "mfod_registry_generation",
        "Generation of the active model.",
        s.registry.generation,
    );
    counter(
        &mut o,
        "mfod_registry_sweeps_total",
        "Directory sweeps executed.",
        s.registry.sweeps,
    );
    counter(
        &mut o,
        "mfod_registry_rejected_total",
        "Snapshot files rejected across sweeps.",
        s.registry.rejected,
    );
    counter(
        &mut o,
        "mfod_registry_unchanged_total",
        "Files skipped as byte-identical to the active model.",
        s.registry.unchanged,
    );
    histogram(
        &mut o,
        "mfod_registry_sweep_ns",
        "Directory sweep time (ns).",
        "",
        &s.registry.sweep_time,
    );
    histogram(
        &mut o,
        "mfod_registry_install_ns",
        "Model install time (ns).",
        "",
        &s.registry.install_time,
    );

    counter(
        &mut o,
        "mfod_persist_sections_eager_total",
        "Sections decoded through the eager tier.",
        s.persist.sections_eager,
    );
    counter(
        &mut o,
        "mfod_persist_sections_lazy_total",
        "Sections decoded lazily on first touch.",
        s.persist.sections_lazy,
    );
    histogram(
        &mut o,
        "mfod_persist_first_touch_ns",
        "Lazy first-touch section decode time (ns).",
        "",
        &s.persist.first_touch,
    );
    gauge_u64(
        &mut o,
        "mfod_persist_mapped_bytes",
        "Bytes currently memory-mapped by snapshot buffers.",
        s.persist.mapped_bytes,
    );

    counter(
        &mut o,
        "mfod_errors_total",
        "Typed errors surfaced by the serving path.",
        s.failures.errors,
    );
    counter(
        &mut o,
        "mfod_sheds_total",
        "Windows shed by the overload policy.",
        s.failures.sheds,
    );
    counter(
        &mut o,
        "mfod_deadline_misses_total",
        "Micro-batch flushes that exceeded their deadline.",
        s.failures.deadline_misses,
    );
    counter(
        &mut o,
        "mfod_quarantined_sessions_total",
        "Sessions quarantined after repeated flush failures.",
        s.failures.quarantined_sessions,
    );
    gauge_u64(
        &mut o,
        "mfod_registry_backoff_level",
        "Current watcher backoff level.",
        s.failures.registry_backoff,
    );

    counter(
        &mut o,
        "mfod_store_promotions_total",
        "Generations promoted through the transactional store.",
        s.store.promotions,
    );
    counter(
        &mut o,
        "mfod_store_recoveries_total",
        "Store opens that ran log-replay recovery.",
        s.store.recoveries,
    );
    counter(
        &mut o,
        "mfod_store_rollbacks_total",
        "Rollbacks re-pointing the active generation.",
        s.store.rollbacks,
    );
    counter(
        &mut o,
        "mfod_store_quarantined_total",
        "Artifacts moved into quarantine (never deleted).",
        s.store.quarantined,
    );
    counter(
        &mut o,
        "mfod_store_fsck_issues_total",
        "Issues reported by fsck walks.",
        s.store.fsck_issues,
    );

    family(
        &mut o,
        "mfod_phase_exclusive_ns",
        "Exclusive pipeline-phase time (ns).",
        "histogram",
    );
    for p in &s.phases {
        histogram_series(
            &mut o,
            "mfod_phase_exclusive_ns",
            &format!("phase=\"{}\"", p.phase.name()),
            &p.exclusive,
        );
    }

    let w = &s.window;
    gauge_f64(
        &mut o,
        "mfod_window_windows_per_sec",
        "Windows scored per second (rolling window).",
        w.windows_per_sec,
    );
    gauge_f64(
        &mut o,
        "mfod_window_swaps_per_min",
        "Model swaps per minute (rolling window).",
        w.swaps_per_min,
    );
    gauge_f64(
        &mut o,
        "mfod_window_rejected_per_min",
        "Sweep-rejected snapshot files per minute (rolling window).",
        w.rejected_per_min,
    );
    gauge_f64(
        &mut o,
        "mfod_window_sheds_per_sec",
        "Windows shed per second (rolling window).",
        w.sheds_per_sec,
    );
    gauge_f64(
        &mut o,
        "mfod_window_errors_per_sec",
        "Serving errors per second (rolling window).",
        w.errors_per_sec,
    );
    histogram(
        &mut o,
        "mfod_window_batch_score_ns",
        "Rolling micro-batch scoring time (ns).",
        "",
        &w.batch_score,
    );
    histogram(
        &mut o,
        "mfod_window_score_dist_nanoscore",
        "Rolling outlier-score distribution (score x 1e9).",
        "",
        &w.score_dist,
    );

    let j = journal::stats();
    counter(
        &mut o,
        "mfod_journal_recorded_total",
        "Journal events recorded.",
        j.recorded,
    );
    counter(
        &mut o,
        "mfod_journal_dropped_total",
        "Journal events dropped (ring full).",
        j.dropped,
    );
    counter(
        &mut o,
        "mfod_journal_emitted_total",
        "Journal events offered while enabled.",
        j.emitted,
    );
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_and_stops_on_drop() {
        let handle = serve("127.0.0.1:0").unwrap();
        let addr = handle.addr();

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"));

        let (head, body) = get(addr, "/metrics");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE mfod_pool_maps_total counter"));

        let (_, body) = get(addr, "/report");
        assert!(body.contains("mfod-obs report"));

        let (head, body) = get(addr, "/trace");
        assert!(head.contains("application/json"));
        assert!(body.starts_with("{\"traceEvents\":["));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        drop(handle);
        // The port is released once the thread has joined.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn exposition_lines_are_well_formed() {
        let body = prometheus_text(&Recorder::snapshot());
        for line in body.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name_and_labels, value) = line.rsplit_once(' ').expect(line);
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
            let name = name_and_labels.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in {line}"
            );
        }
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let h = crate::Histogram::new();
        for v in [1u64, 3, 3, 900] {
            h.record(v);
        }
        let mut out = String::new();
        histogram(&mut out, "t_ns", "test", "", &h.snapshot());
        let buckets: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("t_ns_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{out}");
        assert_eq!(*buckets.last().unwrap(), 4); // +Inf == count
        assert!(out.contains("t_ns_count 4"));
    }
}
