//! Parallel micro-batching: accumulate windows, score them together.
//!
//! Scoring a window costs one smoothing + mapping + detector pass; doing
//! that per window serializes the whole stream. The [`MicroBatcher`]
//! trades a bounded amount of latency (at most `batch_size − 1` windows,
//! or `max_delay` wall-clock) for the right to score a batch across all
//! cores at once.
//!
//! # Failure semantics
//!
//! Every flush failure leaves the batch in the pending queue with its
//! sequence numbers intact, so nothing is ever silently dropped:
//!
//! * a pipeline error (or an injected `stream.flush` fault) surfaces as
//!   [`StreamError::Pipeline`];
//! * a panic inside scoring is caught and surfaces as
//!   [`StreamError::ScorePanicked`] — the batcher stays usable;
//! * with a [`ScoringDeadline`], a flush that overruns its budget surfaces
//!   as [`StreamError::DeadlineExceeded`] — the caller never hangs;
//! * after `max_flush_retries` consecutive failures the batcher refuses
//!   further attempts with [`StreamError::FlushRetriesExhausted`] until
//!   the batch is drained via [`MicroBatcher::take_pending`] (the
//!   `OnlineScorer` turns this into a quarantine).
//!
//! Backpressure is explicit: with `max_pending` set, a submission that
//! finds the queue at capacity is handled per [`OverloadPolicy`] — shed
//! loudly ([`StreamError::Overloaded`]), drop the oldest pending window,
//! or block on an inline flush. Shed windows are counted, never silently
//! discarded.

use crate::error::StreamError;
use crate::stats::StreamStats;
use crate::Result;
use mfod::{FittedPipeline, FrozenScorer};
use mfod_fda::RawSample;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Which smoothing path the batcher scores through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Per-sample cross-validated re-selection — bit-for-bit identical to
    /// the offline [`FittedPipeline::score`] on the same windows.
    #[default]
    Exact,
    /// Frozen training-time basis selection with cached smoothing
    /// operators ([`FrozenScorer`]) — the high-throughput serving path;
    /// scores agree with `Exact` up to the selection difference.
    Frozen,
}

/// A wall-clock budget for one flush: scoring that overruns it is
/// abandoned (the batch returns to the pending queue) instead of wedging
/// the stream.
///
/// Deadline-bounded flushes score on a helper thread and wait at most
/// `budget`; a timed-out scoring run finishes in the background and its
/// result is discarded, so a single slow batch costs one thread, never a
/// hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringDeadline {
    /// Maximum wall-clock time one flush may spend scoring.
    pub budget: Duration,
}

impl ScoringDeadline {
    /// A deadline with the given budget.
    pub fn new(budget: Duration) -> Self {
        ScoringDeadline { budget }
    }
}

/// What to do when a submission finds the pending queue at `max_pending`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Shed the **new** window: count it and return
    /// [`StreamError::Overloaded`] without enqueueing (no sequence number
    /// is consumed). The default — loud and lossless for already-queued
    /// work.
    #[default]
    Reject,
    /// Shed the **oldest** pending window (its sequence number stays
    /// consumed) and enqueue the new one — freshest-data-wins streams.
    DropOldest,
    /// Flush inline to make room, then enqueue. If that flush fails the
    /// new window is shed and the flush error propagates.
    Block,
}

/// Micro-batching policy.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Score as soon as this many windows are pending.
    pub batch_size: usize,
    /// Also score when the oldest pending window has waited this long
    /// (checked on submission; streams stalled forever should call
    /// [`MicroBatcher::flush`]).
    pub max_delay: Option<Duration>,
    /// Smoothing path (see [`ScoringMode`]).
    pub mode: ScoringMode,
    /// Wall-clock budget per flush (see [`ScoringDeadline`]); `None`
    /// scores inline with no bound.
    pub deadline: Option<ScoringDeadline>,
    /// Pending-queue capacity; `None` is unbounded. Meaningful values are
    /// ≥ `batch_size`, since the queue only grows past `batch_size` while
    /// flushes are failing.
    pub max_pending: Option<usize>,
    /// What to do when a submission finds the queue at `max_pending`.
    pub overload: OverloadPolicy,
    /// Consecutive flush failures tolerated before the batcher gives up
    /// on the batch: once the initial attempt plus `max_flush_retries`
    /// retries have all failed, every further flush returns
    /// [`StreamError::FlushRetriesExhausted`] until the batch is drained.
    pub max_flush_retries: u32,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            batch_size: 16,
            max_delay: None,
            mode: ScoringMode::Exact,
            deadline: None,
            max_pending: None,
            overload: OverloadPolicy::Reject,
            max_flush_retries: 3,
        }
    }
}

/// Why a flush happened — reported to the global recorder (`mfod-obs`)
/// per flushed batch when `MFOD_OBS=1`.
#[derive(Debug, Clone, Copy)]
enum FlushReason {
    /// The batch reached `batch_size`.
    Full,
    /// The oldest pending window exceeded `max_delay`.
    Expired,
    /// An explicit [`MicroBatcher::flush`] (incl. end-of-stream finish
    /// and [`OverloadPolicy::Block`] room-making flushes).
    Manual,
}

/// A scored window: `seq` is the 0-based submission index, so callers can
/// join scores back to their windows across flush boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredWindow {
    /// Submission sequence number (0-based, gap-free).
    pub seq: u64,
    /// Outlyingness score; **higher = more outlying**.
    pub score: f64,
}

/// How one scoring attempt ended (internal).
enum ScoreOutcome {
    Scores(Vec<f64>),
    Failed(StreamError),
    Panicked(String),
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one scoring attempt with panic containment. The injected-fault
/// hooks live here so they ride the same catch/deadline machinery as
/// real failures.
fn score_attempt(
    pipeline: &FittedPipeline,
    frozen: Option<&FrozenScorer>,
    mode: ScoringMode,
    batch: &[RawSample],
) -> ScoreOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        mfod_faultline::stall(mfod_faultline::points::STREAM_DELAY);
        if mfod_faultline::should_fire(mfod_faultline::points::STREAM_FLUSH) {
            return Err(StreamError::Pipeline(mfod::MfodError::Pipeline(
                "injected fault: stream.flush".into(),
            )));
        }
        match (mode, frozen) {
            (ScoringMode::Exact, _) => pipeline.par_score(batch).map_err(Into::into),
            (ScoringMode::Frozen, Some(f)) => f.par_score(batch).map_err(Into::into),
            (ScoringMode::Frozen, None) => unreachable!("checked at construction"),
        }
    }));
    match result {
        Ok(Ok(scores)) => ScoreOutcome::Scores(scores),
        Ok(Err(e)) => ScoreOutcome::Failed(e),
        Err(payload) => ScoreOutcome::Panicked(panic_message(payload)),
    }
}

/// Accumulates windows and scores them in parallel through a shared
/// [`FittedPipeline`].
///
/// Invariants, property-tested in `tests/proptests.rs`:
/// * every submitted window is scored exactly once, or drained/shed with
///   an explicit count — never silently lost;
/// * results preserve submission order within and across flushes;
/// * `seq` numbers are assigned at submission, consecutive from 0.
pub struct MicroBatcher {
    pipeline: Arc<FittedPipeline>,
    frozen: Option<Arc<FrozenScorer>>,
    config: BatchConfig,
    stats: Arc<StreamStats>,
    /// Pending windows and their submission-assigned sequence numbers,
    /// kept in lockstep (`pending[i]` ↔ `pending_seqs[i]`).
    pending: Vec<RawSample>,
    pending_seqs: Vec<u64>,
    next_seq: u64,
    oldest_pending: Option<Instant>,
    consecutive_failures: u32,
    last_error: Option<String>,
}

impl std::fmt::Debug for MicroBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher")
            .field("label", &self.pipeline.label())
            .field("batch_size", &self.config.batch_size)
            .field("mode", &self.config.mode)
            .field("pending", &self.pending.len())
            .field("consecutive_failures", &self.consecutive_failures)
            .finish()
    }
}

impl MicroBatcher {
    /// Creates a batcher scoring through `pipeline`.
    ///
    /// For [`ScoringMode::Frozen`], `window_ts` (the observation times of
    /// every incoming window) must be provided so the frozen operators can
    /// be built once, up front.
    pub fn new(
        pipeline: Arc<FittedPipeline>,
        config: BatchConfig,
        window_ts: Option<&[f64]>,
        stats: Arc<StreamStats>,
    ) -> Result<Self> {
        if config.batch_size == 0 {
            return Err(StreamError::Config("batch_size must be >= 1".into()));
        }
        if config.max_pending == Some(0) {
            return Err(StreamError::Config("max_pending must be >= 1".into()));
        }
        if let Some(deadline) = config.deadline {
            if deadline.budget.is_zero() {
                return Err(StreamError::Config(
                    "scoring deadline budget must be > 0".into(),
                ));
            }
        }
        let frozen = match config.mode {
            ScoringMode::Exact => None,
            ScoringMode::Frozen => {
                let ts = window_ts.ok_or_else(|| {
                    StreamError::Config("frozen mode needs the window observation times".into())
                })?;
                Some(Arc::new(FrozenScorer::new(Arc::clone(&pipeline), ts)?))
            }
        };
        Ok(MicroBatcher {
            pipeline,
            frozen,
            config,
            stats,
            pending: Vec::new(),
            pending_seqs: Vec::new(),
            next_seq: 0,
            oldest_pending: None,
            consecutive_failures: 0,
            last_error: None,
        })
    }

    /// The batching policy.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// The shared pipeline this batcher scores through.
    pub(crate) fn pipeline(&self) -> &Arc<FittedPipeline> {
        &self.pipeline
    }

    /// The frozen scorer, when running in [`ScoringMode::Frozen`].
    pub(crate) fn frozen(&self) -> Option<&FrozenScorer> {
        self.frozen.as_deref()
    }

    /// Windows waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Consecutive flush failures on the current pending batch (reset by
    /// a successful flush or [`MicroBatcher::take_pending`]).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Removes and returns every pending window **without scoring them**.
    /// Their sequence numbers (assigned at submission) stay consumed, so
    /// later scores remain aligned with submission order. This is the
    /// recovery path after a failed [`MicroBatcher::flush`]: inspect the
    /// returned windows, resubmit the good ones. Also resets the
    /// consecutive-failure counter.
    pub fn take_pending(&mut self) -> Vec<RawSample> {
        self.take_pending_tagged()
            .into_iter()
            .map(|(_, w)| w)
            .collect()
    }

    /// Like [`MicroBatcher::take_pending`] but keeps each window paired
    /// with its sequence number — the quarantine path needs both.
    pub(crate) fn take_pending_tagged(&mut self) -> Vec<(u64, RawSample)> {
        self.oldest_pending = None;
        self.consecutive_failures = 0;
        self.last_error = None;
        let seqs = std::mem::take(&mut self.pending_seqs);
        let batch = std::mem::take(&mut self.pending);
        if let Some(m) = mfod_obs::active() {
            m.stream_window_drops.add(batch.len() as u64);
        }
        seqs.into_iter().zip(batch).collect()
    }

    /// Counts `n` shed windows — load shedding is always loud.
    fn shed(&self, n: u64) {
        self.stats.record_sheds(n);
        if let Some(m) = mfod_obs::active() {
            m.sheds_total.add(n);
            m.win_sheds.add(n);
        }
    }

    /// Submits one window. Returns the scores released by this submission:
    /// empty unless the batch filled up (or `max_delay` expired), in which
    /// case every pending window is scored and returned in submission
    /// order. Under [`OverloadPolicy::Block`] a submission at capacity
    /// also releases the scores of the room-making flush.
    pub fn submit(&mut self, window: RawSample) -> Result<Vec<ScoredWindow>> {
        let mut released = Vec::new();
        if let Some(cap) = self.config.max_pending {
            if self.pending.len() >= cap {
                match self.config.overload {
                    OverloadPolicy::Reject => {
                        self.shed(1);
                        return Err(StreamError::Overloaded {
                            pending: self.pending.len(),
                            cap,
                        });
                    }
                    OverloadPolicy::DropOldest => {
                        let excess = self.pending.len() + 1 - cap;
                        self.pending.drain(..excess);
                        self.pending_seqs.drain(..excess);
                        self.shed(excess as u64);
                    }
                    OverloadPolicy::Block => match self.flush_with_reason(FlushReason::Manual) {
                        Ok(scored) => released = scored,
                        Err(e) => {
                            self.shed(1);
                            return Err(e);
                        }
                    },
                }
            }
        }
        if self.pending.is_empty() {
            self.oldest_pending = Some(Instant::now());
        }
        self.pending.push(window);
        self.pending_seqs.push(self.next_seq);
        self.next_seq += 1;
        let full = self.pending.len() >= self.config.batch_size;
        let expired = match (self.config.max_delay, self.oldest_pending) {
            (Some(limit), Some(oldest)) => oldest.elapsed() >= limit,
            _ => false,
        };
        if full || expired {
            released.extend(self.flush_with_reason(if full {
                FlushReason::Full
            } else {
                FlushReason::Expired
            })?);
        }
        Ok(released)
    }

    /// Scores every pending window now (end-of-stream or latency-critical
    /// paths). Safe to call with nothing pending.
    ///
    /// On a scoring error the batch stays pending — nothing is dropped and
    /// sequence numbers stay aligned with submission order, so the caller
    /// can retry (or drain and inspect the offending windows). After the
    /// initial attempt plus `max_flush_retries` retries have all failed,
    /// the batcher stops retrying (see
    /// [`StreamError::FlushRetriesExhausted`]).
    pub fn flush(&mut self) -> Result<Vec<ScoredWindow>> {
        self.flush_with_reason(FlushReason::Manual)
    }

    /// Records one flush failure and restores the batch to the pending
    /// queue.
    fn flush_failed(
        &mut self,
        batch: Vec<RawSample>,
        seqs: Vec<u64>,
        err: StreamError,
    ) -> StreamError {
        self.pending = batch;
        self.pending_seqs = seqs;
        self.consecutive_failures += 1;
        self.last_error = Some(err.to_string());
        if let Some(m) = mfod_obs::active() {
            m.errors_total.add(1);
            m.win_errors.add(1);
        }
        err
    }

    fn flush_with_reason(&mut self, reason: FlushReason) -> Result<Vec<ScoredWindow>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        if self.consecutive_failures > self.config.max_flush_retries {
            if let Some(m) = mfod_obs::active() {
                m.errors_total.add(1);
                m.win_errors.add(1);
            }
            return Err(StreamError::FlushRetriesExhausted {
                attempts: self.consecutive_failures,
                last_error: self.last_error.clone().unwrap_or_default(),
            });
        }
        let obs = mfod_obs::active();
        // Batch assembly latency: how long the oldest window waited from
        // submission to the start of this flush.
        let assembly = match (obs, self.oldest_pending) {
            (Some(_), Some(oldest)) => Some(oldest.elapsed()),
            _ => None,
        };
        let batch = std::mem::take(&mut self.pending);
        let seqs = std::mem::take(&mut self.pending_seqs);
        let started = Instant::now();
        let outcome = match self.config.deadline {
            None => score_attempt(&self.pipeline, self.frozen(), self.config.mode, &batch),
            Some(deadline) => {
                // Score on a helper thread and wait at most `budget`. A
                // timed-out run keeps scoring in the background; its
                // result is discarded when the channel sender drops.
                let (tx, rx) = mpsc::channel();
                let pipeline = Arc::clone(&self.pipeline);
                let frozen = self.frozen.clone();
                let mode = self.config.mode;
                let thread_batch = batch.clone();
                std::thread::spawn(move || {
                    let _ = tx.send(score_attempt(
                        &pipeline,
                        frozen.as_deref(),
                        mode,
                        &thread_batch,
                    ));
                });
                match rx.recv_timeout(deadline.budget) {
                    Ok(outcome) => outcome,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        self.stats.record_deadline_miss();
                        if let Some(m) = obs {
                            m.deadline_misses.add(1);
                        }
                        let pending = batch.len();
                        return Err(self.flush_failed(
                            batch,
                            seqs,
                            StreamError::DeadlineExceeded {
                                budget: deadline.budget,
                                pending,
                            },
                        ));
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        ScoreOutcome::Panicked("scoring thread died".into())
                    }
                }
            }
        };
        let scores = match outcome {
            ScoreOutcome::Scores(scores) => scores,
            ScoreOutcome::Failed(e) => return Err(self.flush_failed(batch, seqs, e)),
            ScoreOutcome::Panicked(msg) => {
                return Err(self.flush_failed(batch, seqs, StreamError::ScorePanicked(msg)))
            }
        };
        self.oldest_pending = None;
        self.consecutive_failures = 0;
        self.last_error = None;
        let elapsed = started.elapsed();
        self.stats.record_batch(batch.len() as u64, elapsed);
        if let Some(m) = obs {
            match reason {
                FlushReason::Full => m.stream_flush_full.add(1),
                FlushReason::Expired => m.stream_flush_expired.add(1),
                FlushReason::Manual => m.stream_flush_manual.add(1),
            }
            if let Some(a) = assembly {
                m.stream_batch_assembly.record_duration(a);
            }
            m.stream_batch_score.record_duration(elapsed);
            // Windowed telemetry: throughput rate, rolling flush-latency
            // quantiles, and the score-distribution sketch the drift
            // monitor reads. Sketch quantization never feeds back into
            // the scores handed to callers.
            m.win_stream_windows.add(scores.len() as u64);
            m.win_batch_score.record_duration(elapsed);
            for &score in &scores {
                m.win_score_dist
                    .record(mfod_obs::window::quantize_score(score));
            }
        }
        Ok(seqs
            .into_iter()
            .zip(scores)
            .map(|(seq, score)| ScoredWindow { seq, score })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_fixtures::{sine_pipeline, FixtureConfig};

    fn tiny_pipeline() -> (Arc<FittedPipeline>, Vec<RawSample>, Vec<f64>) {
        sine_pipeline(&FixtureConfig::default())
    }

    #[test]
    fn flushes_exactly_at_batch_size() {
        let (fitted, windows, _) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 5,
                ..Default::default()
            },
            None,
            Arc::clone(&stats),
        )
        .unwrap();
        let mut released = Vec::new();
        for w in windows.iter().cloned() {
            released.extend(b.submit(w).unwrap());
        }
        // 12 windows, batch 5 → flushes at 5 and 10, 2 pending
        assert_eq!(released.len(), 10);
        assert_eq!(b.pending(), 2);
        released.extend(b.flush().unwrap());
        assert_eq!(released.len(), 12);
        let seqs: Vec<u64> = released.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..12).collect::<Vec<_>>());
        assert!(released.iter().all(|r| r.score.is_finite()));
        let snap = stats.snapshot();
        assert_eq!(snap.windows, 12);
        assert_eq!(snap.batches, 3);
        assert!(b.flush().unwrap().is_empty());
    }

    #[test]
    fn batched_scores_match_offline_scores() {
        let (fitted, windows, _) = tiny_pipeline();
        let offline = fitted.score(&windows).unwrap();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            Arc::clone(&fitted),
            BatchConfig {
                batch_size: 7,
                ..Default::default()
            },
            None,
            stats,
        )
        .unwrap();
        let mut scored = Vec::new();
        for w in windows.iter().cloned() {
            scored.extend(b.submit(w).unwrap());
        }
        scored.extend(b.flush().unwrap());
        assert_eq!(scored.len(), offline.len());
        for (s, o) in scored.iter().zip(&offline) {
            assert_eq!(s.score.to_bits(), o.to_bits(), "seq {}", s.seq);
        }
    }

    #[test]
    fn frozen_mode_scores_through_frozen_operators() {
        let (fitted, windows, ts) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            Arc::clone(&fitted),
            BatchConfig {
                batch_size: 4,
                mode: ScoringMode::Frozen,
                ..Default::default()
            },
            Some(&ts),
            stats,
        )
        .unwrap();
        let mut scored = Vec::new();
        for w in windows.iter().cloned() {
            scored.extend(b.submit(w).unwrap());
        }
        scored.extend(b.flush().unwrap());
        assert_eq!(scored.len(), windows.len());
        assert!(scored.iter().all(|r| r.score.is_finite()));
        // Frozen construction without ts must fail.
        assert!(MicroBatcher::new(
            fitted,
            BatchConfig {
                mode: ScoringMode::Frozen,
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .is_err());
    }

    #[test]
    fn max_delay_forces_early_flush() {
        let (fitted, windows, _) = tiny_pipeline();
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 1000,
                max_delay: Some(Duration::ZERO),
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .unwrap();
        // With a zero delay budget every submission flushes immediately.
        let r1 = b.submit(windows[0].clone()).unwrap();
        assert_eq!(r1.len(), 1);
        let r2 = b.submit(windows[1].clone()).unwrap();
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].seq, 1);
    }

    #[test]
    fn failed_flush_keeps_the_batch_and_seq_alignment() {
        let (fitted, windows, ts) = tiny_pipeline();
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 100,
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .unwrap();
        assert!(b.submit(windows[0].clone()).unwrap().is_empty());
        assert!(b.submit(windows[1].clone()).unwrap().is_empty());
        // A window from a foreign domain poisons the batch.
        let foreign = RawSample::new(
            ts.iter().map(|t| t * 5.0).collect(),
            windows[0].channels.clone(),
        )
        .unwrap();
        assert!(b.submit(foreign).unwrap().is_empty());
        // Scoring fails, but nothing is dropped.
        assert!(b.flush().is_err());
        assert_eq!(b.pending(), 3);
        assert_eq!(b.consecutive_failures(), 1);
        // Recovery: drain the poisoned batch (seqs 0..3 stay consumed) and
        // resubmit the good windows — their scores land on fresh seqs.
        let drained = b.take_pending();
        assert_eq!(drained.len(), 3);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.consecutive_failures(), 0);
        for w in &drained[..2] {
            assert!(b.submit(w.clone()).unwrap().is_empty());
        }
        let rescored = b.flush().unwrap();
        assert_eq!(rescored.len(), 2);
        assert_eq!(rescored[0].seq, 3);
        assert_eq!(rescored[1].seq, 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (fitted, _, _) = tiny_pipeline();
        assert!(MicroBatcher::new(
            Arc::clone(&fitted),
            BatchConfig {
                batch_size: 0,
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .is_err());
        assert!(MicroBatcher::new(
            Arc::clone(&fitted),
            BatchConfig {
                max_pending: Some(0),
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .is_err());
        assert!(MicroBatcher::new(
            fitted,
            BatchConfig {
                deadline: Some(ScoringDeadline::new(Duration::ZERO)),
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .is_err());
    }

    #[test]
    fn deadline_miss_restores_pending_then_recovers() {
        let _guard = mfod_faultline::serial_guard();
        let (fitted, windows, _) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 100,
                deadline: Some(ScoringDeadline::new(Duration::from_millis(10))),
                ..Default::default()
            },
            None,
            Arc::clone(&stats),
        )
        .unwrap();
        for w in &windows[..3] {
            assert!(b.submit(w.clone()).unwrap().is_empty());
        }
        // One injected 100ms stall inside scoring blows the 10ms budget.
        mfod_faultline::install(
            mfod_faultline::FaultPlan::new(31).rule(
                mfod_faultline::points::STREAM_DELAY,
                mfod_faultline::FaultRule::always()
                    .times(1)
                    .delay(Duration::from_millis(100)),
            ),
        );
        let err = b.flush().unwrap_err();
        mfod_faultline::disarm();
        assert!(
            matches!(err, StreamError::DeadlineExceeded { pending: 3, .. }),
            "{err}"
        );
        // The batch is back in the queue; the fault is exhausted, so a
        // retry succeeds with the original sequence numbers.
        assert_eq!(b.pending(), 3);
        assert_eq!(b.consecutive_failures(), 1);
        assert_eq!(stats.snapshot().deadline_misses, 1);
        let scored = b.flush().unwrap();
        assert_eq!(
            scored.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn injected_flush_faults_exhaust_into_typed_give_up() {
        let _guard = mfod_faultline::serial_guard();
        let (fitted, windows, _) = tiny_pipeline();
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 100,
                max_flush_retries: 1,
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .unwrap();
        for w in &windows[..2] {
            assert!(b.submit(w.clone()).unwrap().is_empty());
        }
        mfod_faultline::install(mfod_faultline::FaultPlan::new(32).rule(
            mfod_faultline::points::STREAM_FLUSH,
            mfod_faultline::FaultRule::always(),
        ));
        // Initial attempt + 1 retry fail with the injected pipeline error…
        for attempt in 1..=2u32 {
            let err = b.flush().unwrap_err();
            assert!(err.to_string().contains("injected fault"), "{err}");
            assert_eq!(b.consecutive_failures(), attempt);
            assert_eq!(b.pending(), 2);
        }
        // …then the batcher gives up without touching the pipeline again.
        let err = b.flush().unwrap_err();
        assert!(
            matches!(
                &err,
                StreamError::FlushRetriesExhausted { attempts: 2, last_error }
                    if last_error.contains("injected fault")
            ),
            "{err}"
        );
        let report = mfod_faultline::disarm().unwrap();
        // Give-up short-circuits: only the two real attempts hit the hook.
        assert_eq!(report.hits(mfod_faultline::points::STREAM_FLUSH), 2);
        // Draining resets the batcher; the windows rescore on fresh seqs.
        let drained = b.take_pending();
        assert_eq!(drained.len(), 2);
        for w in drained {
            b.submit(w).unwrap();
        }
        let scored = b.flush().unwrap();
        assert_eq!(scored.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn reject_policy_sheds_the_new_window() {
        let (fitted, windows, _) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 100,
                max_pending: Some(2),
                overload: OverloadPolicy::Reject,
                ..Default::default()
            },
            None,
            Arc::clone(&stats),
        )
        .unwrap();
        b.submit(windows[0].clone()).unwrap();
        b.submit(windows[1].clone()).unwrap();
        let err = b.submit(windows[2].clone()).unwrap_err();
        assert!(
            matches!(err, StreamError::Overloaded { pending: 2, cap: 2 }),
            "{err}"
        );
        assert_eq!(stats.snapshot().sheds, 1);
        // The shed window consumed no seq: the queued pair scores 0 and 1,
        // and the next submission gets seq 2.
        let scored = b.flush().unwrap();
        assert_eq!(scored.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![0, 1]);
        b.submit(windows[3].clone()).unwrap();
        let scored = b.flush().unwrap();
        assert_eq!(scored[0].seq, 2);
    }

    #[test]
    fn drop_oldest_policy_keeps_the_freshest_windows() {
        let (fitted, windows, _) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 100,
                max_pending: Some(2),
                overload: OverloadPolicy::DropOldest,
                ..Default::default()
            },
            None,
            Arc::clone(&stats),
        )
        .unwrap();
        b.submit(windows[0].clone()).unwrap();
        b.submit(windows[1].clone()).unwrap();
        // At capacity: the oldest window (seq 0) is shed, the new one
        // enqueues as seq 2.
        assert!(b.submit(windows[2].clone()).unwrap().is_empty());
        assert_eq!(b.pending(), 2);
        assert_eq!(stats.snapshot().sheds, 1);
        let scored = b.flush().unwrap();
        assert_eq!(scored.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn block_policy_flushes_inline_to_make_room() {
        let _guard = mfod_faultline::serial_guard();
        let (fitted, windows, _) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 100,
                max_pending: Some(2),
                overload: OverloadPolicy::Block,
                ..Default::default()
            },
            None,
            Arc::clone(&stats),
        )
        .unwrap();
        b.submit(windows[0].clone()).unwrap();
        b.submit(windows[1].clone()).unwrap();
        // At capacity the submission flushes inline: seqs 0 and 1 come
        // back from the blocking flush, the new window enqueues as seq 2.
        let released = b.submit(windows[2].clone()).unwrap();
        assert_eq!(
            released.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(b.pending(), 1);
        assert_eq!(stats.snapshot().sheds, 0);
        // If the room-making flush fails, the new window is shed and the
        // flush error propagates; the queued windows survive.
        b.submit(windows[3].clone()).unwrap();
        mfod_faultline::install(mfod_faultline::FaultPlan::new(33).rule(
            mfod_faultline::points::STREAM_FLUSH,
            mfod_faultline::FaultRule::always().times(1),
        ));
        let err = b.submit(windows[4].clone()).unwrap_err();
        mfod_faultline::disarm();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert_eq!(b.pending(), 2);
        assert_eq!(stats.snapshot().sheds, 1);
        let scored = b.flush().unwrap();
        assert_eq!(scored.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![2, 3]);
    }
}
