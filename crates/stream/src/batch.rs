//! Parallel micro-batching: accumulate windows, score them together.
//!
//! Scoring a window costs one smoothing + mapping + detector pass; doing
//! that per window serializes the whole stream. The [`MicroBatcher`]
//! trades a bounded amount of latency (at most `batch_size − 1` windows,
//! or `max_delay` wall-clock) for the right to score a batch across all
//! cores at once.

use crate::error::StreamError;
use crate::stats::StreamStats;
use crate::Result;
use mfod::{FittedPipeline, FrozenScorer};
use mfod_fda::RawSample;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which smoothing path the batcher scores through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Per-sample cross-validated re-selection — bit-for-bit identical to
    /// the offline [`FittedPipeline::score`] on the same windows.
    #[default]
    Exact,
    /// Frozen training-time basis selection with cached smoothing
    /// operators ([`FrozenScorer`]) — the high-throughput serving path;
    /// scores agree with `Exact` up to the selection difference.
    Frozen,
}

/// Micro-batching policy.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Score as soon as this many windows are pending.
    pub batch_size: usize,
    /// Also score when the oldest pending window has waited this long
    /// (checked on submission; streams stalled forever should call
    /// [`MicroBatcher::flush`]).
    pub max_delay: Option<Duration>,
    /// Smoothing path (see [`ScoringMode`]).
    pub mode: ScoringMode,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            batch_size: 16,
            max_delay: None,
            mode: ScoringMode::Exact,
        }
    }
}

/// Why a flush happened — reported to the global recorder (`mfod-obs`)
/// per flushed batch when `MFOD_OBS=1`.
#[derive(Debug, Clone, Copy)]
enum FlushReason {
    /// The batch reached `batch_size`.
    Full,
    /// The oldest pending window exceeded `max_delay`.
    Expired,
    /// An explicit [`MicroBatcher::flush`] (incl. end-of-stream finish).
    Manual,
}

/// A scored window: `seq` is the 0-based submission index, so callers can
/// join scores back to their windows across flush boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredWindow {
    /// Submission sequence number (0-based, gap-free).
    pub seq: u64,
    /// Outlyingness score; **higher = more outlying**.
    pub score: f64,
}

/// Accumulates windows and scores them in parallel through a shared
/// [`FittedPipeline`].
///
/// Invariants, property-tested in `tests/proptests.rs`:
/// * every submitted window is scored exactly once;
/// * results preserve submission order within and across flushes;
/// * `seq` numbers are consecutive from 0.
pub struct MicroBatcher {
    pipeline: Arc<FittedPipeline>,
    frozen: Option<FrozenScorer>,
    config: BatchConfig,
    stats: Arc<StreamStats>,
    pending: Vec<RawSample>,
    next_seq: u64,
    oldest_pending: Option<Instant>,
}

impl std::fmt::Debug for MicroBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher")
            .field("label", &self.pipeline.label())
            .field("batch_size", &self.config.batch_size)
            .field("mode", &self.config.mode)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl MicroBatcher {
    /// Creates a batcher scoring through `pipeline`.
    ///
    /// For [`ScoringMode::Frozen`], `window_ts` (the observation times of
    /// every incoming window) must be provided so the frozen operators can
    /// be built once, up front.
    pub fn new(
        pipeline: Arc<FittedPipeline>,
        config: BatchConfig,
        window_ts: Option<&[f64]>,
        stats: Arc<StreamStats>,
    ) -> Result<Self> {
        if config.batch_size == 0 {
            return Err(StreamError::Config("batch_size must be >= 1".into()));
        }
        let frozen = match config.mode {
            ScoringMode::Exact => None,
            ScoringMode::Frozen => {
                let ts = window_ts.ok_or_else(|| {
                    StreamError::Config("frozen mode needs the window observation times".into())
                })?;
                Some(FrozenScorer::new(Arc::clone(&pipeline), ts)?)
            }
        };
        Ok(MicroBatcher {
            pipeline,
            frozen,
            config,
            stats,
            pending: Vec::new(),
            next_seq: 0,
            oldest_pending: None,
        })
    }

    /// The batching policy.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// The shared pipeline this batcher scores through.
    pub(crate) fn pipeline(&self) -> &Arc<FittedPipeline> {
        &self.pipeline
    }

    /// The frozen scorer, when running in [`ScoringMode::Frozen`].
    pub(crate) fn frozen(&self) -> Option<&FrozenScorer> {
        self.frozen.as_ref()
    }

    /// Windows waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Removes and returns every pending window **without scoring them**,
    /// advancing the sequence counter past them so later scores stay
    /// aligned with submission order. This is the recovery path after a
    /// failed [`MicroBatcher::flush`]: inspect the returned windows,
    /// resubmit the good ones.
    pub fn take_pending(&mut self) -> Vec<RawSample> {
        self.oldest_pending = None;
        let batch = std::mem::take(&mut self.pending);
        self.next_seq += batch.len() as u64;
        if let Some(m) = mfod_obs::active() {
            m.stream_window_drops.add(batch.len() as u64);
        }
        batch
    }

    /// Submits one window. Returns the scores released by this submission:
    /// empty unless the batch filled up (or `max_delay` expired), in which
    /// case every pending window is scored and returned in submission
    /// order.
    pub fn submit(&mut self, window: RawSample) -> Result<Vec<ScoredWindow>> {
        if self.pending.is_empty() {
            self.oldest_pending = Some(Instant::now());
        }
        self.pending.push(window);
        let full = self.pending.len() >= self.config.batch_size;
        let expired = match (self.config.max_delay, self.oldest_pending) {
            (Some(limit), Some(oldest)) => oldest.elapsed() >= limit,
            _ => false,
        };
        if full || expired {
            self.flush_with_reason(if full {
                FlushReason::Full
            } else {
                FlushReason::Expired
            })
        } else {
            Ok(Vec::new())
        }
    }

    /// Scores every pending window now (end-of-stream or latency-critical
    /// paths). Safe to call with nothing pending.
    ///
    /// On a scoring error the batch stays pending — nothing is dropped and
    /// sequence numbers stay aligned with submission order, so the caller
    /// can retry (or drain and inspect the offending windows).
    pub fn flush(&mut self) -> Result<Vec<ScoredWindow>> {
        self.flush_with_reason(FlushReason::Manual)
    }

    fn flush_with_reason(&mut self, reason: FlushReason) -> Result<Vec<ScoredWindow>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        let obs = mfod_obs::active();
        // Batch assembly latency: how long the oldest window waited from
        // submission to the start of this flush.
        let assembly = match (obs, self.oldest_pending) {
            (Some(_), Some(oldest)) => Some(oldest.elapsed()),
            _ => None,
        };
        let batch = std::mem::take(&mut self.pending);
        let started = Instant::now();
        let result = match (&self.config.mode, &self.frozen) {
            (ScoringMode::Exact, _) => self.pipeline.par_score(&batch).map_err(Into::into),
            (ScoringMode::Frozen, Some(frozen)) => frozen.par_score(&batch).map_err(Into::into),
            (ScoringMode::Frozen, None) => unreachable!("checked at construction"),
        };
        let scores = match result {
            Ok(scores) => scores,
            Err(e) => {
                self.pending = batch;
                return Err(e);
            }
        };
        self.oldest_pending = None;
        let elapsed = started.elapsed();
        self.stats.record_batch(batch.len() as u64, elapsed);
        if let Some(m) = obs {
            match reason {
                FlushReason::Full => m.stream_flush_full.add(1),
                FlushReason::Expired => m.stream_flush_expired.add(1),
                FlushReason::Manual => m.stream_flush_manual.add(1),
            }
            if let Some(a) = assembly {
                m.stream_batch_assembly.record_duration(a);
            }
            m.stream_batch_score.record_duration(elapsed);
        }
        let first_seq = self.next_seq;
        self.next_seq += batch.len() as u64;
        Ok(scores
            .into_iter()
            .enumerate()
            .map(|(i, score)| ScoredWindow {
                seq: first_seq + i as u64,
                score,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfod_fixtures::{sine_pipeline, FixtureConfig};

    fn tiny_pipeline() -> (Arc<FittedPipeline>, Vec<RawSample>, Vec<f64>) {
        sine_pipeline(&FixtureConfig::default())
    }

    #[test]
    fn flushes_exactly_at_batch_size() {
        let (fitted, windows, _) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 5,
                ..Default::default()
            },
            None,
            Arc::clone(&stats),
        )
        .unwrap();
        let mut released = Vec::new();
        for w in windows.iter().cloned() {
            released.extend(b.submit(w).unwrap());
        }
        // 12 windows, batch 5 → flushes at 5 and 10, 2 pending
        assert_eq!(released.len(), 10);
        assert_eq!(b.pending(), 2);
        released.extend(b.flush().unwrap());
        assert_eq!(released.len(), 12);
        let seqs: Vec<u64> = released.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..12).collect::<Vec<_>>());
        assert!(released.iter().all(|r| r.score.is_finite()));
        let snap = stats.snapshot();
        assert_eq!(snap.windows, 12);
        assert_eq!(snap.batches, 3);
        assert!(b.flush().unwrap().is_empty());
    }

    #[test]
    fn batched_scores_match_offline_scores() {
        let (fitted, windows, _) = tiny_pipeline();
        let offline = fitted.score(&windows).unwrap();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            Arc::clone(&fitted),
            BatchConfig {
                batch_size: 7,
                ..Default::default()
            },
            None,
            stats,
        )
        .unwrap();
        let mut scored = Vec::new();
        for w in windows.iter().cloned() {
            scored.extend(b.submit(w).unwrap());
        }
        scored.extend(b.flush().unwrap());
        assert_eq!(scored.len(), offline.len());
        for (s, o) in scored.iter().zip(&offline) {
            assert_eq!(s.score.to_bits(), o.to_bits(), "seq {}", s.seq);
        }
    }

    #[test]
    fn frozen_mode_scores_through_frozen_operators() {
        let (fitted, windows, ts) = tiny_pipeline();
        let stats = Arc::new(StreamStats::new());
        let mut b = MicroBatcher::new(
            Arc::clone(&fitted),
            BatchConfig {
                batch_size: 4,
                mode: ScoringMode::Frozen,
                ..Default::default()
            },
            Some(&ts),
            stats,
        )
        .unwrap();
        let mut scored = Vec::new();
        for w in windows.iter().cloned() {
            scored.extend(b.submit(w).unwrap());
        }
        scored.extend(b.flush().unwrap());
        assert_eq!(scored.len(), windows.len());
        assert!(scored.iter().all(|r| r.score.is_finite()));
        // Frozen construction without ts must fail.
        assert!(MicroBatcher::new(
            fitted,
            BatchConfig {
                mode: ScoringMode::Frozen,
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .is_err());
    }

    #[test]
    fn max_delay_forces_early_flush() {
        let (fitted, windows, _) = tiny_pipeline();
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 1000,
                max_delay: Some(Duration::ZERO),
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .unwrap();
        // With a zero delay budget every submission flushes immediately.
        let r1 = b.submit(windows[0].clone()).unwrap();
        assert_eq!(r1.len(), 1);
        let r2 = b.submit(windows[1].clone()).unwrap();
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].seq, 1);
    }

    #[test]
    fn failed_flush_keeps_the_batch_and_seq_alignment() {
        let (fitted, windows, ts) = tiny_pipeline();
        let mut b = MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 100,
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .unwrap();
        assert!(b.submit(windows[0].clone()).unwrap().is_empty());
        assert!(b.submit(windows[1].clone()).unwrap().is_empty());
        // A window from a foreign domain poisons the batch.
        let foreign = RawSample::new(
            ts.iter().map(|t| t * 5.0).collect(),
            windows[0].channels.clone(),
        )
        .unwrap();
        assert!(b.submit(foreign).unwrap().is_empty());
        // Scoring fails, but nothing is dropped.
        assert!(b.flush().is_err());
        assert_eq!(b.pending(), 3);
        // Recovery: drain the poisoned batch (consuming seqs 0..3) and
        // resubmit the good windows — their scores land on fresh seqs.
        let drained = b.take_pending();
        assert_eq!(drained.len(), 3);
        assert_eq!(b.pending(), 0);
        for w in &drained[..2] {
            assert!(b.submit(w.clone()).unwrap().is_empty());
        }
        let rescored = b.flush().unwrap();
        assert_eq!(rescored.len(), 2);
        assert_eq!(rescored[0].seq, 3);
        assert_eq!(rescored[1].seq, 4);
    }

    #[test]
    fn zero_batch_size_rejected() {
        let (fitted, _, _) = tiny_pipeline();
        assert!(MicroBatcher::new(
            fitted,
            BatchConfig {
                batch_size: 0,
                ..Default::default()
            },
            None,
            Arc::new(StreamStats::new()),
        )
        .is_err());
    }
}
