//! # mfod-stream
//!
//! Online scoring for the geometric-aggregation outlier pipeline: the
//! serving-side complement of the paper's offline experiment protocol.
//!
//! The batch pipeline (`mfod`) fits per-channel penalized smoothing, a
//! geometric mapping and a multivariate detector in one offline pass. A
//! production system instead sees an unbounded stream of multichannel
//! observations and must keep scoring without refitting. This crate
//! provides that layer:
//!
//! * [`WindowBuffer`] — per-channel ring buffers turning the observation
//!   stream into fixed-length [`mfod_fda::RawSample`] windows (tumbling,
//!   overlapping or gapped, via `stride`);
//! * [`MicroBatcher`] — accumulates windows and scores each micro-batch in
//!   parallel through a shared `Arc<FittedPipeline>`, in
//!   [`ScoringMode::Exact`] (bit-for-bit parity with offline scoring) or
//!   [`ScoringMode::Frozen`] (cached smoothing operators, the
//!   high-throughput path);
//! * [`ThresholdCalibrator`] — converts raw outlyingness scores into
//!   binary alarms at the empirical `1 − contamination` quantile of the
//!   training scores;
//! * [`OnlineScorer`] — the push-based facade composing all three, with
//!   running throughput/latency counters ([`StreamStats`]).
//!
//! The serving path is supervised: flushes can be deadline-bounded
//! ([`ScoringDeadline`] — a slow batch returns
//! [`StreamError::DeadlineExceeded`], never a hang), backpressure is
//! explicit ([`OverloadPolicy`] + shed counters), scoring panics are
//! contained, and a batch that keeps failing is quarantined
//! ([`QuarantineReport`]) so the stream stays live. Fault hooks from
//! `mfod-faultline` let tests drive all of these paths deterministically;
//! disarmed they cost one relaxed atomic load.
//!
//! ## Quickstart
//!
//! ```
//! use mfod::prelude::*;
//! use mfod_stream::{BatchConfig, OnlineScorer, StreamConfig, WindowConfig};
//! use std::sync::Arc;
//!
//! // Fit the offline pipeline on simulated ECG beats.
//! let data = EcgSimulator::new(EcgConfig { m: 24, ..Default::default() })
//!     .unwrap()
//!     .generate(10, 2, 7)
//!     .unwrap()
//!     .augment_with(0, |y| y * y)
//!     .unwrap();
//! let pipeline = GeomOutlierPipeline::new(
//!     PipelineConfig::fast(),
//!     Arc::new(Curvature),
//!     Arc::new(IsolationForest { n_trees: 20, ..Default::default() }),
//! );
//! let fitted = pipeline.fit(data.samples()).unwrap().into_shared();
//! let train_scores = fitted.score(data.samples()).unwrap();
//!
//! // Serve: one beat-length tumbling window, micro-batches of 4.
//! let ts = data.samples()[0].t.clone();
//! let mut scorer = OnlineScorer::new(
//!     Arc::clone(&fitted),
//!     StreamConfig {
//!         window: WindowConfig::tumbling(ts, 2),
//!         batch: BatchConfig { batch_size: 4, ..Default::default() },
//!     },
//! )
//! .unwrap();
//! scorer.calibrate(&train_scores, 0.15).unwrap();
//!
//! // Stream observations; verdicts pop out as micro-batches fill.
//! let mut verdicts = Vec::new();
//! for sample in data.samples() {
//!     for j in 0..sample.t.len() {
//!         let obs = [sample.channels[0][j], sample.channels[1][j]];
//!         verdicts.extend(scorer.push(&obs).unwrap());
//!     }
//! }
//! verdicts.extend(scorer.finish().unwrap());
//! assert_eq!(verdicts.len(), data.len());
//! assert!(scorer.stats().windows_per_sec().unwrap() > 0.0);
//! ```

pub mod batch;
pub mod calibrate;
pub mod engine;
pub mod error;
pub mod stats;
pub mod window;

pub use batch::{
    BatchConfig, MicroBatcher, OverloadPolicy, ScoredWindow, ScoringDeadline, ScoringMode,
};
pub use calibrate::ThresholdCalibrator;
pub use engine::{OnlineScorer, QuarantineReport, StreamConfig, Verdict};
pub use error::StreamError;
pub use stats::{StatsSnapshot, StreamStats};
pub use window::{WindowBuffer, WindowConfig};

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, StreamError>;
