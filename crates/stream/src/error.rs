//! Error type of the online scoring subsystem.

use std::fmt;

/// Errors raised by the streaming layer.
#[derive(Debug)]
pub enum StreamError {
    /// Invalid streaming configuration (window geometry, batch sizing, …).
    Config(String),
    /// An observation does not fit the configured stream shape.
    Ingest(String),
    /// The underlying pipeline rejected or failed on a window.
    Pipeline(mfod::MfodError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Config(msg) => write!(f, "stream config: {msg}"),
            StreamError::Ingest(msg) => write!(f, "stream ingest: {msg}"),
            // No prefix: the MfodError Display already names its stage
            // ("pipeline: …"), and doubling it reads badly.
            StreamError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mfod::MfodError> for StreamError {
    fn from(e: mfod::MfodError) -> Self {
        StreamError::Pipeline(e)
    }
}

impl From<mfod_fda::FdaError> for StreamError {
    fn from(e: mfod_fda::FdaError) -> Self {
        StreamError::Pipeline(mfod::MfodError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let c = StreamError::Config("bad".into());
        assert!(c.to_string().contains("bad"));
        assert!(c.source().is_none());
        let p = StreamError::from(mfod::MfodError::Pipeline("boom".into()));
        assert!(p.to_string().contains("boom"));
        assert!(p.source().is_some());
    }
}
