//! Error type of the online scoring subsystem.

use std::fmt;

/// Errors raised by the streaming layer.
#[derive(Debug)]
pub enum StreamError {
    /// Invalid streaming configuration (window geometry, batch sizing, …).
    Config(String),
    /// An observation does not fit the configured stream shape.
    Ingest(String),
    /// The underlying pipeline rejected or failed on a window.
    Pipeline(mfod::MfodError),
    /// A deadline-bounded flush did not finish within its budget. The
    /// batch is back in the pending queue, untouched — retry, raise the
    /// budget, or drain via `take_pending`.
    DeadlineExceeded {
        /// The configured scoring budget.
        budget: std::time::Duration,
        /// Windows restored to the pending queue.
        pending: usize,
    },
    /// The pending queue hit `max_pending` under
    /// [`OverloadPolicy::Reject`](crate::OverloadPolicy::Reject); the
    /// submitted window was shed (never enqueued, no sequence number
    /// consumed).
    Overloaded {
        /// Windows pending when the submission was rejected.
        pending: usize,
        /// The configured `max_pending` cap.
        cap: usize,
    },
    /// Scoring panicked. The batch is back in the pending queue; the
    /// scorer itself stays usable.
    ScorePanicked(String),
    /// `max_flush_retries` consecutive flushes failed on this batch; the
    /// batcher refuses further attempts until the pending windows are
    /// drained (`take_pending`) or, at the
    /// [`OnlineScorer`](crate::OnlineScorer) level, quarantined.
    FlushRetriesExhausted {
        /// Consecutive failed flush attempts.
        attempts: u32,
        /// Display of the error from the final attempt.
        last_error: String,
    },
    /// The scorer quarantined its pending batch after exhausting flush
    /// retries. The windows are retrievable via
    /// `OnlineScorer::drain_quarantine`; the scorer stays live.
    Quarantined {
        /// Windows moved into quarantine.
        windows: usize,
        /// Sequence number of the first quarantined window.
        first_seq: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Config(msg) => write!(f, "stream config: {msg}"),
            StreamError::Ingest(msg) => write!(f, "stream ingest: {msg}"),
            // No prefix: the MfodError Display already names its stage
            // ("pipeline: …"), and doubling it reads badly.
            StreamError::Pipeline(e) => write!(f, "{e}"),
            StreamError::DeadlineExceeded { budget, pending } => write!(
                f,
                "stream deadline: scoring exceeded the {budget:?} budget \
                 ({pending} windows back in the pending queue)"
            ),
            StreamError::Overloaded { pending, cap } => write!(
                f,
                "stream overload: {pending} windows pending at cap {cap}, submission shed"
            ),
            StreamError::ScorePanicked(msg) => {
                write!(f, "stream scoring panicked: {msg}")
            }
            StreamError::FlushRetriesExhausted {
                attempts,
                last_error,
            } => write!(
                f,
                "stream flush gave up after {attempts} consecutive failures \
                 (last: {last_error}); drain or quarantine the pending batch"
            ),
            StreamError::Quarantined { windows, first_seq } => write!(
                f,
                "stream quarantine: {windows} windows (first seq {first_seq}) \
                 moved to quarantine after repeated flush failures"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mfod::MfodError> for StreamError {
    fn from(e: mfod::MfodError) -> Self {
        StreamError::Pipeline(e)
    }
}

impl From<mfod_fda::FdaError> for StreamError {
    fn from(e: mfod_fda::FdaError) -> Self {
        StreamError::Pipeline(mfod::MfodError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let c = StreamError::Config("bad".into());
        assert!(c.to_string().contains("bad"));
        assert!(c.source().is_none());
        let p = StreamError::from(mfod::MfodError::Pipeline("boom".into()));
        assert!(p.to_string().contains("boom"));
        assert!(p.source().is_some());
    }

    #[test]
    fn failure_variants_display_their_context() {
        let d = StreamError::DeadlineExceeded {
            budget: std::time::Duration::from_millis(5),
            pending: 3,
        };
        assert!(d.to_string().contains("5ms"), "{d}");
        assert!(d.to_string().contains("3 windows"), "{d}");
        assert!(d.source().is_none());
        let o = StreamError::Overloaded { pending: 9, cap: 8 };
        assert!(o.to_string().contains("cap 8"), "{o}");
        let s = StreamError::ScorePanicked("kaboom".into());
        assert!(s.to_string().contains("kaboom"), "{s}");
        let r = StreamError::FlushRetriesExhausted {
            attempts: 4,
            last_error: "io".into(),
        };
        assert!(r.to_string().contains("4 consecutive"), "{r}");
        let q = StreamError::Quarantined {
            windows: 2,
            first_seq: 7,
        };
        assert!(q.to_string().contains("first seq 7"), "{q}");
    }
}
