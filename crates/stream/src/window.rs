//! Sliding-window ingestion: turning an unbounded multichannel sample
//! stream into fixed-length [`RawSample`] windows.

use crate::error::StreamError;
use crate::Result;
use mfod_fda::RawSample;
use std::collections::VecDeque;

/// Geometry of the sliding window.
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Observations per emitted window; must equal the number of
    /// observation times the downstream pipeline was trained on.
    pub window_len: usize,
    /// Hop between consecutive window starts: `stride == window_len`
    /// tumbles (every observation in exactly one window), `stride <
    /// window_len` overlaps, `stride > window_len` samples with gaps.
    pub stride: usize,
    /// Channels per observation.
    pub channels: usize,
    /// Observation times assigned to every emitted window (length
    /// `window_len`, strictly increasing) — normally the training grid of
    /// the fitted pipeline.
    pub ts: Vec<f64>,
}

impl WindowConfig {
    /// Tumbling windows (`stride = window_len`) over `ts`.
    pub fn tumbling(ts: Vec<f64>, channels: usize) -> Self {
        WindowConfig {
            window_len: ts.len(),
            stride: ts.len(),
            channels,
            ts,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.window_len < 2 {
            return Err(StreamError::Config(format!(
                "window_len must be >= 2, got {}",
                self.window_len
            )));
        }
        if self.stride == 0 {
            return Err(StreamError::Config("stride must be >= 1".into()));
        }
        if self.channels == 0 {
            return Err(StreamError::Config("need at least one channel".into()));
        }
        if self.ts.len() != self.window_len {
            return Err(StreamError::Config(format!(
                "ts has {} entries, window_len is {}",
                self.ts.len(),
                self.window_len
            )));
        }
        if !self.ts.iter().all(|t| t.is_finite()) {
            return Err(StreamError::Config("window ts must be finite".into()));
        }
        if self.ts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StreamError::Config(
                "window ts must be strictly increasing".into(),
            ));
        }
        Ok(())
    }
}

/// Per-channel ring buffers that assemble the observation stream into
/// overlapping (or gapped) fixed-length windows.
///
/// Invariants, property-tested in `tests/proptests.rs`:
/// * window `w` contains exactly the observations
///   `[w·stride, w·stride + window_len)` of the stream, per channel;
/// * every window is emitted exactly once, in stream order;
/// * memory is `O(channels × window_len)` regardless of stream length.
#[derive(Debug, Clone)]
pub struct WindowBuffer {
    config: WindowConfig,
    /// Last `window_len` observations per channel.
    rings: Vec<VecDeque<f64>>,
    /// Observations ingested so far.
    pushed: u64,
    /// Windows emitted so far.
    emitted: u64,
}

impl WindowBuffer {
    /// Creates an empty buffer for the given geometry.
    pub fn new(config: WindowConfig) -> Result<Self> {
        config.validate()?;
        let rings = vec![VecDeque::with_capacity(config.window_len + 1); config.channels];
        Ok(WindowBuffer {
            config,
            rings,
            pushed: 0,
            emitted: 0,
        })
    }

    /// The configured geometry.
    pub fn config(&self) -> &WindowConfig {
        &self.config
    }

    /// Observations ingested so far.
    pub fn observations(&self) -> u64 {
        self.pushed
    }

    /// Windows emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.emitted
    }

    /// Ingests one multichannel observation (`obs[k]` = channel `k`).
    ///
    /// Returns the completed window, if this observation completed one: at
    /// most one window can complete per observation, since windows are
    /// `window_len` long and start every `stride` observations.
    pub fn push(&mut self, obs: &[f64]) -> Result<Option<RawSample>> {
        if obs.len() != self.config.channels {
            return Err(StreamError::Ingest(format!(
                "observation has {} channels, stream is configured for {}",
                obs.len(),
                self.config.channels
            )));
        }
        // Injected fault: corrupt one channel value to NaN *before* the
        // finiteness gate, modeling upstream data corruption. The gate
        // below must reject it and leave the buffer untouched.
        let poisoned: Option<Vec<f64>> =
            mfod_faultline::should_fire(mfod_faultline::points::STREAM_POISON).then(|| {
                let mut p = obs.to_vec();
                p[0] = f64::NAN;
                p
            });
        let obs: &[f64] = poisoned.as_deref().unwrap_or(obs);
        if !obs.iter().all(|v| v.is_finite()) {
            return Err(StreamError::Ingest(
                "observation values must be finite".into(),
            ));
        }
        for (ring, &v) in self.rings.iter_mut().zip(obs) {
            if ring.len() == self.config.window_len {
                ring.pop_front();
            }
            ring.push_back(v);
        }
        self.pushed += 1;

        let len = self.config.window_len as u64;
        let stride = self.config.stride as u64;
        if self.pushed >= len && (self.pushed - len).is_multiple_of(stride) {
            let channels: Vec<Vec<f64>> = self
                .rings
                .iter()
                .map(|r| r.iter().copied().collect())
                .collect();
            let sample =
                RawSample::new(self.config.ts.clone(), channels).map_err(mfod::MfodError::from)?;
            self.emitted += 1;
            return Ok(Some(sample));
        }
        Ok(None)
    }

    /// Ingests a whole slice of observations (`chunk[i]` = observation
    /// `i`), collecting every window completed along the way.
    ///
    /// The chunk is validated **atomically up front**: if any observation
    /// is malformed, nothing is ingested and the buffer is unchanged — a
    /// bad observation deep in the chunk cannot discard windows completed
    /// by earlier ones.
    pub fn push_chunk(&mut self, chunk: &[Vec<f64>]) -> Result<Vec<RawSample>> {
        for (i, obs) in chunk.iter().enumerate() {
            if obs.len() != self.config.channels {
                return Err(StreamError::Ingest(format!(
                    "observation {i} has {} channels, stream is configured for {}",
                    obs.len(),
                    self.config.channels
                )));
            }
            if !obs.iter().all(|v| v.is_finite()) {
                return Err(StreamError::Ingest(format!(
                    "observation {i} has non-finite values"
                )));
            }
        }
        let mut out = Vec::new();
        for obs in chunk {
            if let Some(w) = self.push(obs)? {
                out.push(w);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_len: usize, stride: usize, channels: usize) -> WindowConfig {
        let ts = (0..window_len)
            .map(|j| j as f64 / (window_len - 1) as f64)
            .collect();
        WindowConfig {
            window_len,
            stride,
            channels,
            ts,
        }
    }

    #[test]
    fn tumbling_reconstructs_stream() {
        let mut buf = WindowBuffer::new(cfg(4, 4, 2)).unwrap();
        let mut windows = Vec::new();
        for i in 0..12 {
            let obs = [i as f64, 100.0 + i as f64];
            if let Some(w) = buf.push(&obs).unwrap() {
                windows.push(w);
            }
        }
        assert_eq!(windows.len(), 3);
        assert_eq!(buf.windows_emitted(), 3);
        assert_eq!(buf.observations(), 12);
        for (w_idx, w) in windows.iter().enumerate() {
            let (_, ch0) = w.channel(0).unwrap();
            let (_, ch1) = w.channel(1).unwrap();
            for j in 0..4 {
                assert_eq!(ch0[j], (w_idx * 4 + j) as f64);
                assert_eq!(ch1[j], 100.0 + (w_idx * 4 + j) as f64);
            }
        }
    }

    #[test]
    fn overlapping_windows_share_observations() {
        let mut buf = WindowBuffer::new(cfg(5, 2, 1)).unwrap();
        let mut starts = Vec::new();
        for i in 0..11 {
            if let Some(w) = buf.push(&[i as f64]).unwrap() {
                let (_, ys) = w.channel(0).unwrap();
                starts.push(ys[0] as usize);
                assert_eq!(ys.len(), 5);
                for (j, &y) in ys.iter().enumerate() {
                    assert_eq!(y as usize, ys[0] as usize + j);
                }
            }
        }
        assert_eq!(starts, vec![0, 2, 4, 6]);
    }

    #[test]
    fn gapped_stride_skips_observations() {
        let mut buf = WindowBuffer::new(cfg(3, 5, 1)).unwrap();
        let mut starts = Vec::new();
        for i in 0..14 {
            if let Some(w) = buf.push(&[i as f64]).unwrap() {
                starts.push(w.channel(0).unwrap().1[0] as usize);
            }
        }
        // windows start at 0, 5, 10 and need 3 observations each
        assert_eq!(starts, vec![0, 5, 10]);
    }

    #[test]
    fn push_chunk_equals_push_loop() {
        let chunk: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let mut a = WindowBuffer::new(cfg(6, 3, 1)).unwrap();
        let from_chunk = a.push_chunk(&chunk).unwrap();
        let mut b = WindowBuffer::new(cfg(6, 3, 1)).unwrap();
        let mut from_loop = Vec::new();
        for obs in &chunk {
            if let Some(w) = b.push(obs).unwrap() {
                from_loop.push(w);
            }
        }
        assert_eq!(from_chunk.len(), from_loop.len());
        for (x, y) in from_chunk.iter().zip(&from_loop) {
            assert_eq!(x.channels, y.channels);
        }
    }

    #[test]
    fn push_chunk_rejects_bad_chunks_atomically() {
        let mut buf = WindowBuffer::new(cfg(4, 4, 1)).unwrap();
        // 10 observations, windows complete at 4 and 8 — but observation 9
        // is NaN, so nothing may be ingested at all.
        let mut chunk: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        chunk[9][0] = f64::NAN;
        assert!(buf.push_chunk(&chunk).is_err());
        assert_eq!(buf.observations(), 0);
        assert_eq!(buf.windows_emitted(), 0);
        // wrong channel count mid-chunk: same atomicity
        let bad_shape = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(buf.push_chunk(&bad_shape).is_err());
        assert_eq!(buf.observations(), 0);
        // a clean chunk afterwards behaves as if nothing happened
        chunk[9][0] = 9.0;
        let windows = buf.push_chunk(&chunk).unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].channel(0).unwrap().1, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(windows[1].channel(0).unwrap().1, &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn windows_carry_the_configured_ts() {
        let ts: Vec<f64> = vec![0.0, 0.25, 0.5, 1.0];
        let mut buf = WindowBuffer::new(WindowConfig {
            window_len: 4,
            stride: 4,
            channels: 1,
            ts: ts.clone(),
        })
        .unwrap();
        let mut got = None;
        for i in 0..4 {
            got = buf.push(&[i as f64]).unwrap();
        }
        assert_eq!(got.unwrap().t, ts);
    }

    #[test]
    fn rejects_bad_configs_and_inputs() {
        assert!(WindowBuffer::new(cfg(1, 1, 1)).is_err());
        assert!(WindowBuffer::new(cfg(4, 0, 1)).is_err());
        assert!(WindowBuffer::new(cfg(4, 4, 0)).is_err());
        let mut bad_ts = cfg(4, 4, 1);
        bad_ts.ts[2] = bad_ts.ts[1]; // not strictly increasing
        assert!(WindowBuffer::new(bad_ts).is_err());
        let mut nan_ts = cfg(4, 4, 1);
        nan_ts.ts[0] = f64::NAN;
        assert!(WindowBuffer::new(nan_ts).is_err());
        let mut short = cfg(4, 4, 1);
        short.ts.pop();
        assert!(WindowBuffer::new(short).is_err());

        let mut buf = WindowBuffer::new(cfg(4, 4, 2)).unwrap();
        assert!(buf.push(&[1.0]).is_err());
        assert!(buf.push(&[1.0, f64::INFINITY]).is_err());
        // errors must not corrupt the count
        assert_eq!(buf.observations(), 0);
    }

    #[test]
    fn injected_poison_is_rejected_like_real_corruption() {
        let _guard = mfod_faultline::serial_guard();
        let mut buf = WindowBuffer::new(cfg(4, 4, 2)).unwrap();
        mfod_faultline::install(mfod_faultline::FaultPlan::new(51).rule(
            mfod_faultline::points::STREAM_POISON,
            mfod_faultline::FaultRule::always().times(1),
        ));
        // The poisoned observation is rejected by the finiteness gate and
        // the buffer is untouched — exactly like a real NaN push.
        let err = buf.push(&[1.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("finite"), "{err}");
        assert_eq!(buf.observations(), 0);
        assert_eq!(buf.windows_emitted(), 0);
        // With the fault exhausted the same observation ingests cleanly.
        assert!(buf.push(&[1.0, 2.0]).unwrap().is_none());
        assert_eq!(buf.observations(), 1);
        let report = mfod_faultline::disarm().unwrap();
        assert_eq!(report.fires(mfod_faultline::points::STREAM_POISON), 1);
    }

    #[test]
    fn tumbling_constructor() {
        let ts: Vec<f64> = (0..8).map(|j| j as f64).collect();
        let c = WindowConfig::tumbling(ts, 3);
        assert_eq!(c.window_len, 8);
        assert_eq!(c.stride, 8);
        assert_eq!(c.channels, 3);
        assert!(WindowBuffer::new(c).is_ok());
    }
}
