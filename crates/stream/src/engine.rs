//! The end-to-end online scorer: observations in, calibrated verdicts out.
//!
//! # Observability
//!
//! The scorer always maintains its per-instance [`StreamStats`] view
//! (counter snapshot via [`OnlineScorer::stats`], per-batch latency
//! quantiles via [`OnlineScorer::latency_snapshot`]). Additionally, with
//! the environment variable `MFOD_OBS=1` the streaming layer reports to
//! the process-wide `mfod-obs` recorder: flush reasons (batch-full /
//! max-delay-expired / manual), window-drop counts from `take_pending`,
//! batch assembly latency and per-batch scoring latency. Set
//! `MFOD_OBS_JSON=<path>` to dump the recorder's full
//! `MetricsSnapshot` as JSON (see `examples/observability.rs`).
//! Instrumentation never changes scores — only what gets counted.

use crate::batch::{BatchConfig, MicroBatcher, ScoredWindow};
use crate::calibrate::ThresholdCalibrator;
use crate::error::StreamError;
use crate::stats::{StatsSnapshot, StreamStats};
use crate::window::{WindowBuffer, WindowConfig};
use crate::Result;
use mfod::FittedPipeline;
use std::sync::Arc;

/// A batch the scorer gave up on: after the initial flush attempt plus
/// `max_flush_retries` retries all failed, the pending windows are moved
/// aside so the stream can keep scoring. Retrieve reports via
/// [`OnlineScorer::drain_quarantine`]; the windows can be inspected and
/// resubmitted (they will score under fresh sequence numbers).
#[derive(Debug, Clone)]
pub struct QuarantineReport {
    /// Sequence number of the first quarantined window.
    pub first_seq: u64,
    /// The quarantined windows, in submission order.
    pub windows: Vec<mfod_fda::RawSample>,
    /// Consecutive flush failures that triggered the quarantine.
    pub attempts: u32,
    /// Display of the error from the final flush attempt.
    pub error: String,
}

/// Full streaming configuration: window geometry + batching policy.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Sliding-window geometry.
    pub window: WindowConfig,
    /// Micro-batching policy.
    pub batch: BatchConfig,
}

/// A scored window with its calibrated verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Window sequence number (0-based, gap-free).
    pub seq: u64,
    /// Raw outlyingness score; **higher = more outlying**.
    pub score: f64,
    /// Whether the calibrated threshold flags this window (always `false`
    /// when the scorer is uncalibrated).
    pub is_outlier: bool,
}

/// Composes [`WindowBuffer`] → [`MicroBatcher`] → [`ThresholdCalibrator`]
/// behind a single push-based interface, sharing one `Arc<FittedPipeline>`
/// across all scoring threads.
pub struct OnlineScorer {
    buffer: WindowBuffer,
    batcher: MicroBatcher,
    calibrator: Option<ThresholdCalibrator>,
    stats: Arc<StreamStats>,
    quarantine: Vec<QuarantineReport>,
}

impl std::fmt::Debug for OnlineScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineScorer")
            .field("window_len", &self.buffer.config().window_len)
            .field("stride", &self.buffer.config().stride)
            .field("batcher", &self.batcher)
            .field("calibrated", &self.calibrator.is_some())
            .finish()
    }
}

impl OnlineScorer {
    /// Builds an uncalibrated scorer (verdicts report `is_outlier: false`;
    /// use [`OnlineScorer::with_calibrator`] or
    /// [`OnlineScorer::calibrate`] for alarms).
    pub fn new(pipeline: Arc<FittedPipeline>, config: StreamConfig) -> Result<Self> {
        // Fail at construction, not on the first batch: a window geometry
        // the pipeline would reject wedges the stream otherwise.
        if let (Some(&first), Some(&last)) = (config.window.ts.first(), config.window.ts.last()) {
            if !pipeline.accepts_domain((first, last)) {
                let (a, b) = pipeline.domain();
                return Err(crate::error::StreamError::Config(format!(
                    "window ts span [{first}, {last}] differs from the pipeline's training \
                     domain [{a}, {b}]"
                )));
            }
        }
        let trained_channels = pipeline.selected_bases().len();
        if config.window.channels != trained_channels {
            return Err(crate::error::StreamError::Config(format!(
                "window is configured for {} channels, pipeline was trained on {}",
                config.window.channels, trained_channels
            )));
        }
        let stats = Arc::new(StreamStats::new());
        let batcher = MicroBatcher::new(
            pipeline,
            config.batch.clone(),
            Some(&config.window.ts),
            Arc::clone(&stats),
        )?;
        let buffer = WindowBuffer::new(config.window)?;
        Ok(OnlineScorer {
            buffer,
            batcher,
            calibrator: None,
            stats,
            quarantine: Vec::new(),
        })
    }

    /// Attaches a pre-built calibrator.
    pub fn with_calibrator(mut self, calibrator: ThresholdCalibrator) -> Self {
        self.calibrator = Some(calibrator);
        self
    }

    /// Calibrates the alarm threshold from training scores (see
    /// [`ThresholdCalibrator::from_scores`]).
    ///
    /// The scores must come from the same scoring path this scorer serves
    /// — for [`crate::ScoringMode::Frozen`] prefer
    /// [`OnlineScorer::calibrate_from_samples`], which guarantees that.
    pub fn calibrate(&mut self, train_scores: &[f64], contamination: f64) -> Result<()> {
        self.calibrator = Some(ThresholdCalibrator::from_scores(
            train_scores,
            contamination,
        )?);
        Ok(())
    }

    /// Calibrates by scoring `train` through the **same path this scorer
    /// serves** (exact or frozen), so the threshold always matches the
    /// score distribution of the verdicts it will emit.
    pub fn calibrate_from_samples(
        &mut self,
        train: &[mfod_fda::RawSample],
        contamination: f64,
    ) -> Result<()> {
        let calibrator = match self.batcher.frozen() {
            Some(frozen) => ThresholdCalibrator::fit_frozen(frozen, train, contamination)?,
            None => ThresholdCalibrator::fit(self.batcher.pipeline(), train, contamination)?,
        };
        self.calibrator = Some(calibrator);
        Ok(())
    }

    /// The calibrator, if any.
    pub fn calibrator(&self) -> Option<&ThresholdCalibrator> {
        self.calibrator.as_ref()
    }

    /// Ingests one multichannel observation; returns the verdicts released
    /// by any micro-batch this observation completed.
    ///
    /// When the batcher has exhausted its flush retries on a poisoned
    /// batch, the batch is **quarantined** instead of wedging the stream:
    /// the pending windows move into a [`QuarantineReport`], this call
    /// returns [`StreamError::Quarantined`] once, and subsequent pushes
    /// score normally.
    pub fn push(&mut self, obs: &[f64]) -> Result<Vec<Verdict>> {
        let window = self.buffer.push(obs)?;
        // Count only after validation, so the counter agrees with
        // `WindowBuffer::observations` when pushes are rejected.
        self.stats.record_observation();
        match window {
            None => Ok(Vec::new()),
            Some(window) => {
                let scored = self
                    .batcher
                    .submit(window)
                    .map_err(|e| self.quarantine_on_give_up(e))?;
                Ok(self.apply_calibration(scored))
            }
        }
    }

    /// Flushes every pending window (end of stream). Like
    /// [`OnlineScorer::push`], a batch that has exhausted its flush
    /// retries is quarantined rather than blocking the stream forever.
    pub fn finish(&mut self) -> Result<Vec<Verdict>> {
        let scored = self
            .batcher
            .flush()
            .map_err(|e| self.quarantine_on_give_up(e))?;
        Ok(self.apply_calibration(scored))
    }

    /// Converts a flush give-up into a quarantine: drains the pending
    /// batch into a [`QuarantineReport`] so the scorer stays live. All
    /// other errors pass through unchanged.
    fn quarantine_on_give_up(&mut self, e: StreamError) -> StreamError {
        let StreamError::FlushRetriesExhausted {
            attempts,
            last_error,
        } = e
        else {
            return e;
        };
        let tagged = self.batcher.take_pending_tagged();
        let first_seq = tagged.first().map(|(s, _)| *s).unwrap_or(0);
        let windows: Vec<mfod_fda::RawSample> = tagged.into_iter().map(|(_, w)| w).collect();
        let count = windows.len();
        self.stats.record_quarantine();
        if let Some(m) = mfod_obs::active() {
            m.quarantined_sessions.add(1);
            m.win_errors.add(1);
            mfod_obs::journal::instant("stream.quarantine");
        }
        self.quarantine.push(QuarantineReport {
            first_seq,
            windows,
            attempts,
            error: last_error,
        });
        StreamError::Quarantined {
            windows: count,
            first_seq,
        }
    }

    /// Batches currently sitting in quarantine.
    pub fn quarantined(&self) -> usize {
        self.quarantine.len()
    }

    /// Removes and returns every [`QuarantineReport`] accumulated so far.
    pub fn drain_quarantine(&mut self) -> Vec<QuarantineReport> {
        std::mem::take(&mut self.quarantine)
    }

    /// Counter snapshot (throughput, latency, alarm counts).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Per-batch scoring-latency histogram of this scorer (see
    /// [`StreamStats::latency_snapshot`]): p50/p95/p99 via
    /// [`mfod_obs::HistogramSnapshot::quantile_duration`], `None` before
    /// the first flushed batch.
    pub fn latency_snapshot(&self) -> mfod_obs::HistogramSnapshot {
        self.stats.latency_snapshot()
    }

    /// Windows buffered but not yet scored.
    pub fn pending_windows(&self) -> usize {
        self.batcher.pending()
    }

    /// Removes every pending window without scoring it (see
    /// [`MicroBatcher::take_pending`]) — the recovery path when a flush
    /// keeps failing on a poisoned window. Sequence numbers of the drained
    /// windows are consumed, keeping later verdicts aligned with
    /// submission order.
    pub fn take_pending(&mut self) -> Vec<mfod_fda::RawSample> {
        self.batcher.take_pending()
    }

    fn apply_calibration(&self, scored: Vec<ScoredWindow>) -> Vec<Verdict> {
        let verdicts: Vec<Verdict> = scored
            .into_iter()
            .map(|s| Verdict {
                seq: s.seq,
                score: s.score,
                is_outlier: self
                    .calibrator
                    .map(|c| c.is_alarm(s.score))
                    .unwrap_or(false),
            })
            .collect();
        let alarms = verdicts.iter().filter(|v| v.is_outlier).count() as u64;
        if alarms > 0 {
            self.stats.record_alarms(alarms);
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ScoringMode;
    use mfod_fda::RawSample;
    use mfod_fixtures::{sine_pipeline, FixtureConfig};

    fn setup() -> (Arc<FittedPipeline>, Vec<RawSample>, Vec<f64>) {
        sine_pipeline(&FixtureConfig {
            n_samples: 10,
            ..Default::default()
        })
    }

    #[test]
    fn end_to_end_push_finish() {
        let (fitted, train, ts) = setup();
        let train_scores = fitted.score(&train).unwrap();
        let config = StreamConfig {
            window: WindowConfig::tumbling(ts.clone(), 2),
            batch: BatchConfig {
                batch_size: 3,
                ..Default::default()
            },
        };
        let mut scorer = OnlineScorer::new(Arc::clone(&fitted), config).unwrap();
        scorer.calibrate(&train_scores, 0.2).unwrap();
        assert!(scorer.calibrator().is_some());
        assert!(format!("{scorer:?}").contains("OnlineScorer"));

        // Stream the training samples back through, observation by
        // observation.
        let mut verdicts = Vec::new();
        for sample in &train {
            for j in 0..sample.t.len() {
                let obs = [sample.channels[0][j], sample.channels[1][j]];
                verdicts.extend(scorer.push(&obs).unwrap());
            }
        }
        verdicts.extend(scorer.finish().unwrap());
        assert_eq!(verdicts.len(), train.len());
        assert_eq!(scorer.pending_windows(), 0);

        // Verdict scores must equal the offline scores of the same curves.
        for (v, offline) in verdicts.iter().zip(&train_scores) {
            assert_eq!(v.score.to_bits(), offline.to_bits(), "seq {}", v.seq);
        }
        // Calibration at 20% flags the highest-scoring ~20% of training.
        let alarms = verdicts.iter().filter(|v| v.is_outlier).count();
        assert!((1..=3).contains(&alarms), "alarms {alarms}");
        let snap = scorer.stats();
        assert_eq!(snap.observations, (train.len() * ts.len()) as u64);
        assert_eq!(snap.windows, train.len() as u64);
        assert_eq!(snap.alarms, alarms as u64);
        assert!(snap.windows_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn construction_rejects_mismatched_stream_geometry() {
        let (fitted, _, ts) = setup();
        // window span differs from the training domain
        let stretched: Vec<f64> = ts.iter().map(|t| t * 2.0).collect();
        let err = OnlineScorer::new(
            Arc::clone(&fitted),
            StreamConfig {
                window: WindowConfig::tumbling(stretched, 2),
                batch: BatchConfig::default(),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("training"), "{err}");
        // wrong channel count for the trained pipeline
        let err = OnlineScorer::new(
            Arc::clone(&fitted),
            StreamConfig {
                window: WindowConfig::tumbling(ts.clone(), 3),
                batch: BatchConfig::default(),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("channels"), "{err}");
    }

    #[test]
    fn calibrate_from_samples_follows_the_serving_mode() {
        let (fitted, train, ts) = setup();
        // Exact mode: matches an explicit exact-path calibration.
        let mut exact = OnlineScorer::new(
            Arc::clone(&fitted),
            StreamConfig {
                window: WindowConfig::tumbling(ts.clone(), 2),
                batch: BatchConfig::default(),
            },
        )
        .unwrap();
        exact.calibrate_from_samples(&train, 0.2).unwrap();
        let reference = ThresholdCalibrator::fit(&fitted, &train, 0.2).unwrap();
        assert_eq!(
            exact.calibrator().unwrap().threshold().to_bits(),
            reference.threshold().to_bits()
        );
        // Frozen mode: matches a frozen-path calibration.
        let mut frozen = OnlineScorer::new(
            Arc::clone(&fitted),
            StreamConfig {
                window: WindowConfig::tumbling(ts.clone(), 2),
                batch: BatchConfig {
                    mode: ScoringMode::Frozen,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        frozen.calibrate_from_samples(&train, 0.2).unwrap();
        let frozen_ref = mfod::FrozenScorer::new(Arc::clone(&fitted), &ts).unwrap();
        let reference = ThresholdCalibrator::fit_frozen(&frozen_ref, &train, 0.2).unwrap();
        assert_eq!(
            frozen.calibrator().unwrap().threshold().to_bits(),
            reference.threshold().to_bits()
        );
    }

    #[test]
    fn take_pending_drains_without_scoring() {
        let (fitted, train, ts) = setup();
        let mut scorer = OnlineScorer::new(
            fitted,
            StreamConfig {
                window: WindowConfig::tumbling(ts.clone(), 2),
                batch: BatchConfig {
                    batch_size: 100,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        for j in 0..ts.len() {
            scorer
                .push(&[train[0].channels[0][j], train[0].channels[1][j]])
                .unwrap();
        }
        assert_eq!(scorer.pending_windows(), 1);
        let drained = scorer.take_pending();
        assert_eq!(drained.len(), 1);
        assert_eq!(scorer.pending_windows(), 0);
        assert!(scorer.finish().unwrap().is_empty());
    }

    #[test]
    fn rejected_pushes_do_not_inflate_counters() {
        let (fitted, train, ts) = setup();
        let mut scorer = OnlineScorer::new(
            fitted,
            StreamConfig {
                window: WindowConfig::tumbling(ts, 2),
                batch: BatchConfig::default(),
            },
        )
        .unwrap();
        assert!(scorer.push(&[1.0]).is_err()); // wrong channel count
        assert!(scorer.push(&[1.0, f64::NAN]).is_err()); // non-finite
        assert_eq!(scorer.stats().observations, 0);
        scorer
            .push(&[train[0].channels[0][0], train[0].channels[1][0]])
            .unwrap();
        assert_eq!(scorer.stats().observations, 1);
    }

    #[test]
    fn exhausted_retries_quarantine_and_the_scorer_stays_live() {
        let _guard = mfod_faultline::serial_guard();
        let (fitted, train, ts) = setup();
        let mut scorer = OnlineScorer::new(
            fitted,
            StreamConfig {
                window: WindowConfig::tumbling(ts.clone(), 2),
                batch: BatchConfig {
                    batch_size: 1,
                    max_flush_retries: 0,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        let push_window = |scorer: &mut OnlineScorer, i: usize| {
            let mut out = Ok(Vec::new());
            for j in 0..ts.len() {
                out = scorer.push(&[train[i].channels[0][j], train[i].channels[1][j]]);
            }
            out
        };
        // One injected flush failure; with zero retries the next flush
        // gives up and the engine quarantines the batch.
        mfod_faultline::install(mfod_faultline::FaultPlan::new(41).rule(
            mfod_faultline::points::STREAM_FLUSH,
            mfod_faultline::FaultRule::always().times(1),
        ));
        let err = push_window(&mut scorer, 0).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        let err = push_window(&mut scorer, 1).unwrap_err();
        mfod_faultline::disarm();
        assert!(
            matches!(
                err,
                crate::StreamError::Quarantined {
                    windows: 2,
                    first_seq: 0
                }
            ),
            "{err}"
        );
        // The scorer is still live: the next window scores normally on
        // the seq after the quarantined ones.
        let verdicts = push_window(&mut scorer, 2).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].seq, 2);
        assert!(verdicts[0].score.is_finite());
        assert_eq!(scorer.pending_windows(), 0);
        // The report carries the windows, the attempt count and the
        // underlying error.
        assert_eq!(scorer.quarantined(), 1);
        assert_eq!(scorer.stats().quarantined, 1);
        let reports = scorer.drain_quarantine();
        assert_eq!(scorer.quarantined(), 0);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].first_seq, 0);
        assert_eq!(reports[0].windows.len(), 2);
        assert_eq!(reports[0].attempts, 1);
        assert!(reports[0].error.contains("injected fault"));
        // Quarantined windows survive intact and can be rescored.
        let rescored = scorer
            .batcher
            .pipeline()
            .score(&reports[0].windows)
            .unwrap();
        assert!(rescored.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn uncalibrated_never_alarms() {
        let (fitted, train, ts) = setup();
        let config = StreamConfig {
            window: WindowConfig::tumbling(ts, 2),
            batch: BatchConfig {
                batch_size: 1,
                mode: ScoringMode::Frozen,
                ..Default::default()
            },
        };
        let mut scorer = OnlineScorer::new(fitted, config).unwrap();
        let mut verdicts = Vec::new();
        for sample in &train[..3] {
            for j in 0..sample.t.len() {
                let obs = [sample.channels[0][j], sample.channels[1][j]];
                verdicts.extend(scorer.push(&obs).unwrap());
            }
        }
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| !v.is_outlier));
        assert!(verdicts.iter().all(|v| v.score.is_finite()));
    }
}
