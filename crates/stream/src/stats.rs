//! Running throughput / latency counters for the scoring engine.
//!
//! Since the observability layer landed, [`StreamStats`] is a thin view
//! over `mfod-obs` primitives: the counters are [`mfod_obs::Counter`]s
//! and per-batch scoring latency additionally feeds a per-instance
//! [`mfod_obs::Histogram`], so p50/p95/p99 latency is available from
//! [`StreamStats::latency_snapshot`] without enabling the global
//! recorder. The public [`StatsSnapshot`] shape is unchanged.

use mfod_obs::{Counter, Histogram, HistogramSnapshot};
use std::time::Duration;

/// Lock-free counters shared by the streaming components. All methods are
/// callable concurrently; readers see a consistent-enough snapshot for
/// monitoring purposes (no cross-counter atomicity is promised).
#[derive(Debug, Default)]
pub struct StreamStats {
    observations: Counter,
    windows: Counter,
    batches: Counter,
    alarms: Counter,
    sheds: Counter,
    deadline_misses: Counter,
    quarantined: Counter,
    scoring_nanos: Counter,
    /// Per-batch end-to-end scoring latency in nanoseconds (one sample
    /// per flushed micro-batch).
    latency: Histogram,
}

/// A point-in-time copy of [`StreamStats`].
///
/// Ratio accessors ([`StatsSnapshot::windows_per_sec`],
/// [`StatsSnapshot::mean_latency`], [`StatsSnapshot::mean_batch_size`])
/// uniformly return `None` until the first micro-batch has flushed —
/// there is no zero-sentinel path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Raw multichannel observations ingested.
    pub observations: u64,
    /// Windows scored.
    pub windows: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Windows whose score crossed the calibrated threshold.
    pub alarms: u64,
    /// Windows shed by the overload policy (rejected or dropped-oldest;
    /// see [`crate::OverloadPolicy`]).
    pub sheds: u64,
    /// Flushes abandoned because scoring overran its
    /// [`crate::ScoringDeadline`] budget.
    pub deadline_misses: u64,
    /// Quarantine events: batches moved aside after exhausting flush
    /// retries (one per quarantined batch, not per window).
    pub quarantined: u64,
    /// Total wall-clock time spent scoring micro-batches end to end
    /// (smoothing → mapping → transform → detector; in Exact mode the
    /// per-sample cross-validated smoothing dominates).
    pub scoring_time: Duration,
}

impl StatsSnapshot {
    /// Mean scored windows per second of scoring time (`None` before the
    /// first batch lands).
    pub fn windows_per_sec(&self) -> Option<f64> {
        let secs = self.scoring_time.as_secs_f64();
        (secs > 0.0 && self.windows > 0).then(|| self.windows as f64 / secs)
    }

    /// Mean scoring latency per window (`None` before the first batch).
    pub fn mean_latency(&self) -> Option<Duration> {
        // Divide in u128 nanos: a `Duration / u32` would truncate the
        // window count on very long-lived streams (≥ 2³² windows).
        (self.windows > 0).then(|| {
            Duration::from_nanos((self.scoring_time.as_nanos() / self.windows as u128) as u64)
        })
    }

    /// Mean windows per flushed micro-batch (`None` before the first
    /// batch) — the knob the scoring fan-out scales with: each batch is
    /// split across the worker pool, so larger effective batches give
    /// the work-stealing scheduler more sub-chunks to balance and
    /// [`StatsSnapshot::windows_per_sec`] directly observes the win.
    pub fn mean_batch_size(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.windows as f64 / self.batches as f64)
    }
}

impl StreamStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_observation(&self) {
        self.observations.add(1);
    }

    pub(crate) fn record_batch(&self, windows: u64, elapsed: Duration) {
        self.batches.add(1);
        self.windows.add(windows);
        self.scoring_nanos
            .add(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        self.latency.record_duration(elapsed);
    }

    pub(crate) fn record_alarms(&self, alarms: u64) {
        self.alarms.add(alarms);
    }

    pub(crate) fn record_sheds(&self, sheds: u64) {
        self.sheds.add(sheds);
    }

    pub(crate) fn record_deadline_miss(&self) {
        self.deadline_misses.add(1);
    }

    pub(crate) fn record_quarantine(&self) {
        self.quarantined.add(1);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            observations: self.observations.get(),
            windows: self.windows.get(),
            batches: self.batches.get(),
            alarms: self.alarms.get(),
            sheds: self.sheds.get(),
            deadline_misses: self.deadline_misses.get(),
            quarantined: self.quarantined.get(),
            scoring_time: Duration::from_nanos(self.scoring_nanos.get()),
        }
    }

    /// The per-batch scoring-latency histogram (one sample per flushed
    /// micro-batch). Quantiles come from
    /// [`HistogramSnapshot::quantile_duration`]; like the mean-style
    /// accessors they return `None` until the first batch has flushed.
    /// Always populated — this histogram is per-instance and does not
    /// require `MFOD_OBS=1`.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StreamStats::new();
        assert_eq!(s.snapshot().windows_per_sec(), None);
        assert_eq!(s.snapshot().mean_latency(), None);
        s.record_observation();
        s.record_observation();
        s.record_batch(8, Duration::from_millis(4));
        s.record_alarms(2);
        s.record_batch(8, Duration::from_millis(4));
        s.record_sheds(3);
        s.record_deadline_miss();
        s.record_quarantine();
        let snap = s.snapshot();
        assert_eq!(snap.observations, 2);
        assert_eq!(snap.windows, 16);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.alarms, 2);
        assert_eq!(snap.sheds, 3);
        assert_eq!(snap.deadline_misses, 1);
        assert_eq!(snap.quarantined, 1);
        assert_eq!(snap.scoring_time, Duration::from_millis(8));
        let wps = snap.windows_per_sec().unwrap();
        assert!((wps - 2000.0).abs() < 1.0, "wps {wps}");
        assert_eq!(snap.mean_latency().unwrap(), Duration::from_micros(500));
        assert_eq!(snap.mean_batch_size(), Some(8.0));
        assert_eq!(StreamStats::new().snapshot().mean_batch_size(), None);
    }

    #[test]
    fn empty_stats_have_no_ratios_or_quantiles() {
        // The documented empty path: every derived accessor is `None`
        // (never a zero sentinel) before the first flushed batch, even
        // when observations have already been ingested.
        let s = StreamStats::new();
        s.record_observation();
        let snap = s.snapshot();
        assert_eq!(snap.observations, 1);
        assert_eq!(snap.windows_per_sec(), None);
        assert_eq!(snap.mean_latency(), None);
        assert_eq!(snap.mean_batch_size(), None);
        let lat = s.latency_snapshot();
        assert_eq!(lat.count, 0);
        assert_eq!(lat.quantile_duration(0.5), None);
        assert_eq!(lat.quantile_duration(0.99), None);
        assert_eq!(lat.mean(), None);
    }

    #[test]
    fn latency_histogram_tracks_batches() {
        let s = StreamStats::new();
        s.record_batch(4, Duration::from_micros(100));
        s.record_batch(4, Duration::from_micros(900));
        let lat = s.latency_snapshot();
        assert_eq!(lat.count, 2);
        let p50 = lat.quantile_duration(0.5).unwrap();
        let p99 = lat.quantile_duration(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(p99 >= Duration::from_micros(900), "p99 {p99:?}");
        assert_eq!(lat.max, Duration::from_micros(900).as_nanos() as u64);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = StreamStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.record_batch(1, Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(s.snapshot().windows, 4000);
        assert_eq!(s.snapshot().batches, 4000);
        assert_eq!(s.latency_snapshot().count, 4000);
    }
}
