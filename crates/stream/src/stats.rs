//! Running throughput / latency counters for the scoring engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters shared by the streaming components. All methods are
/// callable concurrently; readers see a consistent-enough snapshot for
/// monitoring purposes (no cross-counter atomicity is promised).
#[derive(Debug, Default)]
pub struct StreamStats {
    observations: AtomicU64,
    windows: AtomicU64,
    batches: AtomicU64,
    alarms: AtomicU64,
    scoring_nanos: AtomicU64,
}

/// A point-in-time copy of [`StreamStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Raw multichannel observations ingested.
    pub observations: u64,
    /// Windows scored.
    pub windows: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Windows whose score crossed the calibrated threshold.
    pub alarms: u64,
    /// Total wall-clock time spent scoring micro-batches end to end
    /// (smoothing → mapping → transform → detector; in Exact mode the
    /// per-sample cross-validated smoothing dominates).
    pub scoring_time: Duration,
}

impl StatsSnapshot {
    /// Mean scored windows per second of scoring time (`None` before the
    /// first batch lands).
    pub fn windows_per_sec(&self) -> Option<f64> {
        let secs = self.scoring_time.as_secs_f64();
        (secs > 0.0 && self.windows > 0).then(|| self.windows as f64 / secs)
    }

    /// Mean scoring latency per window (`None` before the first batch).
    pub fn mean_latency(&self) -> Option<Duration> {
        // Divide in u128 nanos: a `Duration / u32` would truncate the
        // window count on very long-lived streams (≥ 2³² windows).
        (self.windows > 0).then(|| {
            Duration::from_nanos((self.scoring_time.as_nanos() / self.windows as u128) as u64)
        })
    }

    /// Mean windows per flushed micro-batch (`None` before the first
    /// batch) — the knob the scoring fan-out scales with: each batch is
    /// split across the worker pool, so larger effective batches give
    /// the work-stealing scheduler more sub-chunks to balance and
    /// [`StatsSnapshot::windows_per_sec`] directly observes the win.
    pub fn mean_batch_size(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.windows as f64 / self.batches as f64)
    }
}

impl StreamStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_observation(&self) {
        self.observations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, windows: u64, elapsed: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.windows.fetch_add(windows, Ordering::Relaxed);
        self.scoring_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_alarms(&self, alarms: u64) {
        self.alarms.fetch_add(alarms, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            observations: self.observations.load(Ordering::Relaxed),
            windows: self.windows.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            alarms: self.alarms.load(Ordering::Relaxed),
            scoring_time: Duration::from_nanos(self.scoring_nanos.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StreamStats::new();
        assert_eq!(s.snapshot().windows_per_sec(), None);
        assert_eq!(s.snapshot().mean_latency(), None);
        s.record_observation();
        s.record_observation();
        s.record_batch(8, Duration::from_millis(4));
        s.record_alarms(2);
        s.record_batch(8, Duration::from_millis(4));
        let snap = s.snapshot();
        assert_eq!(snap.observations, 2);
        assert_eq!(snap.windows, 16);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.alarms, 2);
        assert_eq!(snap.scoring_time, Duration::from_millis(8));
        let wps = snap.windows_per_sec().unwrap();
        assert!((wps - 2000.0).abs() < 1.0, "wps {wps}");
        assert_eq!(snap.mean_latency().unwrap(), Duration::from_micros(500));
        assert_eq!(snap.mean_batch_size(), Some(8.0));
        assert_eq!(StreamStats::new().snapshot().mean_batch_size(), None);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = StreamStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.record_batch(1, Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(s.snapshot().windows, 4000);
        assert_eq!(s.snapshot().batches, 4000);
    }
}
