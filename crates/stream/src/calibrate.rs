//! Score → alarm calibration.
//!
//! Detectors emit raw outlyingness scores on arbitrary scales; a serving
//! system needs a binary decision. Following the paper's contamination-
//! rate framing (the training set is assumed to contain a known fraction
//! of outliers), the threshold is the empirical `1 − contamination`
//! quantile of the *training* scores: anything scoring above what the
//! cleanest `1 − contamination` share of training data scored is flagged.

use crate::error::StreamError;
use crate::Result;
use mfod::FittedPipeline;
use mfod_fda::RawSample;
use mfod_linalg::vector;

/// Converts raw outlyingness scores into binary alarms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdCalibrator {
    threshold: f64,
    contamination: f64,
}

impl ThresholdCalibrator {
    /// Calibrates from already-computed training scores.
    pub fn from_scores(train_scores: &[f64], contamination: f64) -> Result<Self> {
        if train_scores.is_empty() {
            return Err(StreamError::Config("no training scores supplied".into()));
        }
        if !vector::all_finite(train_scores) {
            return Err(StreamError::Config("training scores must be finite".into()));
        }
        if !(0.0..1.0).contains(&contamination) || contamination <= 0.0 {
            return Err(StreamError::Config(format!(
                "contamination must be in (0, 1), got {contamination}"
            )));
        }
        let threshold = vector::quantile(train_scores, 1.0 - contamination);
        Ok(ThresholdCalibrator {
            threshold,
            contamination,
        })
    }

    /// Calibrates by scoring the training samples through `fitted`'s
    /// **exact** path — the right calibration for
    /// [`crate::ScoringMode::Exact`]. A `Frozen`-mode scorer produces a
    /// (slightly) different score distribution; calibrate it with
    /// [`ThresholdCalibrator::fit_frozen`] instead, so the realized alarm
    /// rate tracks the requested contamination.
    pub fn fit(fitted: &FittedPipeline, train: &[RawSample], contamination: f64) -> Result<Self> {
        let scores = fitted.par_score(train)?;
        Self::from_scores(&scores, contamination)
    }

    /// Calibrates against the **frozen** serving path: the threshold is
    /// the contamination quantile of the training scores exactly as the
    /// [`mfod::FrozenScorer`] produces them — the right calibration for
    /// [`crate::ScoringMode::Frozen`].
    pub fn fit_frozen(
        frozen: &mfod::FrozenScorer,
        train: &[RawSample],
        contamination: f64,
    ) -> Result<Self> {
        let scores = frozen.par_score(train)?;
        Self::from_scores(&scores, contamination)
    }

    /// The calibrated score threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The contamination rate used for calibration.
    pub fn contamination(&self) -> f64 {
        self.contamination
    }

    /// Whether `score` crosses the alarm threshold.
    pub fn is_alarm(&self, score: f64) -> bool {
        score > self.threshold
    }
}

impl mfod_persist::Encode for ThresholdCalibrator {
    fn encode(&self, w: &mut mfod_persist::Encoder) {
        w.put_f64(self.threshold);
        w.put_f64(self.contamination);
    }
}

impl mfod_persist::Decode for ThresholdCalibrator {
    fn decode(r: &mut mfod_persist::Decoder<'_>) -> mfod_persist::Result<Self> {
        let threshold = r.take_f64()?;
        let contamination = r.take_f64()?;
        // same domain rules `from_scores` enforces at calibration time
        if !threshold.is_finite() {
            return Err(mfod_persist::PersistError::Malformed(format!(
                "calibrator threshold {threshold} is not finite"
            )));
        }
        if !(contamination > 0.0 && contamination < 1.0) {
            return Err(mfod_persist::PersistError::Malformed(format!(
                "calibrator contamination {contamination} outside (0, 1)"
            )));
        }
        Ok(ThresholdCalibrator {
            threshold,
            contamination,
        })
    }
}

impl mfod_persist::Snapshot for ThresholdCalibrator {
    const KIND: u32 = mfod::snapshot::KIND_THRESHOLD_CALIBRATOR;
    const NAME: &'static str = "threshold-calibrator";
}

/// A calibrator restores as itself — the snapshot *is* the state — which
/// lets a [`mfod_persist::ModelRegistry`] hot-swap recalibrated alarm
/// thresholds independently of the (much larger) pipeline snapshots.
impl mfod_persist::Restorable for ThresholdCalibrator {
    type Snapshot = ThresholdCalibrator;

    fn restore(snapshot: ThresholdCalibrator) -> std::result::Result<Self, String> {
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_threshold_flags_the_tail() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let c = ThresholdCalibrator::from_scores(&scores, 0.10).unwrap();
        assert!((c.contamination() - 0.10).abs() < 1e-12);
        // ~10% of training scores exceed the threshold
        let alarms = scores.iter().filter(|&&s| c.is_alarm(s)).count();
        assert!((8..=12).contains(&alarms), "alarms {alarms}");
        assert!(c.is_alarm(1e9));
        assert!(!c.is_alarm(-1.0));
        assert!(
            c.threshold() > 85.0 && c.threshold() < 95.0,
            "{}",
            c.threshold()
        );
    }

    #[test]
    fn snapshot_roundtrip_and_registry_hot_swap() {
        let scores: Vec<f64> = (0..50).map(|i| (i as f64 * 0.739).sin() * 3.0).collect();
        let cal = ThresholdCalibrator::from_scores(&scores, 0.08).unwrap();
        let bytes = mfod_persist::to_bytes(&cal);
        let back: ThresholdCalibrator = mfod_persist::from_bytes(&bytes).unwrap();
        assert_eq!(cal.threshold().to_bits(), back.threshold().to_bits());
        assert_eq!(
            cal.contamination().to_bits(),
            back.contamination().to_bits()
        );
        assert_eq!(mfod_persist::to_bytes(&back), bytes);
        // registry swap: a recalibration replaces the active thresholds
        let registry = mfod_persist::ModelRegistry::<ThresholdCalibrator>::new();
        registry.install_bytes(&bytes).unwrap();
        let recal = ThresholdCalibrator::from_scores(&scores, 0.25).unwrap();
        registry
            .install_bytes(&mfod_persist::to_bytes(&recal))
            .unwrap();
        assert_eq!(registry.generation(), 2);
        assert_eq!(
            registry.active().unwrap().threshold().to_bits(),
            recal.threshold().to_bits()
        );
        // tampered contamination fails decode with a typed error
        let bad = {
            let mut w = mfod_persist::Encoder::new();
            w.put_f64(1.0);
            w.put_f64(1.5);
            w.into_bytes()
        };
        let mut r = mfod_persist::Decoder::new(&bad);
        assert!(matches!(
            <ThresholdCalibrator as mfod_persist::Decode>::decode(&mut r),
            Err(mfod_persist::PersistError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(ThresholdCalibrator::from_scores(&[], 0.1).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, f64::NAN], 0.1).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], 0.0).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], 1.0).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], -0.2).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], 1.7).is_err());
    }
}
