//! Score → alarm calibration.
//!
//! Detectors emit raw outlyingness scores on arbitrary scales; a serving
//! system needs a binary decision. Following the paper's contamination-
//! rate framing (the training set is assumed to contain a known fraction
//! of outliers), the threshold is the empirical `1 − contamination`
//! quantile of the *training* scores: anything scoring above what the
//! cleanest `1 − contamination` share of training data scored is flagged.

use crate::error::StreamError;
use crate::Result;
use mfod::FittedPipeline;
use mfod_fda::RawSample;
use mfod_linalg::vector;

/// Converts raw outlyingness scores into binary alarms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdCalibrator {
    threshold: f64,
    contamination: f64,
}

impl ThresholdCalibrator {
    /// Calibrates from already-computed training scores.
    pub fn from_scores(train_scores: &[f64], contamination: f64) -> Result<Self> {
        if train_scores.is_empty() {
            return Err(StreamError::Config("no training scores supplied".into()));
        }
        if !vector::all_finite(train_scores) {
            return Err(StreamError::Config("training scores must be finite".into()));
        }
        if !(0.0..1.0).contains(&contamination) || contamination <= 0.0 {
            return Err(StreamError::Config(format!(
                "contamination must be in (0, 1), got {contamination}"
            )));
        }
        let threshold = vector::quantile(train_scores, 1.0 - contamination);
        Ok(ThresholdCalibrator {
            threshold,
            contamination,
        })
    }

    /// Calibrates by scoring the training samples through `fitted`'s
    /// **exact** path — the right calibration for
    /// [`crate::ScoringMode::Exact`]. A `Frozen`-mode scorer produces a
    /// (slightly) different score distribution; calibrate it with
    /// [`ThresholdCalibrator::fit_frozen`] instead, so the realized alarm
    /// rate tracks the requested contamination.
    pub fn fit(fitted: &FittedPipeline, train: &[RawSample], contamination: f64) -> Result<Self> {
        let scores = fitted.par_score(train)?;
        Self::from_scores(&scores, contamination)
    }

    /// Calibrates against the **frozen** serving path: the threshold is
    /// the contamination quantile of the training scores exactly as the
    /// [`mfod::FrozenScorer`] produces them — the right calibration for
    /// [`crate::ScoringMode::Frozen`].
    pub fn fit_frozen(
        frozen: &mfod::FrozenScorer,
        train: &[RawSample],
        contamination: f64,
    ) -> Result<Self> {
        let scores = frozen.par_score(train)?;
        Self::from_scores(&scores, contamination)
    }

    /// The calibrated score threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The contamination rate used for calibration.
    pub fn contamination(&self) -> f64 {
        self.contamination
    }

    /// Whether `score` crosses the alarm threshold.
    pub fn is_alarm(&self, score: f64) -> bool {
        score > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_threshold_flags_the_tail() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let c = ThresholdCalibrator::from_scores(&scores, 0.10).unwrap();
        assert!((c.contamination() - 0.10).abs() < 1e-12);
        // ~10% of training scores exceed the threshold
        let alarms = scores.iter().filter(|&&s| c.is_alarm(s)).count();
        assert!((8..=12).contains(&alarms), "alarms {alarms}");
        assert!(c.is_alarm(1e9));
        assert!(!c.is_alarm(-1.0));
        assert!(
            c.threshold() > 85.0 && c.threshold() < 95.0,
            "{}",
            c.threshold()
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(ThresholdCalibrator::from_scores(&[], 0.1).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, f64::NAN], 0.1).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], 0.0).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], 1.0).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], -0.2).is_err());
        assert!(ThresholdCalibrator::from_scores(&[1.0, 2.0], 1.7).is_err());
    }
}
