//! End-to-end acceptance test of the online scoring subsystem: fit the
//! paper's pipeline on an ECG train split, stream the test split
//! observation by observation through `WindowBuffer` + `MicroBatcher`,
//! and require the streamed scores to be **identical** (bit for bit) to
//! the offline `score`/`score_batch` on the same windows.

use mfod_fixtures::{ecg_fitted as fit, ecg_split};
use mfod_stream::{
    BatchConfig, OnlineScorer, ScoringMode, StreamConfig, ThresholdCalibrator, WindowConfig,
};
use std::sync::Arc;

/// Streams every observation of `samples` through `scorer`, returning all
/// released verdicts (including the final flush).
fn stream_through(
    scorer: &mut OnlineScorer,
    samples: &[mfod_fda::RawSample],
) -> Vec<mfod_stream::Verdict> {
    let mut verdicts = Vec::new();
    for sample in samples {
        for j in 0..sample.t.len() {
            let obs: Vec<f64> = sample.channels.iter().map(|c| c[j]).collect();
            verdicts.extend(scorer.push(&obs).unwrap());
        }
    }
    verdicts.extend(scorer.finish().unwrap());
    verdicts
}

#[test]
fn streamed_scores_are_bit_identical_to_offline_scores() {
    let (train, test) = ecg_split();
    let fitted = fit(&train);
    let offline = fitted.score(test.samples()).unwrap();
    let ts = test.samples()[0].t.clone();

    // Batch size 7 does not divide the test count: the final flush path is
    // exercised too.
    for batch_size in [1usize, 7, 64] {
        let mut scorer = OnlineScorer::new(
            Arc::clone(&fitted),
            StreamConfig {
                window: WindowConfig::tumbling(ts.clone(), 2),
                batch: BatchConfig {
                    batch_size,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        let verdicts = stream_through(&mut scorer, test.samples());
        assert_eq!(verdicts.len(), test.len(), "batch_size {batch_size}");
        for (v, o) in verdicts.iter().zip(&offline) {
            assert_eq!(
                v.score.to_bits(),
                o.to_bits(),
                "batch_size {batch_size}, window {}: streamed {} != offline {}",
                v.seq,
                v.score,
                o
            );
        }
        // Sequence numbers are gap-free and ordered.
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.seq, i as u64);
        }
        let snap = scorer.stats();
        assert_eq!(snap.windows, test.len() as u64);
        assert_eq!(snap.observations, (test.len() * ts.len()) as u64);
    }
}

#[test]
fn calibrated_alarms_recover_labeled_outliers() {
    let (train, test) = ecg_split();
    let fitted = fit(&train);
    let train_scores = fitted.score(train.samples()).unwrap();
    let calibrator = ThresholdCalibrator::from_scores(&train_scores, 0.25).unwrap();
    let ts = test.samples()[0].t.clone();

    let mut scorer = OnlineScorer::new(
        Arc::clone(&fitted),
        StreamConfig {
            window: WindowConfig::tumbling(ts, 2),
            batch: BatchConfig {
                batch_size: 16,
                ..Default::default()
            },
        },
    )
    .unwrap()
    .with_calibrator(calibrator);

    let verdicts = stream_through(&mut scorer, test.samples());
    // Tumbling windows align 1:1 with test samples, so verdicts can be
    // joined to ground-truth labels by sequence number.
    let labels = test.labels();
    let alarms: Vec<usize> = verdicts
        .iter()
        .filter(|v| v.is_outlier)
        .map(|v| v.seq as usize)
        .collect();
    assert!(!alarms.is_empty(), "calibrated stream raised no alarms");
    let true_outliers = labels.iter().filter(|&&l| l).count();
    let hits = alarms.iter().filter(|&&i| labels[i]).count();
    // The detector separates this data well offline (AUC ≳ 0.8); the
    // streamed, calibrated alarms must recover at least half of the
    // abnormal beats.
    assert!(
        hits * 2 >= true_outliers,
        "alarms {alarms:?} recovered {hits}/{true_outliers} outliers"
    );
    assert_eq!(scorer.stats().alarms, alarms.len() as u64);
}

#[test]
fn frozen_mode_streams_and_preserves_the_signal() {
    let (train, test) = ecg_split();
    let fitted = fit(&train);
    let ts = test.samples()[0].t.clone();

    // Calibrate against the frozen path itself, so the threshold matches
    // the score distribution the serving mode actually produces.
    let frozen = mfod::FrozenScorer::new(Arc::clone(&fitted), &ts).unwrap();
    let calibrator = ThresholdCalibrator::fit_frozen(&frozen, train.samples(), 0.25).unwrap();

    let mut scorer = OnlineScorer::new(
        Arc::clone(&fitted),
        StreamConfig {
            window: WindowConfig::tumbling(ts, 2),
            batch: BatchConfig {
                batch_size: 16,
                mode: ScoringMode::Frozen,
                ..Default::default()
            },
        },
    )
    .unwrap()
    .with_calibrator(calibrator);
    let verdicts = stream_through(&mut scorer, test.samples());
    assert_eq!(verdicts.len(), test.len());
    let scores: Vec<f64> = verdicts.iter().map(|v| v.score).collect();
    let auc = mfod::eval::auc(&scores, test.labels()).unwrap();
    assert!(auc > 0.6, "frozen streaming AUC {auc}");
    // The frozen-calibrated threshold must actually fire on this data.
    assert!(verdicts.iter().any(|v| v.is_outlier));
}

#[test]
fn overlapping_windows_stream_consistently() {
    // Overlapping windows (stride < window_len) over one long concatenated
    // signal: every window's score must equal the offline score of the
    // same extracted window.
    let (train, test) = ecg_split();
    let fitted = fit(&train);
    let m = test.samples()[0].t.len();
    let ts = test.samples()[0].t.clone();
    let stride = m / 2;

    // Concatenate the first 6 test samples into one long 2-channel signal.
    let long: Vec<Vec<f64>> = (0..2)
        .map(|k| {
            test.samples()[..6]
                .iter()
                .flat_map(|s| s.channels[k].iter().copied())
                .collect()
        })
        .collect();
    let n_obs = long[0].len();

    let mut scorer = OnlineScorer::new(
        Arc::clone(&fitted),
        StreamConfig {
            window: WindowConfig {
                window_len: m,
                stride,
                channels: 2,
                ts: ts.clone(),
            },
            batch: BatchConfig {
                batch_size: 4,
                ..Default::default()
            },
        },
    )
    .unwrap();
    let mut verdicts = Vec::new();
    for (&a, &b) in long[0].iter().zip(&long[1]) {
        verdicts.extend(scorer.push(&[a, b]).unwrap());
    }
    verdicts.extend(scorer.finish().unwrap());

    let expected_windows = (n_obs - m) / stride + 1;
    assert_eq!(verdicts.len(), expected_windows);

    // Rebuild each window offline and compare scores bit for bit.
    let offline_windows: Vec<mfod_fda::RawSample> = (0..expected_windows)
        .map(|w| {
            let start = w * stride;
            mfod_fda::RawSample::new(
                ts.clone(),
                long.iter().map(|c| c[start..start + m].to_vec()).collect(),
            )
            .unwrap()
        })
        .collect();
    let offline = fitted.score(&offline_windows).unwrap();
    for (v, o) in verdicts.iter().zip(&offline) {
        assert_eq!(v.score.to_bits(), o.to_bits(), "window {}", v.seq);
    }
}
