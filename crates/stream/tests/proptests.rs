//! Property-based tests of the streaming invariants: window geometry,
//! stride accounting, no window dropped or duplicated across micro-batch
//! flushes, and ingestion recovery — rejected pushes, rejected chunks and
//! injected poison never drop, duplicate, or corrupt a window.

use mfod::prelude::*;
use mfod_fda::RawSample;
use mfod_fixtures::{sine_pipeline, FixtureConfig};
use mfod_stream::{BatchConfig, MicroBatcher, StreamStats, WindowBuffer, WindowConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn window_cfg(window_len: usize, stride: usize, channels: usize) -> WindowConfig {
    let ts = (0..window_len)
        .map(|j| j as f64 / (window_len - 1) as f64)
        .collect();
    WindowConfig {
        window_len,
        stride,
        channels,
        ts,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_buffer_emits_exact_slices(
        window_len in 2usize..16,
        stride in 1usize..20,
        channels in 1usize..4,
        n_obs in 0usize..200,
    ) {
        let mut buf = WindowBuffer::new(window_cfg(window_len, stride, channels)).unwrap();
        let mut emitted = Vec::new();
        for i in 0..n_obs {
            // channel k at time i carries the value 1000·k + i, making
            // provenance of every window entry checkable
            let obs: Vec<f64> = (0..channels).map(|k| (1000 * k + i) as f64).collect();
            if let Some(w) = buf.push(&obs).unwrap() {
                emitted.push(w);
            }
        }
        // expected number of complete windows
        let expected = if n_obs >= window_len {
            (n_obs - window_len) / stride + 1
        } else {
            0
        };
        prop_assert_eq!(emitted.len(), expected);
        prop_assert_eq!(buf.windows_emitted(), expected as u64);
        prop_assert_eq!(buf.observations(), n_obs as u64);
        // window w covers observations [w·stride, w·stride + window_len)
        for (w_idx, w) in emitted.iter().enumerate() {
            prop_assert_eq!(w.dim(), channels);
            let start = w_idx * stride;
            for k in 0..channels {
                let (ts, ys) = w.channel(k).unwrap();
                prop_assert_eq!(ys.len(), window_len);
                prop_assert_eq!(ts.len(), window_len);
                for (j, &y) in ys.iter().enumerate() {
                    prop_assert_eq!(y as usize, 1000 * k + start + j,
                        "window {} channel {} slot {}", w_idx, k, j);
                }
            }
        }
    }

    #[test]
    fn micro_batcher_never_drops_or_duplicates(
        batch_size in 1usize..12,
        n_windows in 0usize..30,
        flush_every in 1usize..15,
    ) {
        let (fitted, windows) = shared_fixture();
        let mut b = MicroBatcher::new(
            Arc::clone(fitted),
            BatchConfig { batch_size, ..Default::default() },
            None,
            Arc::new(StreamStats::new()),
        )
        .unwrap();
        let mut released = Vec::new();
        for (i, w) in windows.iter().take(n_windows).enumerate() {
            released.extend(b.submit(w.clone()).unwrap());
            // interleave explicit flushes to stress the boundary logic
            if (i + 1) % flush_every == 0 {
                released.extend(b.flush().unwrap());
            }
        }
        released.extend(b.flush().unwrap());
        prop_assert_eq!(b.pending(), 0);
        // every submitted window scored exactly once, in order
        let n = n_windows.min(windows.len());
        prop_assert_eq!(released.len(), n);
        for (i, r) in released.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64);
            prop_assert!(r.score.is_finite());
        }
        // scores are a function of the window alone, not of the batching:
        // window i must always receive its offline score
        let offline = offline_scores();
        for r in &released {
            prop_assert_eq!(
                r.score.to_bits(),
                offline[r.seq as usize].to_bits(),
                "window {} score drifted under batch_size {} flush_every {}",
                r.seq, batch_size, flush_every
            );
        }
    }

    /// Recovery invariant: a stream peppered with rejected observations
    /// (NaN pushes, wrong shapes, atomically-rejected chunks, injected
    /// poison) emits exactly the windows of a clean stream that saw only
    /// the valid observations — nothing dropped, duplicated or corrupted.
    #[test]
    fn window_buffer_survives_rejections_without_losing_windows(
        window_len in 2usize..10,
        stride in 1usize..12,
        ops in prop::collection::vec(0u32..5, 0..60),
    ) {
        let _guard = mfod_faultline::serial_guard();
        let mut buf = WindowBuffer::new(window_cfg(window_len, stride, 1)).unwrap();
        let mut clean = WindowBuffer::new(window_cfg(window_len, stride, 1)).unwrap();
        let mut emitted = Vec::new();
        let mut clean_emitted = Vec::new();
        let mut i = 0usize; // valid observations ingested so far
        for op in ops {
            match op {
                // a valid observation, mirrored into the clean reference
                0 | 1 => {
                    let v = i as f64;
                    if let Some(w) = buf.push(&[v]).unwrap() { emitted.push(w); }
                    if let Some(w) = clean.push(&[v]).unwrap() { clean_emitted.push(w); }
                    i += 1;
                }
                // a NaN observation: rejected, buffer untouched
                2 => prop_assert!(buf.push(&[f64::NAN]).is_err()),
                // wrong channel count: rejected, buffer untouched
                3 => prop_assert!(buf.push(&[1.0, 2.0]).is_err()),
                // a chunk with a bad tail: rejected atomically — the
                // valid prefix must not be ingested either
                4 => {
                    let bad: Vec<Vec<f64>> =
                        vec![vec![i as f64], vec![(i + 1) as f64], vec![f64::NAN]];
                    prop_assert!(buf.push_chunk(&bad).is_err());
                }
                _ => unreachable!(),
            }
            prop_assert_eq!(buf.observations(), clean.observations());
            prop_assert_eq!(buf.windows_emitted(), clean.windows_emitted());
        }
        // Injected poison behaves exactly like a real rejected push…
        mfod_faultline::install(mfod_faultline::FaultPlan::new(61).rule(
            mfod_faultline::points::STREAM_POISON,
            mfod_faultline::FaultRule::always().times(1),
        ));
        let poisoned = buf.push(&[i as f64]);
        mfod_faultline::disarm();
        prop_assert!(poisoned.is_err());
        // …and the stream still tracks the clean reference bit-for-bit.
        if let Some(w) = buf.push(&[i as f64]).unwrap() { emitted.push(w); }
        if let Some(w) = clean.push(&[i as f64]).unwrap() { clean_emitted.push(w); }
        prop_assert_eq!(buf.observations(), clean.observations());
        prop_assert_eq!(emitted.len(), clean_emitted.len());
        for (a, b) in emitted.iter().zip(&clean_emitted) {
            prop_assert_eq!(&a.channels, &b.channels);
            prop_assert_eq!(&a.t, &b.t);
        }
    }
}

/// One shared fitted pipeline + window set: proptest re-enters the test
/// body per case, and refitting a pipeline per case would dominate the
/// run time.
fn shared_fixture() -> &'static (Arc<FittedPipeline>, Vec<RawSample>) {
    static FIXTURE: OnceLock<(Arc<FittedPipeline>, Vec<RawSample>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (fitted, train, _ts) = sine_pipeline(&FixtureConfig {
            n_samples: 30,
            m: 20,
            n_trees: 15,
            grid_len: 12,
        });
        (fitted, train)
    })
}

fn offline_scores() -> &'static Vec<f64> {
    static SCORES: OnceLock<Vec<f64>> = OnceLock::new();
    SCORES.get_or_init(|| {
        let (fitted, windows) = shared_fixture();
        fitted.score(windows).unwrap()
    })
}
