//! Property tests for the snapshot wire format and container.
//!
//! The two contracts under test:
//!
//! 1. **Bit-exact round-trips** — for arbitrary payloads (including NaN
//!    bit patterns, `-0.0`, subnormals), `encode → decode → re-encode`
//!    reproduces the original bytes exactly.
//! 2. **No panic on untrusted bytes** — arbitrary truncation and byte
//!    corruption of a valid snapshot always yield a typed
//!    [`PersistError`], never a panic, wrong value or unbounded
//!    allocation.

use mfod_linalg::Matrix;
use mfod_persist::{
    from_bytes, to_bytes, Decode, Decoder, Encode, Encoder, PersistError, Snapshot,
};
use proptest::prelude::*;

/// A payload exercising every wire primitive at once.
#[derive(Debug, Clone, PartialEq)]
struct Mixed {
    xs: Vec<f64>,
    shape: (usize, usize),
    matrix: Matrix,
    tag: String,
    flag: bool,
    maybe: Option<f64>,
}

impl Encode for Mixed {
    fn encode(&self, w: &mut Encoder) {
        self.xs.encode(w);
        self.shape.encode(w);
        self.matrix.encode(w);
        self.tag.encode(w);
        self.flag.encode(w);
        self.maybe.encode(w);
    }
}

impl Decode for Mixed {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(Mixed {
            xs: Vec::decode(r)?,
            shape: <(usize, usize)>::decode(r)?,
            matrix: Matrix::decode(r)?,
            tag: String::decode(r)?,
            flag: bool::decode(r)?,
            maybe: Option::decode(r)?,
        })
    }
}

impl Snapshot for Mixed {
    const KIND: u32 = 0x4D49;
    const NAME: &'static str = "mixed";
}

/// Builds a deterministic payload from fuzzable scalars. Raw `u64` bits
/// reinterpreted as `f64` cover NaNs, infinities, subnormals and both
/// zeros — exactly the values a lossy text format would mangle.
fn mixed_from(bits: Vec<u64>, rows: usize, cols: usize, tag: String, flag: bool) -> Mixed {
    let xs: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| f64::from_bits(bits[i % bits.len().max(1)].wrapping_mul(i as u64 | 1)))
        .collect();
    Mixed {
        maybe: xs.first().copied(),
        matrix: Matrix::from_vec(rows, cols, data),
        shape: (rows, cols),
        xs,
        tag,
        flag,
    }
}

fn bits_of(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_bit_exact_and_reencode_is_byte_identical(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..40),
        rows in 1usize..8,
        cols in 1usize..8,
        flag in proptest::arbitrary::any::<bool>(),
    ) {
        let original = mixed_from(bits, rows, cols, String::from("κ-payload"), flag);
        let bytes = to_bytes(&original);
        let decoded: Mixed = from_bytes(&bytes).unwrap();
        // bit-exact field round-trips
        prop_assert_eq!(bits_of(&original.xs), bits_of(&decoded.xs));
        prop_assert_eq!(
            bits_of(original.matrix.as_slice()),
            bits_of(decoded.matrix.as_slice())
        );
        prop_assert_eq!(original.matrix.shape(), decoded.matrix.shape());
        prop_assert_eq!(&original.tag, &decoded.tag);
        prop_assert_eq!(original.flag, decoded.flag);
        prop_assert_eq!(
            original.maybe.map(f64::to_bits),
            decoded.maybe.map(f64::to_bits)
        );
        // re-encoding the decoded value reproduces the file byte for byte
        prop_assert_eq!(to_bytes(&decoded), bytes);
    }

    #[test]
    fn truncation_never_panics_and_always_errors(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..16),
        cut_permille in 0usize..1000,
    ) {
        let original = mixed_from(bits, 2, 3, String::from("t"), true);
        let bytes = to_bytes(&original);
        let cut = cut_permille * bytes.len() / 1000;
        let result = from_bytes::<Mixed>(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncation to {} bytes decoded", cut);
    }

    #[test]
    fn byte_corruption_never_panics_and_never_decodes_silently(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..16),
        at_permille in 0usize..1000,
        flip in 1u32..256,
    ) {
        let flip = flip as u8;
        let original = mixed_from(bits, 3, 2, String::from("c"), false);
        let mut bytes = to_bytes(&original);
        let at = at_permille * (bytes.len() - 1) / 1000;
        bytes[at] ^= flip;
        // every single-byte corruption is caught (CRC-32 detects all
        // 1-byte errors; header errors are typed before the CRC check)
        let result = from_bytes::<Mixed>(&bytes);
        prop_assert!(result.is_err(), "corrupt byte {} (xor {:#x}) decoded", at, flip);
    }

    #[test]
    fn random_garbage_is_rejected_with_typed_errors(
        words in proptest::collection::vec(proptest::arbitrary::any::<u32>(), 0..50),
    ) {
        let garbage: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        match from_bytes::<Mixed>(&garbage) {
            Ok(_) => prop_assert!(false, "garbage decoded as a snapshot"),
            Err(
                PersistError::BadMagic { .. }
                | PersistError::Truncated { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::UnsupportedVersion { .. }
                | PersistError::WrongKind { .. }
                | PersistError::Malformed(_)
                | PersistError::MissingSection { .. }
                | PersistError::UnknownTag { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error family: {e}"),
        }
    }
}
