//! Property tests for the snapshot wire format and container.
//!
//! The two contracts under test:
//!
//! 1. **Bit-exact round-trips** — for arbitrary payloads (including NaN
//!    bit patterns, `-0.0`, subnormals), `encode → decode → re-encode`
//!    reproduces the original bytes exactly.
//! 2. **No panic on untrusted bytes** — arbitrary truncation and byte
//!    corruption of a valid snapshot always yield a typed
//!    [`PersistError`], never a panic, wrong value or unbounded
//!    allocation.

use mfod_linalg::Matrix;
use mfod_persist::{
    from_bytes, from_shared, to_bytes, Decode, Decoder, Encode, Encoder, LazySnapshot,
    PersistError, SharedBytes, Snapshot, SnapshotWriter,
};
use proptest::prelude::*;

/// A payload exercising every wire primitive at once.
#[derive(Debug, Clone, PartialEq)]
struct Mixed {
    xs: Vec<f64>,
    shape: (usize, usize),
    matrix: Matrix,
    tag: String,
    flag: bool,
    maybe: Option<f64>,
}

impl Encode for Mixed {
    fn encode(&self, w: &mut Encoder) {
        self.xs.encode(w);
        self.shape.encode(w);
        self.matrix.encode(w);
        self.tag.encode(w);
        self.flag.encode(w);
        self.maybe.encode(w);
    }
}

impl Decode for Mixed {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(Mixed {
            xs: Vec::decode(r)?,
            shape: <(usize, usize)>::decode(r)?,
            matrix: Matrix::decode(r)?,
            tag: String::decode(r)?,
            flag: bool::decode(r)?,
            maybe: Option::decode(r)?,
        })
    }
}

impl Snapshot for Mixed {
    const KIND: u32 = 0x4D49;
    const NAME: &'static str = "mixed";
}

/// Builds a deterministic payload from fuzzable scalars. Raw `u64` bits
/// reinterpreted as `f64` cover NaNs, infinities, subnormals and both
/// zeros — exactly the values a lossy text format would mangle.
fn mixed_from(bits: Vec<u64>, rows: usize, cols: usize, tag: String, flag: bool) -> Mixed {
    let xs: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
    let data: Vec<f64> = (0..rows * cols)
        .map(|i| f64::from_bits(bits[i % bits.len().max(1)].wrapping_mul(i as u64 | 1)))
        .collect();
    Mixed {
        maybe: xs.first().copied(),
        matrix: Matrix::from_vec(rows, cols, data),
        shape: (rows, cols),
        xs,
        tag,
        flag,
    }
}

fn bits_of(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_bit_exact_and_reencode_is_byte_identical(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..40),
        rows in 1usize..8,
        cols in 1usize..8,
        flag in proptest::arbitrary::any::<bool>(),
    ) {
        let original = mixed_from(bits, rows, cols, String::from("κ-payload"), flag);
        let bytes = to_bytes(&original);
        let decoded: Mixed = from_bytes(&bytes).unwrap();
        // bit-exact field round-trips
        prop_assert_eq!(bits_of(&original.xs), bits_of(&decoded.xs));
        prop_assert_eq!(
            bits_of(original.matrix.as_slice()),
            bits_of(decoded.matrix.as_slice())
        );
        prop_assert_eq!(original.matrix.shape(), decoded.matrix.shape());
        prop_assert_eq!(&original.tag, &decoded.tag);
        prop_assert_eq!(original.flag, decoded.flag);
        prop_assert_eq!(
            original.maybe.map(f64::to_bits),
            decoded.maybe.map(f64::to_bits)
        );
        // re-encoding the decoded value reproduces the file byte for byte
        prop_assert_eq!(to_bytes(&decoded), bytes);
    }

    #[test]
    fn truncation_never_panics_and_always_errors(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..16),
        cut_permille in 0usize..1000,
    ) {
        let original = mixed_from(bits, 2, 3, String::from("t"), true);
        let bytes = to_bytes(&original);
        let cut = cut_permille * bytes.len() / 1000;
        let result = from_bytes::<Mixed>(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncation to {} bytes decoded", cut);
    }

    #[test]
    fn byte_corruption_never_panics_and_never_decodes_silently(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..16),
        at_permille in 0usize..1000,
        flip in 1u32..256,
    ) {
        let flip = flip as u8;
        let original = mixed_from(bits, 3, 2, String::from("c"), false);
        let mut bytes = to_bytes(&original);
        let at = at_permille * (bytes.len() - 1) / 1000;
        bytes[at] ^= flip;
        // every single-byte corruption is caught (CRC-32 detects all
        // 1-byte errors; header errors are typed before the CRC check)
        let result = from_bytes::<Mixed>(&bytes);
        prop_assert!(result.is_err(), "corrupt byte {} (xor {:#x}) decoded", at, flip);
    }

    #[test]
    fn lazy_tier_decodes_bit_identically_to_eager(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..40),
        rows in 1usize..8,
        cols in 1usize..8,
        flag in proptest::arbitrary::any::<bool>(),
    ) {
        let original = mixed_from(bits, rows, cols, String::from("λ-payload"), flag);
        let bytes = to_bytes(&original);
        let eager: Mixed = from_bytes(&bytes).unwrap();
        let shared = SharedBytes::from_vec(bytes.clone());
        let lazy: Mixed = from_shared(&shared).unwrap();
        // field-by-field bit equality across tiers (matrix equality spans
        // owned and borrowed storage)
        prop_assert_eq!(bits_of(&eager.xs), bits_of(&lazy.xs));
        prop_assert_eq!(
            bits_of(eager.matrix.as_slice()),
            bits_of(lazy.matrix.as_slice())
        );
        prop_assert_eq!(eager.matrix.shape(), lazy.matrix.shape());
        prop_assert_eq!(&eager.tag, &lazy.tag);
        prop_assert_eq!(eager.flag, lazy.flag);
        prop_assert_eq!(eager.maybe.map(f64::to_bits), lazy.maybe.map(f64::to_bits));
        // and the lazy-decoded value re-encodes to the original file
        prop_assert_eq!(to_bytes(&lazy), bytes);
    }

    #[test]
    fn lazy_tier_rejects_exactly_what_eager_rejects(
        bits in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..16),
        at_permille in 0usize..1000,
        flip in 1u32..256,
    ) {
        let original = mixed_from(bits, 3, 2, String::from("e"), false);
        let mut bytes = to_bytes(&original);
        let at = at_permille * (bytes.len() - 1) / 1000;
        bytes[at] ^= flip as u8;
        let eager = from_bytes::<Mixed>(&bytes);
        let shared = SharedBytes::from_vec(bytes);
        let lazy = from_shared::<Mixed>(&shared);
        // both tiers reject, with the same typed error family
        prop_assert!(eager.is_err() && lazy.is_err());
        prop_assert_eq!(
            std::mem::discriminant(&eager.unwrap_err()),
            std::mem::discriminant(&lazy.unwrap_err())
        );
    }

    #[test]
    fn random_garbage_is_rejected_with_typed_errors(
        words in proptest::collection::vec(proptest::arbitrary::any::<u32>(), 0..50),
    ) {
        let garbage: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        match from_bytes::<Mixed>(&garbage) {
            Ok(_) => prop_assert!(false, "garbage decoded as a snapshot"),
            Err(
                PersistError::BadMagic { .. }
                | PersistError::Truncated { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::UnsupportedVersion { .. }
                | PersistError::WrongKind { .. }
                | PersistError::Malformed(_)
                | PersistError::MissingSection { .. }
                | PersistError::UnknownTag { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error family: {e}"),
        }
    }
}

/// A small multi-section container for the exhaustive lazy-tier sweeps:
/// three independently addressable `Vec<f64>` sections.
fn multi_section_bytes() -> Vec<u8> {
    let mut w = SnapshotWriter::new(0x4C5A);
    for id in 1u32..=3 {
        let payload: Vec<f64> = (0..9)
            .map(|i| f64::from_bits(0x3FF0_0000_0000_0000 ^ (u64::from(id) << 40) ^ i))
            .collect();
        w.section(id, |enc| payload.encode(enc));
    }
    w.finish()
}

/// Exhaustive sweep: **every** single-byte corruption of a multi-section
/// snapshot is rejected by [`LazySnapshot::open`] — up front, before any
/// section is touched. This is the "tamper in a section you never
/// decode" guarantee: validation is CRC-whole-file, not per-touch.
#[test]
fn every_byte_flip_is_rejected_at_lazy_open() {
    let good = multi_section_bytes();
    for at in 0..good.len() {
        let mut bad = good.clone();
        bad[at] ^= 0x01;
        assert!(
            LazySnapshot::open(&bad).is_err(),
            "flip at byte {at} survived open"
        );
    }
    // and the pristine bytes still open, with all sections reachable
    let snap = LazySnapshot::open(&good).unwrap();
    for id in 1u32..=3 {
        let xs: &Vec<f64> = snap.section_value(id).unwrap();
        assert_eq!(xs.len(), 9);
    }
}

/// Exhaustive sweep: **every** truncation of a multi-section snapshot is
/// rejected by the lazy tier, through both the borrowed and the
/// owner-pinned open paths.
#[test]
fn every_truncation_is_rejected_at_lazy_open() {
    let good = multi_section_bytes();
    for n in 0..good.len() {
        assert!(
            LazySnapshot::open(&good[..n]).is_err(),
            "truncation to {n} bytes survived open"
        );
        let shared = SharedBytes::from_vec(good[..n].to_vec());
        assert!(
            LazySnapshot::open_shared(&shared).is_err(),
            "truncation to {n} bytes survived open_shared"
        );
    }
}

/// A representative manifest for the codec sweeps: several generations,
/// a lineage chain, and an active pointer.
fn manifest_fixture() -> mfod_persist::Manifest {
    let mut m = mfod_persist::Manifest::new();
    for generation in 1..=4u64 {
        m.upsert(mfod_persist::ManifestEntry {
            generation,
            file: mfod_persist::generation_file(generation),
            kind: 1,
            content_hash: 0x1234_5678_9ABC_DEF0 ^ generation,
            len: 4096 + generation,
            config_fingerprint: 0xFEED,
            parent: generation.checked_sub(1).filter(|&p| p > 0),
            tag: format!("variant-{generation}"),
        });
    }
    m.active = Some(4);
    m
}

/// Exhaustive sweep: **every** single-byte corruption of an encoded
/// manifest is rejected — the deployment catalog gets the same
/// whole-file integrity gate as every other artifact.
#[test]
fn every_manifest_byte_flip_is_rejected() {
    let good = to_bytes(&manifest_fixture());
    for at in 0..good.len() {
        let mut bad = good.clone();
        bad[at] ^= 0x01;
        assert!(
            from_bytes::<mfod_persist::Manifest>(&bad).is_err(),
            "manifest flip at byte {at} decoded"
        );
        assert!(
            LazySnapshot::open(&bad).is_err(),
            "manifest flip at byte {at} survived lazy open"
        );
    }
    let back: mfod_persist::Manifest = from_bytes(&good).unwrap();
    assert_eq!(back, manifest_fixture());
}

/// Exhaustive sweep: **every** truncation of an encoded manifest is
/// rejected with a typed error, never a panic or partial catalog.
#[test]
fn every_manifest_truncation_is_rejected() {
    let good = to_bytes(&manifest_fixture());
    for n in 0..good.len() {
        match from_bytes::<mfod_persist::Manifest>(&good[..n]) {
            Ok(_) => panic!("manifest truncation to {n} bytes decoded"),
            Err(
                PersistError::BadMagic { .. }
                | PersistError::Truncated { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::Malformed(_)
                | PersistError::MissingSection { .. },
            ) => {}
            Err(e) => panic!("manifest truncation to {n}: unexpected error family: {e}"),
        }
    }
}

/// A tiny store artifact for the recovery-idempotence property.
#[derive(Debug, Clone, PartialEq)]
struct Probe {
    v: Vec<f64>,
}

impl Encode for Probe {
    fn encode(&self, w: &mut Encoder) {
        self.v.encode(w);
    }
}

impl Decode for Probe {
    fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
        Ok(Probe { v: Vec::decode(r)? })
    }
}

impl Snapshot for Probe {
    const KIND: u32 = 0x5052;
    const NAME: &'static str = "probe";
}

/// Directory listing minus the quarantine subdir contents ordering
/// noise: sorted names of everything in the store dir and quarantine.
fn store_footprint(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for base in [dir.to_path_buf(), dir.join(mfod_persist::QUARANTINE_DIR)] {
        let Ok(entries) = std::fs::read_dir(&base) else {
            continue;
        };
        for e in entries.filter_map(|e| e.ok()) {
            if e.file_type().map(|t| t.is_file()).unwrap_or(false) {
                let prefix = if base.ends_with(mfod_persist::QUARANTINE_DIR) {
                    "quarantine/"
                } else {
                    ""
                };
                names.push(format!("{prefix}{}", e.file_name().to_string_lossy()));
            }
        }
    }
    names.sort();
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery is idempotent: whatever mess a seeded crash schedule
    /// leaves behind, opening the store twice yields the same catalog,
    /// the same active generation and the same on-disk footprint as
    /// opening it once.
    #[test]
    fn recovery_is_idempotent_across_seeded_crash_schedules(
        seed in proptest::arbitrary::any::<u64>(),
        promotions in 1usize..5,
        crash_point in 0usize..4,
    ) {
        let _guard = mfod_faultline::serial_guard();
        let dir = std::env::temp_dir().join(format!(
            "mfod-recovery-prop-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let point = [
            mfod_faultline::points::PERSIST_FSYNC,
            mfod_faultline::points::PERSIST_RENAME,
            mfod_faultline::points::MANIFEST_APPEND_TORN,
            mfod_faultline::points::STORE_COMMIT,
        ][crash_point];
        {
            let (mut store, _) = mfod_persist::ModelStore::open(&dir).unwrap();
            for i in 0..promotions {
                let probe = Probe {
                    v: (0..16).map(|j| seed as f64 + (i * 16 + j) as f64).collect(),
                };
                store.promote(&probe, seed, &format!("p{i}")).unwrap();
            }
            // crash the final promotion at the seeded point
            mfod_faultline::install(
                mfod_faultline::FaultPlan::new(seed)
                    .rule(point, mfod_faultline::FaultRule::once()),
            );
            let doomed = Probe { v: vec![seed as f64; 8] };
            let _ = store.promote(&doomed, seed, "doomed");
            mfod_faultline::disarm();
        }
        let (once, _) = mfod_persist::ModelStore::open(&dir).unwrap();
        let once_manifest = once.manifest().clone();
        let once_footprint = store_footprint(&dir);
        drop(once);
        let (twice, report) = mfod_persist::ModelStore::open(&dir).unwrap();
        prop_assert_eq!(twice.manifest(), &once_manifest);
        prop_assert_eq!(store_footprint(&dir), once_footprint);
        prop_assert!(
            report.quarantined.is_empty(),
            "second recovery re-quarantined: {:?}",
            report.quarantined
        );
        // and the recovered active generation always fscks clean
        prop_assert!(twice.fsck().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
