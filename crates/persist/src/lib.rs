//! # mfod-persist
//!
//! Versioned, checksummed, deterministic **binary model snapshots** and
//! the hot-swap serving registry — the fit-once / serve-many layer of the
//! workspace. No registry crate (serde, bincode) is reachable in this
//! environment, so the format is hand-rolled and owned end to end.
//!
//! * [`wire`] — little-endian primitives and the [`Encode`]/[`Decode`]
//!   trait pair. `f64`s travel as raw IEEE-754 bit patterns, so
//!   round-trips are **bit-exact** (including `-0.0` and NaN payloads);
//!   every read is bounds-checked and length fields are validated before
//!   allocation, so untrusted bytes produce typed errors, never panics.
//! * [`mod@format`] — the container: `MFOD` magic, format version, artifact
//!   kind, section table, CRC-32 trailer ([`Snapshot`],
//!   [`to_bytes`]/[`from_bytes`], atomic [`save`]/[`load`]).
//! * [`registry`] — [`ModelRegistry`]: directory loading and atomic
//!   hot-swap of the active `Arc<T>` under live traffic
//!   ([`Restorable`] bridges decoded snapshots back to live artifacts).
//! * [`hash`] — stable FNV-1a hashing of byte and `f64`-bit content,
//!   shared with `mfod-fda`'s grid-keyed selection-plan cache.
//!
//! Downstream crates implement [`Encode`]/[`Decode`] for their own types
//! (`Matrix` is covered here since `mfod-linalg` sits below this crate)
//! and declare top-level artifacts via [`Snapshot`] + [`Restorable`]:
//! `FittedPipeline` and `FrozenScorer` in `mfod`, `ThresholdCalibrator`
//! in `mfod-stream`.
//!
//! ```
//! use mfod_persist::prelude::*;
//!
//! #[derive(PartialEq, Debug)]
//! struct Mean(f64);
//!
//! impl Encode for Mean {
//!     fn encode(&self, w: &mut Encoder) { w.put_f64(self.0) }
//! }
//! impl Decode for Mean {
//!     fn decode(r: &mut Decoder<'_>) -> mfod_persist::Result<Self> {
//!         Ok(Mean(r.take_f64()?))
//!     }
//! }
//! impl Snapshot for Mean {
//!     const KIND: u32 = 42;
//!     const NAME: &'static str = "mean";
//! }
//!
//! let bytes = to_bytes(&Mean(1.25));
//! assert_eq!(from_bytes::<Mean>(&bytes).unwrap(), Mean(1.25));
//! assert!(from_bytes::<Mean>(&bytes[..bytes.len() - 1]).is_err());
//! ```

pub mod error;
pub mod format;
pub mod hash;
pub mod manifest;
pub mod map;
pub mod registry;
pub mod store;
pub mod wal;
pub mod wire;

pub use error::PersistError;
pub use format::{
    crc32, from_bytes, from_shared, load, load_mapped, save, save_bytes, to_bytes, LazySnapshot,
    Snapshot, SnapshotReader, SnapshotWriter, FORMAT_VERSION, MAGIC, SECTION_BODY, SNAPSHOT_EXT,
};
pub use hash::{fnv1a64, hash_f64s, Fnv1a};
pub use manifest::{Manifest, ManifestEntry, KIND_MANIFEST};
pub use map::{LazySection, SharedBytes};
pub use registry::{
    DirLoadReport, ModelRegistry, RegistryHealth, Restorable, WatchConfig, WatchHandle,
};
pub use store::{
    fsck_dir, generation_file, FsckIssue, FsckReport, ModelStore, QuarantineReason, RecoveryReport,
    DEPLOY_LOG_FILE, MANIFEST_FILE, QUARANTINE_DIR,
};
pub use wal::{append_record, replay, LogRecord, Replay, TornTail};
pub use wire::{Decode, DecodeRef, Decoder, Encode, Encoder, F64Bits};

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, PersistError>;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::error::PersistError;
    pub use crate::format::{
        from_bytes, from_shared, load, load_mapped, save, to_bytes, LazySnapshot, Snapshot,
    };
    pub use crate::hash::{fnv1a64, hash_f64s, Fnv1a};
    pub use crate::manifest::{Manifest, ManifestEntry};
    pub use crate::map::{LazySection, SharedBytes};
    pub use crate::registry::{
        DirLoadReport, ModelRegistry, RegistryHealth, Restorable, WatchConfig, WatchHandle,
    };
    pub use crate::store::{FsckIssue, FsckReport, ModelStore, QuarantineReason, RecoveryReport};
    pub use crate::wire::{Decode, DecodeRef, Decoder, Encode, Encoder, F64Bits};
}
