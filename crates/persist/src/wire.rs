//! Little-endian wire primitives and the [`Encode`]/[`Decode`] trait pair.
//!
//! Every multi-byte integer is little-endian; every `f64` is stored as its
//! raw IEEE-754 bit pattern (`to_bits`), so round-trips are **bit-exact**
//! for any value, including negative zero, subnormals and NaN payloads.
//! Decoding is defensive: every read is bounds-checked
//! ([`PersistError::Truncated`]) and length-prefixed collections verify
//! that the declared element count actually fits in the remaining bytes
//! before allocating, so a corrupted length field cannot force a huge
//! allocation.

use crate::error::PersistError;
use crate::map::SharedBytes;
use crate::Result;
use mfod_linalg::{Matrix, SharedF64s};

/// Append-only byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (sizes are machine-independent on disk).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked reader over snapshot payload bytes.
///
/// A decoder can optionally carry the [`SharedBytes`] owner its buffer
/// lives inside ([`Decoder::over_shared`]); owner-aware decoders let
/// payload decoders hand out zero-copy views whose memory is pinned by
/// the owner (see [`Decoder::take_shared_f64s`]). Every read stays
/// bounds-checked and allocation-guarded either way.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    owner: Option<&'a SharedBytes>,
}

impl<'a> Decoder<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder {
            buf,
            pos: 0,
            owner: None,
        }
    }

    /// Reads from the start of `shared`, remembering the owner so
    /// decoded views can pin the backing memory (zero-copy tier).
    pub fn over_shared(shared: &'a SharedBytes) -> Self {
        Decoder {
            buf: shared.as_slice(),
            pos: 0,
            owner: Some(shared),
        }
    }

    /// Reads `buf`, a sub-slice of `owner`'s memory, keeping the
    /// zero-copy tier available (used for sections of a mapped
    /// container).
    pub(crate) fn with_owner(buf: &'a [u8], owner: &'a SharedBytes) -> Self {
        debug_assert!(
            buf.is_empty() || {
                let base = owner.as_slice().as_ptr() as usize;
                let p = buf.as_ptr() as usize;
                p >= base && p + buf.len() <= base + owner.len()
            },
            "decoder buffer must live inside its owner"
        );
        Decoder {
            buf,
            pos: 0,
            owner: Some(owner),
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                context,
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take_bytes(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take_bytes(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take_bytes(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that do
    /// not fit the host.
    pub fn take_usize(&mut self) -> Result<usize> {
        let v = self.take_u64()?;
        usize::try_from(v)
            .map_err(|_| PersistError::Malformed(format!("size {v} exceeds host usize")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(PersistError::Malformed(format!("bool byte {v}"))),
        }
    }

    /// Reads a collection length and verifies `len * elem_size` fits in
    /// the remaining bytes — the guard that keeps corrupted lengths from
    /// turning into multi-gigabyte allocations.
    pub fn take_len(&mut self, elem_size: usize, context: &'static str) -> Result<usize> {
        let len = self.take_usize()?;
        let needed = len
            .checked_mul(elem_size)
            .ok_or_else(|| PersistError::Malformed(format!("{context}: length {len} overflows")))?;
        if needed > self.remaining() {
            return Err(PersistError::Truncated {
                context,
                needed,
                available: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_len(1, "string")?;
        let bytes = self.take_bytes(len, "string bytes")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("string is not UTF-8".into()))
    }

    /// Takes `count` f64s as a zero-copy view pinned by the decoder's
    /// owner, or `None` when the caller must fall back to copying: the
    /// decoder has no owner (plain in-memory bytes), the target is not
    /// little-endian (the wire format is LE, so bits cannot be
    /// reinterpreted in place), or the run is misaligned for `f64`.
    /// Bounds violations are still typed errors, never `None`; on `None`
    /// no bytes are consumed.
    pub fn take_shared_f64s(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<Option<SharedF64s>> {
        let needed = count.checked_mul(8).ok_or_else(|| {
            PersistError::Malformed(format!("{context}: count {count} overflows"))
        })?;
        if needed > self.remaining() {
            return Err(PersistError::Truncated {
                context,
                needed,
                available: self.remaining(),
            });
        }
        let Some(owner) = self.owner else {
            return Ok(None);
        };
        let start = self.buf[self.pos..].as_ptr() as usize - owner.as_slice().as_ptr() as usize;
        match owner.f64s_at(start, count) {
            Some(view) => {
                self.pos += needed;
                Ok(Some(view))
            }
            None => Ok(None),
        }
    }

    /// Asserts the decoder consumed the whole buffer (trailing garbage is
    /// corruption, not padding).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(PersistError::Malformed(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// A value that can serialize itself onto an [`Encoder`].
///
/// Encoding is infallible by design: anything that can fail (an
/// un-snapshottable trait object, an invalid parameter) must be resolved
/// *before* encoding, by converting the live object into a concrete
/// snapshot type first.
pub trait Encode {
    /// Appends this value's wire form to `w`.
    fn encode(&self, w: &mut Encoder);
}

/// A value that can reconstruct itself from a [`Decoder`].
pub trait Decode: Sized {
    /// Reads one value, consuming exactly the bytes [`Encode::encode`]
    /// wrote for it.
    fn decode(r: &mut Decoder<'_>) -> Result<Self>;
}

/// The borrowed decode tier: values that reconstruct themselves as
/// **views into the decoder's buffer** instead of owned copies — the
/// wire-level half of the zero-copy path. A `DecodeRef` value is only
/// valid while the underlying bytes are (a mapped snapshot held open, a
/// caller-owned buffer); consumers that need `'static` values wrap the
/// buffer in a [`SharedBytes`] owner and use [`Decoder::take_shared_f64s`]
/// / [`crate::map::LazySection`] instead.
///
/// Implementations consume exactly the bytes the owned-tier
/// [`Encode`] wrote, so the two tiers are interchangeable over the same
/// wire bytes.
pub trait DecodeRef<'a>: Sized {
    /// Reads one borrowed value from `r`.
    fn decode_ref(r: &mut Decoder<'a>) -> Result<Self>;
}

/// Length-prefixed raw bytes, borrowed (pairs with
/// [`Encoder::put_str`]-style `put_usize` + `put_bytes` writing).
impl<'a> DecodeRef<'a> for &'a [u8] {
    fn decode_ref(r: &mut Decoder<'a>) -> Result<Self> {
        let len = r.take_len(1, "bytes")?;
        r.take_bytes(len, "byte run")
    }
}

/// Length-prefixed UTF-8, borrowed — the zero-copy twin of
/// [`Decoder::take_str`] over the same wire bytes.
impl<'a> DecodeRef<'a> for &'a str {
    fn decode_ref(r: &mut Decoder<'a>) -> Result<Self> {
        let len = r.take_len(1, "string")?;
        let bytes = r.take_bytes(len, "string bytes")?;
        std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Malformed("string is not UTF-8".into()))
    }
}

/// A borrowed view over a length-prefixed run of `f64` bit patterns —
/// the same wire bytes `Vec<f64>` encodes to, without materializing the
/// floats. Individual values are assembled from the little-endian bytes
/// on access; [`F64Bits::as_f64_slice`] reinterprets the whole run in
/// place when the platform and alignment allow.
#[derive(Debug, Clone, Copy)]
pub struct F64Bits<'a> {
    bytes: &'a [u8],
}

impl<'a> F64Bits<'a> {
    /// Number of `f64` values in the view.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the view holds no values.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Value `i`, decoded from its bit pattern (bit-exact).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> f64 {
        let b: [u8; 8] = self.bytes[i * 8..(i + 1) * 8]
            .try_into()
            .expect("8 bytes per f64");
        f64::from_bits(u64::from_le_bytes(b))
    }

    /// Iterates the values in order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        self.bytes
            .chunks_exact(8)
            .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().expect("8 bytes per f64"))))
    }

    /// The run reinterpreted in place as `&[f64]`, when the target is
    /// little-endian and the bytes happen to be 8-aligned; `None` means
    /// the caller should fall back to [`F64Bits::to_vec`] or per-element
    /// access.
    pub fn as_f64_slice(&self) -> Option<&'a [f64]> {
        if cfg!(not(target_endian = "little")) {
            return None;
        }
        if !(self.bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return None;
        }
        // SAFETY: aligned (checked), initialized, and every 8-byte LE
        // pattern is a valid f64 bit pattern.
        Some(unsafe { std::slice::from_raw_parts(self.bytes.as_ptr().cast::<f64>(), self.len()) })
    }

    /// Materializes the values into an owned vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }
}

impl<'a> DecodeRef<'a> for F64Bits<'a> {
    fn decode_ref(r: &mut Decoder<'a>) -> Result<Self> {
        let count = r.take_len(8, "f64 run")?;
        let bytes = r.take_bytes(count * 8, "f64 bits")?;
        Ok(F64Bits { bytes })
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut Encoder) {
        w.put_u8(*self);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        r.take_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Encoder) {
        w.put_u32(*self);
    }
}

impl Decode for u32 {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        r.take_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        r.take_u64()
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(*self);
    }
}

impl Decode for usize {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        r.take_usize()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut Encoder) {
        w.put_f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        r.take_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Encoder) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        r.take_bool()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Encoder) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        r.take_str()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        // Elements occupy at least one byte each on the wire, which is
        // enough of a bound to reject absurd lengths outright…
        let len = r.take_len(1, "vec")?;
        // …but a corrupted length that fits the remaining *wire* bytes
        // could still demand size_of::<T>() times that in heap if it were
        // pre-allocated wholesale. Cap the up-front reservation so the
        // heap committed before decoding is bounded by the bytes actually
        // present; a truncated stream then fails in `T::decode` long
        // before the vector grows anywhere near the claimed length.
        let cap = len.min(r.remaining() / std::mem::size_of::<T>().max(1) + 1);
        let mut out = Vec::with_capacity(cap);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Encoder) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            v => Err(PersistError::Malformed(format!("option byte {v}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Encoder) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Encode for Matrix {
    fn encode(&self, w: &mut Encoder) {
        w.put_usize(self.nrows());
        w.put_usize(self.ncols());
        for &v in self.as_slice() {
            w.put_f64(v);
        }
    }
}

impl Decode for Matrix {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        let rows = r.take_usize()?;
        let cols = r.take_usize()?;
        let n = rows.checked_mul(cols).ok_or_else(|| {
            PersistError::Malformed(format!("matrix shape {rows}x{cols} overflows"))
        })?;
        if n.checked_mul(8).is_none_or(|bytes| bytes > r.remaining()) {
            return Err(PersistError::Truncated {
                context: "matrix data",
                needed: n.saturating_mul(8),
                available: r.remaining(),
            });
        }
        // Zero-copy tier: when the decoder reads out of an owner-pinned
        // buffer (a mapped snapshot) and the run is 8-aligned, serve the
        // payload directly from that memory; otherwise copy — bit-exact
        // either way, since f64s travel as raw LE bit patterns.
        if n > 0 {
            if let Some(view) = r.take_shared_f64s(n, "matrix data")? {
                return Ok(Matrix::from_shared(rows, cols, view));
            }
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.take_f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

impl Encode for mfod_linalg::Cholesky {
    fn encode(&self, w: &mut Encoder) {
        self.factor().encode(w);
    }
}

impl Decode for mfod_linalg::Cholesky {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        let l = Matrix::decode(r)?;
        mfod_linalg::Cholesky::from_factor(l)
            .map_err(|e| PersistError::Malformed(format!("cholesky factor: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Encoder::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = T::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("mfod κ snapshot"));
        roundtrip(vec![1.0f64, -0.0, f64::INFINITY]);
        roundtrip(Some(3.5f64));
        roundtrip(Option::<f64>::None);
        roundtrip((7usize, -2.5f64));
    }

    #[test]
    fn f64_bit_patterns_survive() {
        for bits in [
            0u64,
            0x8000_0000_0000_0000, // -0.0
            0x7FF0_0000_0000_0001, // signalling NaN payload
            0x7FF8_0000_0000_0000, // quiet NaN
            0x0000_0000_0000_0001, // smallest subnormal
            f64::MAX.to_bits(),
        ] {
            let mut w = Encoder::new();
            w.put_f64(f64::from_bits(bits));
            let bytes = w.into_bytes();
            let mut r = Decoder::new(&bytes);
            assert_eq!(r.take_f64().unwrap().to_bits(), bits);
        }
    }

    #[test]
    fn truncation_is_typed_not_panic() {
        let mut w = Encoder::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes[..5]);
        assert!(matches!(r.take_u64(), Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn corrupted_length_rejected_before_allocation() {
        let mut w = Encoder::new();
        w.put_u64(u64::MAX); // absurd vec length
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let err = Vec::<f64>::decode(&mut r).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. } | PersistError::Malformed(_)
            ),
            "{err}"
        );
    }

    #[test]
    fn bad_bool_and_option_bytes_rejected() {
        let mut r = Decoder::new(&[7]);
        assert!(matches!(r.take_bool(), Err(PersistError::Malformed(_))));
        let mut r = Decoder::new(&[9]);
        assert!(matches!(
            Option::<u8>::decode(&mut r),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Encoder::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let _ = r.take_u8().unwrap();
        assert!(matches!(r.finish(), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn matrix_roundtrip_and_guards() {
        let m = Matrix::from_rows(&[&[1.5, -2.0], &[0.25, f64::MIN_POSITIVE]]);
        let mut w = Encoder::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = Matrix::decode(&mut r).unwrap();
        assert_eq!(m, back);
        // a shape promising more data than present is typed, not a panic
        let mut w = Encoder::new();
        w.put_usize(1000);
        w.put_usize(1000);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            Matrix::decode(&mut r),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn cholesky_roundtrip_solves_bit_identically() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = mfod_linalg::Cholesky::new(&a).unwrap();
        let mut w = Encoder::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = mfod_linalg::Cholesky::decode(&mut r).unwrap();
        r.finish().unwrap();
        let x1 = c.solve(&[1.0, -1.0]);
        let x2 = back.solve(&[1.0, -1.0]);
        assert_eq!(x1[0].to_bits(), x2[0].to_bits());
        assert_eq!(x1[1].to_bits(), x2[1].to_bits());
        // a tampered factor (upper-triangular junk) is typed
        let junk = Matrix::from_rows(&[&[1.0, 7.0], &[0.0, 1.0]]);
        let mut w = Encoder::new();
        junk.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(
            mfod_linalg::Cholesky::decode(&mut r),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn decode_ref_views_share_wire_bytes_with_owned_tier() {
        let mut w = Encoder::new();
        w.put_str("mapped κ");
        vec![1.5f64, -0.0, f64::NAN].encode(&mut w);
        w.put_usize(3);
        w.put_bytes(&[9, 8, 7]);
        let bytes = w.into_bytes();

        // owned tier
        let mut r = Decoder::new(&bytes);
        assert_eq!(r.take_str().unwrap(), "mapped κ");
        let owned = Vec::<f64>::decode(&mut r).unwrap();
        let raw = <&[u8]>::decode_ref(&mut r).unwrap();
        assert_eq!(raw, &[9, 8, 7]);
        r.finish().unwrap();

        // borrowed tier over the same bytes
        let mut r = Decoder::new(&bytes);
        let s = <&str>::decode_ref(&mut r).unwrap();
        assert_eq!(s, "mapped κ");
        assert!(std::ptr::eq(s.as_bytes().as_ptr(), &bytes[8]));
        let bits = F64Bits::decode_ref(&mut r).unwrap();
        assert_eq!(bits.len(), 3);
        assert!(!bits.is_empty());
        for (i, v) in bits.iter().enumerate() {
            assert_eq!(v.to_bits(), owned[i].to_bits());
            assert_eq!(bits.get(i).to_bits(), owned[i].to_bits());
        }
        let back = bits.to_vec();
        assert_eq!(back.len(), 3);
        assert_eq!(back[1].to_bits(), (-0.0f64).to_bits());
        let _ = <&[u8]>::decode_ref(&mut r).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn f64bits_in_place_slice_requires_alignment() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&1.25f64.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(-3.5f64).to_bits().to_le_bytes());
        // force a deliberately misaligned backing buffer
        let mut shifted = vec![0u8];
        shifted.extend_from_slice(&bytes);
        let mut r = Decoder::new(&shifted[1..]);
        let bits = F64Bits::decode_ref(&mut r).unwrap();
        match bits.as_f64_slice() {
            Some(s) => {
                // alignment happened to work out — values must match
                assert_eq!(s[0], 1.25);
                assert_eq!(s[1], -3.5);
            }
            None => {
                // fallback tier still yields exact values
                assert_eq!(bits.get(0), 1.25);
                assert_eq!(bits.get(1), -3.5);
            }
        }
        // truncated runs are typed
        let mut r = Decoder::new(&bytes[..12]);
        assert!(matches!(
            F64Bits::decode_ref(&mut r),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn ownerless_decoders_never_yield_shared_views() {
        let mut w = Encoder::new();
        for v in [1.0f64, 2.0, 3.0] {
            w.put_f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(r.take_shared_f64s(3, "run").unwrap().is_none());
        // nothing consumed on the fallback signal
        assert_eq!(r.remaining(), 24);
        assert!(matches!(
            r.take_shared_f64s(4, "run"),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn owner_aware_decoder_yields_pinned_views() {
        use crate::map::SharedBytes;
        let mut w = Encoder::new();
        for v in [4.0f64, 5.0, 6.0] {
            w.put_f64(v);
        }
        let shared = SharedBytes::from_vec(w.into_bytes());
        let mut r = Decoder::over_shared(&shared);
        let view = r
            .take_shared_f64s(3, "run")
            .unwrap()
            .expect("aligned run over an owner must be zero-copy");
        assert_eq!(view.as_slice(), &[4.0, 5.0, 6.0]);
        assert_eq!(r.remaining(), 0);
        // the view pins the owner by itself
        drop(shared);
        assert_eq!(view.as_slice()[2], 6.0);
    }

    #[test]
    fn matrix_decode_is_zero_copy_over_shared_bytes() {
        use crate::map::SharedBytes;
        let m = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 + 0.5);
        let mut w = Encoder::new();
        m.encode(&mut w);
        let shared = SharedBytes::from_vec(w.into_bytes());
        let mut r = Decoder::over_shared(&shared);
        let back = Matrix::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert!(
            back.is_borrowed(),
            "16-byte header leaves the run 8-aligned"
        );
        assert_eq!(m, back);

        // a misaligned run (extra leading byte) falls back to copying,
        // with identical values
        let mut w = Encoder::new();
        w.put_u8(0);
        m.encode(&mut w);
        let shared = SharedBytes::from_vec(w.into_bytes());
        let mut r = Decoder::over_shared(&shared);
        let _ = r.take_u8().unwrap();
        let back = Matrix::decode(&mut r).unwrap();
        assert!(!back.is_borrowed());
        assert_eq!(m, back);
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut w = Encoder::new();
        w.put_usize(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        assert!(matches!(r.take_str(), Err(PersistError::Malformed(_))));
    }
}
