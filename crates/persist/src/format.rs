//! The snapshot container: magic, format version, artifact kind, section
//! table, payload, CRC-32 trailer.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MFOD"
//! 4       4     format version (u32, currently 1)
//! 8       4     artifact kind  (u32, see [`Snapshot::KIND`])
//! 12      4     section count  (u32)
//! 16      20·k  section table: k × { id: u32, offset: u64, len: u64 }
//! …       n     payload (concatenated section bodies)
//! end−4   4     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Section offsets are relative to the payload start and are validated
//! against the payload bounds before any section is handed to a decoder.
//!
//! ## Versioning policy
//!
//! The version is bumped when the container layout or any section wire
//! format changes incompatibly. Readers accept only versions
//! `<=` [`FORMAT_VERSION`] and fail on newer files with
//! [`PersistError::UnsupportedVersion`] — old binaries never misread new
//! snapshots. Additive evolution (new optional sections) does not bump
//! the version: unknown section ids are ignored by readers, and decoders
//! treat a missing optional section as its default.

use crate::error::PersistError;
use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::Result;
use std::path::Path;

/// Snapshot file magic.
pub const MAGIC: [u8; 4] = *b"MFOD";

/// Newest container version this build reads and the version it writes.
pub const FORMAT_VERSION: u32 = 1;

/// Conventional file extension for snapshot files.
pub const SNAPSHOT_EXT: &str = "mfod";

/// Section id for the single-section body written by [`to_bytes`].
pub const SECTION_BODY: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
///
/// Bitwise implementation — snapshots are model-sized (kilobytes to a few
/// megabytes), so a lookup table is not worth the code.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A typed artifact with a stable on-disk identity.
///
/// `KIND` distinguishes artifact families inside the shared container
/// (a pipeline file fed to a calibrator loader fails with
/// [`PersistError::WrongKind`] instead of garbage), and `NAME` labels the
/// artifact in diagnostics.
pub trait Snapshot: Encode + Decode {
    /// Artifact-kind tag stored in the header.
    const KIND: u32;
    /// Human-readable artifact name for error messages.
    const NAME: &'static str;
}

/// Builds a multi-section snapshot.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given artifact kind.
    pub fn new(kind: u32) -> Self {
        SnapshotWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section, encoding its body with `f`.
    pub fn section(&mut self, id: u32, f: impl FnOnce(&mut Encoder)) {
        let mut enc = Encoder::new();
        f(&mut enc);
        self.sections.push((id, enc.into_bytes()));
    }

    /// Serializes the container: header, table, payload, CRC trailer.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Encoder::new();
        out.put_bytes(&MAGIC);
        out.put_u32(FORMAT_VERSION);
        out.put_u32(self.kind);
        out.put_u32(self.sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &self.sections {
            out.put_u32(*id);
            out.put_u64(offset);
            out.put_u64(body.len() as u64);
            offset += body.len() as u64;
        }
        for (_, body) in &self.sections {
            out.put_bytes(body);
        }
        let mut bytes = out.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

/// Parsed view over a snapshot byte buffer with the header, CRC and
/// section bounds already validated.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    kind: u32,
    version: u32,
    /// `(id, body)` in file order.
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates magic, version, CRC and section bounds.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        // trailer first: without an intact CRC nothing else is trusted
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PersistError::Truncated {
                context: "snapshot header",
                needed: MAGIC.len() + 4,
                available: bytes.len(),
            });
        }
        let got: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
        if got != MAGIC {
            return Err(PersistError::BadMagic { got });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed });
        }
        let mut r = Decoder::new(&body[4..]);
        let version = r.take_u32()?;
        if version > FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                got: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = r.take_u32()?;
        let count = r.take_u32()? as usize;
        // Each table entry is 20 bytes; reject counts the buffer cannot hold.
        if count.checked_mul(20).is_none_or(|n| n > r.remaining()) {
            return Err(PersistError::Truncated {
                context: "section table",
                needed: count.saturating_mul(20),
                available: r.remaining(),
            });
        }
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let id = r.take_u32()?;
            let offset = r.take_usize()?;
            let len = r.take_usize()?;
            table.push((id, offset, len));
        }
        let payload = r.take_bytes(r.remaining(), "payload")?;
        let mut sections = Vec::with_capacity(count);
        for (id, offset, len) in table {
            let end = offset
                .checked_add(len)
                .ok_or_else(|| PersistError::Malformed(format!("section {id} bounds overflow")))?;
            if end > payload.len() {
                return Err(PersistError::Truncated {
                    context: "section body",
                    needed: end,
                    available: payload.len(),
                });
            }
            sections.push((id, &payload[offset..end]));
        }
        Ok(SnapshotReader {
            kind,
            version,
            sections,
        })
    }

    /// Artifact kind from the header.
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Container version the file was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Ids of every section present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|&(id, _)| id).collect()
    }

    /// Decoder over a required section's body.
    pub fn section(&self, id: u32) -> Result<Decoder<'a>> {
        self.sections
            .iter()
            .find(|&&(sid, _)| sid == id)
            .map(|&(_, body)| Decoder::new(body))
            .ok_or(PersistError::MissingSection { id })
    }
}

/// Encodes `value` into a complete single-section snapshot byte buffer.
pub fn to_bytes<T: Snapshot>(value: &T) -> Vec<u8> {
    let mut w = SnapshotWriter::new(T::KIND);
    w.section(SECTION_BODY, |enc| value.encode(enc));
    w.finish()
}

/// Decodes a [`to_bytes`]-shaped snapshot, validating container
/// integrity, artifact kind and exact body consumption.
pub fn from_bytes<T: Snapshot>(bytes: &[u8]) -> Result<T> {
    let reader = SnapshotReader::parse(bytes)?;
    if reader.kind() != T::KIND {
        return Err(PersistError::WrongKind {
            got: reader.kind(),
            expected: T::KIND,
        });
    }
    let mut dec = reader.section(SECTION_BODY)?;
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// Writes `bytes` to `path` atomically: the data lands in a sibling
/// temporary file first and is renamed into place, so a reader (or the
/// [`crate::registry::ModelRegistry`] directory scan) never observes a
/// half-written snapshot.
pub fn save_bytes(path: &Path, bytes: &[u8]) -> Result<()> {
    let io = |source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    };
    let tmp = path.with_extension("mfod.tmp");
    std::fs::write(&tmp, bytes).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)
}

/// Saves `value` as a snapshot file (atomic write, see [`save_bytes`]).
pub fn save<T: Snapshot>(value: &T, path: &Path) -> Result<()> {
    save_bytes(path, &to_bytes(value))
}

/// Loads a snapshot file written by [`save`].
pub fn load<T: Snapshot>(path: &Path) -> Result<T> {
    let bytes = std::fs::read(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob {
        xs: Vec<f64>,
        tag: String,
    }

    impl Encode for Blob {
        fn encode(&self, w: &mut Encoder) {
            self.xs.encode(w);
            self.tag.encode(w);
        }
    }

    impl Decode for Blob {
        fn decode(r: &mut Decoder<'_>) -> Result<Self> {
            Ok(Blob {
                xs: Vec::decode(r)?,
                tag: String::decode(r)?,
            })
        }
    }

    impl Snapshot for Blob {
        const KIND: u32 = 0xB10B;
        const NAME: &'static str = "blob";
    }

    fn blob() -> Blob {
        Blob {
            xs: vec![1.0, -0.0, f64::NAN, 2.5e-308],
            tag: "hello".into(),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_and_reencode_identical() {
        let b = blob();
        let bytes = to_bytes(&b);
        let back: Blob = from_bytes(&bytes).unwrap();
        assert_eq!(back.tag, b.tag);
        let rebits: Vec<u64> = back.xs.iter().map(|v| v.to_bits()).collect();
        let bits: Vec<u64> = b.xs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, rebits);
        assert_eq!(to_bytes(&back), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = to_bytes(&blob());
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<Blob>(&bytes),
            Err(PersistError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = to_bytes(&blob());
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // fix the CRC so the version check (not the checksum) fires
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            from_bytes::<Blob>(&bytes),
            Err(PersistError::UnsupportedVersion { got: 99, .. })
        ));
    }

    #[test]
    fn wrong_kind_rejected() {
        #[derive(Debug)]
        struct Other;
        impl Encode for Other {
            fn encode(&self, _w: &mut Encoder) {}
        }
        impl Decode for Other {
            fn decode(_r: &mut Decoder<'_>) -> Result<Self> {
                Ok(Other)
            }
        }
        impl Snapshot for Other {
            const KIND: u32 = 0x07E4;
            const NAME: &'static str = "other";
        }
        let bytes = to_bytes(&blob());
        assert!(matches!(
            from_bytes::<Other>(&bytes),
            Err(PersistError::WrongKind { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let bytes = to_bytes(&blob());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                from_bytes::<Blob>(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = to_bytes(&blob());
        for n in 0..bytes.len() {
            assert!(
                from_bytes::<Blob>(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let w = SnapshotWriter::new(Blob::KIND);
        let bytes = w.finish(); // zero sections
        let reader = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(reader.version(), FORMAT_VERSION);
        assert!(reader.section_ids().is_empty());
        assert!(matches!(
            reader.section(SECTION_BODY),
            Err(PersistError::MissingSection { id: SECTION_BODY })
        ));
    }

    #[test]
    fn unknown_extra_sections_are_ignored() {
        let b = blob();
        let mut w = SnapshotWriter::new(Blob::KIND);
        w.section(SECTION_BODY, |enc| b.encode(enc));
        w.section(0xFFFF, |enc| enc.put_u64(123)); // future addition
        let bytes = w.finish();
        let back: Blob = from_bytes(&bytes).unwrap();
        assert_eq!(back.tag, b.tag);
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed_on_io_error() {
        let dir = std::env::temp_dir().join(format!("mfod-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.mfod");
        let b = blob();
        save(&b, &path).unwrap();
        assert!(!path.with_extension("mfod.tmp").exists());
        let back: Blob = load(&path).unwrap();
        assert_eq!(back.tag, b.tag);
        let missing = dir.join("missing.mfod");
        assert!(matches!(
            load::<Blob>(&missing),
            Err(PersistError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
