//! The snapshot container: magic, format version, artifact kind, section
//! table, payload, CRC-32 trailer.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MFOD"
//! 4       4     format version (u32, currently 1)
//! 8       4     artifact kind  (u32, see [`Snapshot::KIND`])
//! 12      4     section count  (u32)
//! 16      20·k  section table: k × { id: u32, offset: u64, len: u64 }
//! …       n     payload (section bodies, each padded to an 8-aligned
//!               file offset with deterministic zero gaps)
//! end−4   4     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Section offsets are relative to the payload start and are validated
//! against the payload bounds before any section is handed to a decoder.
//! Table offsets are authoritative, so the inter-section alignment gaps
//! are invisible to readers (they are covered by the CRC); they exist so
//! `f64` runs inside a mapped file land 8-byte aligned and the zero-copy
//! decode tier ([`LazySnapshot`], [`from_shared`]) can serve matrix
//! payloads in place.
//!
//! ## Versioning policy
//!
//! The version is bumped when the container layout or any section wire
//! format changes incompatibly. Readers accept only versions
//! `<=` [`FORMAT_VERSION`] and fail on newer files with
//! [`PersistError::UnsupportedVersion`] — old binaries never misread new
//! snapshots. Additive evolution (new optional sections) does not bump
//! the version: unknown section ids are ignored by readers, and decoders
//! treat a missing optional section as its default.

use crate::error::PersistError;
use crate::map::SharedBytes;
use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::Result;
use std::any::Any;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Snapshot file magic.
pub const MAGIC: [u8; 4] = *b"MFOD";

/// Newest container version this build reads and the version it writes.
pub const FORMAT_VERSION: u32 = 1;

/// Conventional file extension for snapshot files.
pub const SNAPSHOT_EXT: &str = "mfod";

/// Section id for the single-section body written by [`to_bytes`].
pub const SECTION_BODY: u32 = 1;

/// Slice-by-16 lookup tables for [`crc32`], generated at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; table `k` maps a
/// byte to its CRC contribution when it sits `k` positions deeper in a
/// 16-byte block.
const CRC_TABLES: [[u32; 256]; 16] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// One slice-by-16 step: folds a 16-byte block into the running state.
/// The sixteen lookups have no chain between them, so the core can
/// overlap them across the block.
#[inline(always)]
fn crc32_step16(crc: u32, c: &[u8]) -> u32 {
    let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
    let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
    let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
    let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
    CRC_TABLES[15][(a & 0xFF) as usize]
        ^ CRC_TABLES[14][((a >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[13][((a >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[12][(a >> 24) as usize]
        ^ CRC_TABLES[11][(b & 0xFF) as usize]
        ^ CRC_TABLES[10][((b >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[9][((b >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[8][(b >> 24) as usize]
        ^ CRC_TABLES[7][(d & 0xFF) as usize]
        ^ CRC_TABLES[6][((d >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[5][((d >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[4][(d >> 24) as usize]
        ^ CRC_TABLES[3][(e & 0xFF) as usize]
        ^ CRC_TABLES[2][((e >> 8) & 0xFF) as usize]
        ^ CRC_TABLES[1][((e >> 16) & 0xFF) as usize]
        ^ CRC_TABLES[0][(e >> 24) as usize]
}

/// Raw state update (no init/final conditioning) over `bytes`.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(16);
    for c in chunks.by_ref() {
        crc = crc32_step16(crc, c);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

/// Multiply the GF(2) operator matrix `mat` by the bit-vector `vec`.
fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// `square = mat²` in GF(2): each column is the matrix applied to itself.
fn gf2_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_times(mat, mat[n]);
    }
}

/// CRC of the concatenation `A ‖ B` given the finalized CRCs of `A` and
/// `B` and the byte length of `B` — the classic zero-operator trick:
/// appending `len2` zero bytes to `A` is a linear operator over GF(2),
/// built by squaring the one-zero-bit matrix `log₂(len2)` times.
fn crc32_combine(mut crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320; // operator for one zero bit
    for (n, slot) in odd.iter_mut().enumerate().skip(1) {
        *slot = 1 << (n - 1);
    }
    let mut even = [0u32; 32];
    gf2_square(&mut even, &odd); // two bits
    gf2_square(&mut odd, &even); // four bits
    loop {
        gf2_square(&mut even, &odd); // first pass: one zero byte
        if len2 & 1 != 0 {
            crc1 = gf2_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_times(&odd, crc1);
        }
        len2 >>= 1;
    }
    crc1 ^ crc2
}

/// Below this length the three-stream split is not worth the two
/// zero-operator combines (~tens of µs of GF(2) matrix work).
const CRC_INTERLEAVE_MIN: usize = 1 << 18;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
///
/// The checksum is the dominant cost of opening a mapped snapshot
/// (everything else is header + section-table validation, O(sections)
/// not O(bytes)), so the hot loop is a slice-by-16 table walk, and large
/// inputs are split into three interleaved streams whose serial
/// dependency chains overlap in the pipeline, merged with the GF(2)
/// zero-operator combine.
pub fn crc32(bytes: &[u8]) -> u32 {
    if bytes.len() >= CRC_INTERLEAVE_MIN {
        let part = (bytes.len() / 3) & !15;
        let (a, rest) = bytes.split_at(part);
        let (b, rest) = rest.split_at(part);
        let (c, tail) = rest.split_at(part);
        let (mut ca, mut cb, mut cc) = (0xFFFF_FFFFu32, 0xFFFF_FFFFu32, 0xFFFF_FFFFu32);
        for ((x, y), z) in a
            .chunks_exact(16)
            .zip(b.chunks_exact(16))
            .zip(c.chunks_exact(16))
        {
            ca = crc32_step16(ca, x);
            cb = crc32_step16(cb, y);
            cc = crc32_step16(cc, z);
        }
        let merged = crc32_combine(crc32_combine(!ca, !cb, part as u64), !cc, part as u64);
        return !crc32_update(!merged, tail);
    }
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// A typed artifact with a stable on-disk identity.
///
/// `KIND` distinguishes artifact families inside the shared container
/// (a pipeline file fed to a calibrator loader fails with
/// [`PersistError::WrongKind`] instead of garbage), and `NAME` labels the
/// artifact in diagnostics.
pub trait Snapshot: Encode + Decode {
    /// Artifact-kind tag stored in the header.
    const KIND: u32;
    /// Human-readable artifact name for error messages.
    const NAME: &'static str;
}

/// Builds a multi-section snapshot.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given artifact kind.
    pub fn new(kind: u32) -> Self {
        SnapshotWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section, encoding its body with `f`.
    pub fn section(&mut self, id: u32, f: impl FnOnce(&mut Encoder)) {
        let mut enc = Encoder::new();
        f(&mut enc);
        self.sections.push((id, enc.into_bytes()));
    }

    /// Serializes the container: header, table, payload, CRC trailer.
    ///
    /// Each section body is padded to start at a **file offset that is a
    /// multiple of 8**, so that `f64` runs inside a section land 8-byte
    /// aligned in a mapped file and the zero-copy decode tier can serve
    /// them in place. The padding is deterministic zero bytes living in
    /// the gaps *between* table-addressed sections — readers never see it
    /// (table offsets are authoritative), the CRC covers it, and files
    /// remain readable by any [`FORMAT_VERSION`] 1 reader, so this is
    /// additive, not a version bump.
    pub fn finish(self) -> Vec<u8> {
        // header (16 bytes) + table (20 bytes per section) precede the payload
        let payload_base = 16 + 20 * self.sections.len();
        let mut payload: Vec<u8> = Vec::new();
        let mut entries = Vec::with_capacity(self.sections.len());
        for (id, body) in &self.sections {
            let file_offset = payload_base + payload.len();
            let pad = (8 - file_offset % 8) % 8;
            payload.resize(payload.len() + pad, 0);
            entries.push((*id, payload.len() as u64, body.len() as u64));
            payload.extend_from_slice(body);
        }
        let mut out = Encoder::new();
        out.put_bytes(&MAGIC);
        out.put_u32(FORMAT_VERSION);
        out.put_u32(self.kind);
        out.put_u32(self.sections.len() as u32);
        for (id, offset, len) in entries {
            out.put_u32(id);
            out.put_u64(offset);
            out.put_u64(len);
        }
        out.put_bytes(&payload);
        let mut bytes = out.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

/// Parsed view over a snapshot byte buffer with the header, CRC and
/// section bounds already validated.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    kind: u32,
    version: u32,
    /// `(id, body)` in file order.
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates magic, version, CRC and section bounds.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        // trailer first: without an intact CRC nothing else is trusted
        if bytes.len() < MAGIC.len() + 4 {
            return Err(PersistError::Truncated {
                context: "snapshot header",
                needed: MAGIC.len() + 4,
                available: bytes.len(),
            });
        }
        let got: [u8; 4] = bytes[..4].try_into().expect("4 bytes");
        if got != MAGIC {
            return Err(PersistError::BadMagic { got });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
        let mut computed = crc32(body);
        if mfod_faultline::should_fire(mfod_faultline::points::PERSIST_CRC) {
            // Injected CRC corruption: invert the computed checksum so an
            // otherwise valid snapshot fails the integrity gate.
            computed = !computed;
        }
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed });
        }
        let mut r = Decoder::new(&body[4..]);
        let version = r.take_u32()?;
        if version > FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                got: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = r.take_u32()?;
        let count = r.take_u32()? as usize;
        // Each table entry is 20 bytes; reject counts the buffer cannot hold.
        if count.checked_mul(20).is_none_or(|n| n > r.remaining()) {
            return Err(PersistError::Truncated {
                context: "section table",
                needed: count.saturating_mul(20),
                available: r.remaining(),
            });
        }
        let mut table = Vec::with_capacity(count);
        for _ in 0..count {
            let id = r.take_u32()?;
            let offset = r.take_usize()?;
            let len = r.take_usize()?;
            table.push((id, offset, len));
        }
        let payload = r.take_bytes(r.remaining(), "payload")?;
        let mut sections = Vec::with_capacity(count);
        for (id, offset, len) in table {
            let end = offset
                .checked_add(len)
                .ok_or_else(|| PersistError::Malformed(format!("section {id} bounds overflow")))?;
            if end > payload.len() {
                return Err(PersistError::Truncated {
                    context: "section body",
                    needed: end,
                    available: payload.len(),
                });
            }
            sections.push((id, &payload[offset..end]));
        }
        Ok(SnapshotReader {
            kind,
            version,
            sections,
        })
    }

    /// Artifact kind from the header.
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Container version the file was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Ids of every section present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|&(id, _)| id).collect()
    }

    /// Decoder over a required section's body.
    pub fn section(&self, id: u32) -> Result<Decoder<'a>> {
        self.sections
            .iter()
            .find(|&&(sid, _)| sid == id)
            .map(|&(_, body)| {
                if let Some(m) = mfod_obs::active() {
                    m.persist_sections_eager.add(1);
                }
                Decoder::new(body)
            })
            .ok_or(PersistError::MissingSection { id })
    }
}

/// A validated-once, decode-on-touch view over a snapshot container.
///
/// Opening validates magic, version, section-table bounds and the CRC
/// **once** over the whole byte slice — O(file) for the checksum scan
/// and nothing else — and after that no decoding happens until a section
/// is touched. This is the integrity contract of the lazy tier: a
/// tampered section that is *never* touched is still rejected up front
/// by the CRC gate, and a touched one fails with the same typed error
/// the eager path produces (decode failures are never cached — every
/// touch of a corrupt section re-fails identically).
///
/// Opened over a [`SharedBytes`] owner ([`LazySnapshot::open_shared`],
/// typically a mapped file), section decoders are owner-aware, so
/// `Matrix` payloads decode as zero-copy views into the map;
/// [`LazySnapshot::shared_section`] additionally hands out owner-pinned
/// section bytes for `'static` consumers ([`crate::map::LazySection`]).
///
/// [`LazySnapshot::section_value`] memoizes successful decodes, so
/// repeated touches of one section pay the decode once.
#[derive(Debug)]
pub struct LazySnapshot<'a> {
    reader: SnapshotReader<'a>,
    shared: Option<&'a SharedBytes>,
    base: usize,
    cells: Vec<OnceLock<Box<dyn Any + Send + Sync>>>,
}

impl<'a> LazySnapshot<'a> {
    /// Opens a container over caller-held bytes (CRC, magic, version and
    /// table validated now; sections decoded on touch).
    pub fn open(bytes: &'a [u8]) -> Result<Self> {
        let reader = SnapshotReader::parse(bytes)?;
        let cells = (0..reader.sections.len())
            .map(|_| OnceLock::new())
            .collect();
        Ok(LazySnapshot {
            reader,
            shared: None,
            base: bytes.as_ptr() as usize,
            cells,
        })
    }

    /// Opens a container over owner-pinned bytes (a mapped snapshot
    /// file): same validation as [`LazySnapshot::open`], plus the
    /// zero-copy decode tier for every section.
    pub fn open_shared(shared: &'a SharedBytes) -> Result<Self> {
        let reader = SnapshotReader::parse(shared.as_slice())?;
        let cells = (0..reader.sections.len())
            .map(|_| OnceLock::new())
            .collect();
        Ok(LazySnapshot {
            reader,
            shared: Some(shared),
            base: shared.as_slice().as_ptr() as usize,
            cells,
        })
    }

    /// Artifact kind from the header.
    pub fn kind(&self) -> u32 {
        self.reader.kind()
    }

    /// Container version the file was written with.
    pub fn version(&self) -> u32 {
        self.reader.version()
    }

    /// Ids of every section present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.reader.section_ids()
    }

    /// Whether a section with this id is present.
    pub fn has_section(&self, id: u32) -> bool {
        self.reader.sections.iter().any(|&(sid, _)| sid == id)
    }

    fn find(&self, id: u32) -> Result<(usize, &'a [u8])> {
        self.reader
            .sections
            .iter()
            .position(|&(sid, _)| sid == id)
            .map(|idx| (idx, self.reader.sections[idx].1))
            .ok_or(PersistError::MissingSection { id })
    }

    /// A required section's raw bytes.
    pub fn section_bytes(&self, id: u32) -> Result<&'a [u8]> {
        Ok(self.find(id)?.1)
    }

    /// Decoder over a required section's body — owner-aware (zero-copy
    /// capable) when the container was opened over [`SharedBytes`].
    pub fn section(&self, id: u32) -> Result<Decoder<'a>> {
        let (_, body) = self.find(id)?;
        Ok(match self.shared {
            Some(owner) => Decoder::with_owner(body, owner),
            None => Decoder::new(body),
        })
    }

    /// A required section's bytes as an owner-pinned [`SharedBytes`]
    /// sub-view — the handle to hand to [`crate::map::LazySection`] for
    /// `'static` first-touch decoding. Requires the container to have
    /// been opened via [`LazySnapshot::open_shared`].
    pub fn shared_section(&self, id: u32) -> Result<SharedBytes> {
        let (_, body) = self.find(id)?;
        let owner = self.shared.ok_or_else(|| {
            PersistError::Malformed("shared_section on a container opened without an owner".into())
        })?;
        let start = body.as_ptr() as usize - self.base;
        Ok(owner.slice(start..start + body.len()))
    }

    /// Decodes a required section on first touch and memoizes the
    /// result; later calls return the cached value without re-decoding.
    /// Only successes are cached: a corrupt section fails with the same
    /// typed error on every touch, exactly like the eager path.
    ///
    /// The decoder must consume the section exactly (trailing bytes are
    /// corruption). Requesting the same section as two different types
    /// is a caller bug and reported as [`PersistError::Malformed`].
    pub fn section_value<T: Decode + Send + Sync + 'static>(&self, id: u32) -> Result<&T> {
        let (idx, _) = self.find(id)?;
        if self.cells[idx].get().is_none() {
            let started = mfod_obs::active().map(|_| std::time::Instant::now());
            let mut dec = self.section(id)?;
            let value = T::decode(&mut dec)?;
            dec.finish()?;
            if let (Some(m), Some(t)) = (mfod_obs::active(), started) {
                m.persist_sections_lazy.add(1);
                m.persist_first_touch.record(t.elapsed().as_nanos() as u64);
            }
            // under a concurrent first touch, the winner's value is kept
            let _ = self.cells[idx].set(Box::new(value));
        }
        self.cells[idx]
            .get()
            .expect("cell initialized above")
            .downcast_ref::<T>()
            .ok_or_else(|| {
                PersistError::Malformed(format!("section {id} touched as two different types"))
            })
    }
}

/// Encodes `value` into a complete single-section snapshot byte buffer.
pub fn to_bytes<T: Snapshot>(value: &T) -> Vec<u8> {
    let mut w = SnapshotWriter::new(T::KIND);
    w.section(SECTION_BODY, |enc| value.encode(enc));
    w.finish()
}

/// Decodes a [`to_bytes`]-shaped snapshot, validating container
/// integrity, artifact kind and exact body consumption.
pub fn from_bytes<T: Snapshot>(bytes: &[u8]) -> Result<T> {
    let reader = SnapshotReader::parse(bytes)?;
    if reader.kind() != T::KIND {
        return Err(PersistError::WrongKind {
            got: reader.kind(),
            expected: T::KIND,
        });
    }
    let mut dec = reader.section(SECTION_BODY)?;
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// [`from_bytes`] over owner-pinned bytes: identical validation and
/// identical decoded values (bit-for-bit), but matrix payloads come back
/// as zero-copy views into the shared buffer wherever the layout's
/// 8-byte alignment allows, each view holding the owner alive. The
/// decoded value is `'static` — it owns its keep-alive handles — so it
/// can outlive both `shared` and the call stack (e.g. live inside a
/// `ModelRegistry` entry).
pub fn from_shared<T: Snapshot>(shared: &SharedBytes) -> Result<T> {
    let snap = LazySnapshot::open_shared(shared)?;
    if snap.kind() != T::KIND {
        return Err(PersistError::WrongKind {
            got: snap.kind(),
            expected: T::KIND,
        });
    }
    let mut dec = snap.section(SECTION_BODY)?;
    let value = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(value)
}

/// Loads a snapshot by memory-mapping the file ([`SharedBytes::map`])
/// and decoding through the zero-copy tier ([`from_shared`]): install
/// cost is header + table + CRC validation plus structural decode, with
/// large `f64` payloads served straight from the page cache instead of
/// copied. The mapping stays alive as long as any decoded view does.
pub fn load_mapped<T: Snapshot>(path: &Path) -> Result<T> {
    let shared = SharedBytes::map(path)?;
    from_shared(&shared)
}

/// Infix every writer-unique temp file carries between the original file
/// name and its per-writer suffix — recovery and fsck treat any sibling
/// whose name contains this marker as a stray crashed-writer temp.
pub const TMP_INFIX: &str = ".mfod-tmp-";

/// A temp path unique per writer: `<name>.mfod-tmp-<pid>-<seq>` next to
/// the final path. Two concurrent savers targeting one path each get
/// their own temp file, so neither can clobber or rename the other's
/// half-written bytes (the old fixed `.mfod.tmp` name raced).
fn unique_tmp(path: &Path) -> PathBuf {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".into());
    path.with_file_name(format!("{name}{TMP_INFIX}{}-{seq}", std::process::id()))
}

/// Opens `path`'s parent directory and fsyncs it, making a just-renamed
/// directory entry durable. A path with no parent component syncs the
/// current directory.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

/// Writes `bytes` to `path` atomically **and durably**: the data lands
/// in a writer-unique sibling temp file, is fsynced, renamed into place,
/// and the parent directory is fsynced — so a reader (or the
/// [`crate::registry::ModelRegistry`] directory scan) never observes a
/// half-written snapshot, and a SIGKILL at any step leaves either the
/// old file or the complete new one, never a torn tail at the final
/// path. Crash points: [`mfod_faultline::points::PERSIST_FSYNC`] before
/// the data is durable, [`mfod_faultline::points::PERSIST_RENAME`]
/// between durability and visibility.
pub fn save_bytes(path: &Path, bytes: &[u8]) -> Result<()> {
    let io = |source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    };
    if mfod_faultline::should_fire(mfod_faultline::points::PERSIST_TORN_WRITE) {
        // Injected torn write: a truncated file lands at the *final*
        // path, as if a crashed writer had bypassed the atomic rename.
        // Readers must reject it via the CRC/truncation gates.
        let keep = bytes.len().saturating_mul(2) / 3;
        let _ = std::fs::write(path, &bytes[..keep]);
        return Err(io(std::io::Error::other(
            "injected fault: persist.torn_write",
        )));
    }
    use std::io::Write as _;
    let tmp = unique_tmp(path);
    let mut file = std::fs::File::create(&tmp).map_err(io)?;
    file.write_all(bytes).map_err(io)?;
    if mfod_faultline::should_fire(mfod_faultline::points::PERSIST_FSYNC) {
        mfod_faultline::park_if_requested(mfod_faultline::points::PERSIST_FSYNC);
        return Err(io(std::io::Error::other("injected fault: persist.fsync")));
    }
    file.sync_all().map_err(io)?;
    drop(file);
    if mfod_faultline::should_fire(mfod_faultline::points::PERSIST_RENAME) {
        mfod_faultline::park_if_requested(mfod_faultline::points::PERSIST_RENAME);
        return Err(io(std::io::Error::other("injected fault: persist.rename")));
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    sync_parent_dir(path).map_err(io)
}

/// Saves `value` as a snapshot file (atomic write, see [`save_bytes`]).
pub fn save<T: Snapshot>(value: &T, path: &Path) -> Result<()> {
    save_bytes(path, &to_bytes(value))
}

/// Loads a snapshot file written by [`save`].
pub fn load<T: Snapshot>(path: &Path) -> Result<T> {
    let bytes = std::fs::read(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob {
        xs: Vec<f64>,
        tag: String,
    }

    impl Encode for Blob {
        fn encode(&self, w: &mut Encoder) {
            self.xs.encode(w);
            self.tag.encode(w);
        }
    }

    impl Decode for Blob {
        fn decode(r: &mut Decoder<'_>) -> Result<Self> {
            Ok(Blob {
                xs: Vec::decode(r)?,
                tag: String::decode(r)?,
            })
        }
    }

    impl Snapshot for Blob {
        const KIND: u32 = 0xB10B;
        const NAME: &'static str = "blob";
    }

    fn blob() -> Blob {
        Blob {
            xs: vec![1.0, -0.0, f64::NAN, 2.5e-308],
            tag: "hello".into(),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// The interleaved three-stream path and the serial path must agree
    /// with a byte-at-a-time reference at every structural edge: below /
    /// at / above the interleave threshold, and with tails that are not
    /// multiples of the 16-byte block or the three-way split.
    #[test]
    fn crc32_interleaved_matches_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            !crc
        }
        // deterministic pseudo-random fill, no RNG dependency
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..CRC_INTERLEAVE_MIN + 211)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        for len in [
            0,
            1,
            15,
            16,
            17,
            4096,
            CRC_INTERLEAVE_MIN - 1,
            CRC_INTERLEAVE_MIN,
            CRC_INTERLEAVE_MIN + 1,
            CRC_INTERLEAVE_MIN + 48,
            CRC_INTERLEAVE_MIN + 211,
        ] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn roundtrip_and_reencode_identical() {
        let b = blob();
        let bytes = to_bytes(&b);
        let back: Blob = from_bytes(&bytes).unwrap();
        assert_eq!(back.tag, b.tag);
        let rebits: Vec<u64> = back.xs.iter().map(|v| v.to_bits()).collect();
        let bits: Vec<u64> = b.xs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, rebits);
        assert_eq!(to_bytes(&back), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = to_bytes(&blob());
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes::<Blob>(&bytes),
            Err(PersistError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = to_bytes(&blob());
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // fix the CRC so the version check (not the checksum) fires
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            from_bytes::<Blob>(&bytes),
            Err(PersistError::UnsupportedVersion { got: 99, .. })
        ));
    }

    #[test]
    fn wrong_kind_rejected() {
        #[derive(Debug)]
        struct Other;
        impl Encode for Other {
            fn encode(&self, _w: &mut Encoder) {}
        }
        impl Decode for Other {
            fn decode(_r: &mut Decoder<'_>) -> Result<Self> {
                Ok(Other)
            }
        }
        impl Snapshot for Other {
            const KIND: u32 = 0x07E4;
            const NAME: &'static str = "other";
        }
        let bytes = to_bytes(&blob());
        assert!(matches!(
            from_bytes::<Other>(&bytes),
            Err(PersistError::WrongKind { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let bytes = to_bytes(&blob());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                from_bytes::<Blob>(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = to_bytes(&blob());
        for n in 0..bytes.len() {
            assert!(
                from_bytes::<Blob>(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let w = SnapshotWriter::new(Blob::KIND);
        let bytes = w.finish(); // zero sections
        let reader = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(reader.version(), FORMAT_VERSION);
        assert!(reader.section_ids().is_empty());
        assert!(matches!(
            reader.section(SECTION_BODY),
            Err(PersistError::MissingSection { id: SECTION_BODY })
        ));
    }

    #[test]
    fn unknown_extra_sections_are_ignored() {
        let b = blob();
        let mut w = SnapshotWriter::new(Blob::KIND);
        w.section(SECTION_BODY, |enc| b.encode(enc));
        w.section(0xFFFF, |enc| enc.put_u64(123)); // future addition
        let bytes = w.finish();
        let back: Blob = from_bytes(&bytes).unwrap();
        assert_eq!(back.tag, b.tag);
    }

    #[test]
    fn crc32_matches_bitwise_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        let mut x = 0x9E37_79B9_u64;
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let buf: Vec<u8> = (0..n)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u8
                })
                .collect();
            assert_eq!(crc32(&buf), reference(&buf), "len {n}");
        }
    }

    #[test]
    fn sections_start_at_8_aligned_file_offsets() {
        let mut w = SnapshotWriter::new(7);
        w.section(1, |enc| enc.put_u8(0xAA)); // odd length forces padding
        w.section(2, |enc| enc.put_u64(0xDEAD_BEEF));
        w.section(3, |enc| enc.put_bytes(&[1, 2, 3]));
        let bytes = w.finish();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        let payload_base = 16 + 20 * 3;
        let mut r = Decoder::new(&bytes[16..payload_base]);
        for expect_id in [1u32, 2, 3] {
            let id = r.take_u32().unwrap();
            let offset = r.take_u64().unwrap() as usize;
            let len = r.take_u64().unwrap();
            assert_eq!(id, expect_id);
            assert_eq!((payload_base + offset) % 8, 0, "section {id} misaligned");
            assert!(len > 0);
        }
        // padding is invisible to section readers
        assert_eq!(reader.section(2).unwrap().take_u64().unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn lazy_snapshot_decodes_on_touch_and_memoizes() {
        let b = blob();
        let bytes = to_bytes(&b);
        let snap = LazySnapshot::open(&bytes).unwrap();
        assert_eq!(snap.kind(), Blob::KIND);
        assert_eq!(snap.version(), FORMAT_VERSION);
        assert!(snap.has_section(SECTION_BODY));
        assert!(!snap.has_section(0xFFFF));
        assert_eq!(snap.section_ids(), vec![SECTION_BODY]);

        let first = snap.section_value::<Blob>(SECTION_BODY).unwrap();
        assert_eq!(first.tag, b.tag);
        let second = snap.section_value::<Blob>(SECTION_BODY).unwrap();
        assert!(
            std::ptr::eq(first, second),
            "second touch must return the memoized value"
        );
        // same section under a different type is a typed caller bug
        assert!(matches!(
            snap.section_value::<u64>(SECTION_BODY),
            Err(PersistError::Malformed(_))
        ));
        assert!(matches!(
            snap.section_value::<Blob>(0x7777),
            Err(PersistError::MissingSection { id: 0x7777 })
        ));
    }

    #[test]
    fn lazy_and_eager_paths_are_bit_identical() {
        let b = blob();
        let bytes = to_bytes(&b);
        let eager: Blob = from_bytes(&bytes).unwrap();
        let shared = SharedBytes::from_vec(bytes.clone());
        let lazy: Blob = from_shared(&shared).unwrap();
        let snap = LazySnapshot::open_shared(&shared).unwrap();
        let touched = snap.section_value::<Blob>(SECTION_BODY).unwrap();
        for variant in [&eager, &lazy, touched] {
            assert_eq!(variant.tag, b.tag);
            let bits: Vec<u64> = variant.xs.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = b.xs.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, want);
        }
    }

    #[test]
    fn mapped_decode_serves_matrices_zero_copy() {
        #[derive(Debug)]
        struct Weights {
            m: mfod_linalg::Matrix,
        }
        impl Encode for Weights {
            fn encode(&self, w: &mut Encoder) {
                self.m.encode(w);
            }
        }
        impl Decode for Weights {
            fn decode(r: &mut Decoder<'_>) -> Result<Self> {
                Ok(Weights {
                    m: mfod_linalg::Matrix::decode(r)?,
                })
            }
        }
        impl Snapshot for Weights {
            const KIND: u32 = 0x3333;
            const NAME: &'static str = "weights";
        }
        let w = Weights {
            m: mfod_linalg::Matrix::from_fn(16, 16, |i, j| ((i * 16 + j) as f64).sqrt()),
        };
        let dir = std::env::temp_dir().join(format!("mfod-lazy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.mfod");
        save(&w, &path).unwrap();

        let eager: Weights = load(&path).unwrap();
        assert!(!eager.m.is_borrowed());
        let mapped: Weights = load_mapped(&path).unwrap();
        assert!(
            mapped.m.is_borrowed(),
            "aligned matrix payload must be served from the map"
        );
        for (a, b) in eager.m.as_slice().iter().zip(mapped.m.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // the decoded value owns its keep-alive: reads work after the
        // mapping handle and the file are gone
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(mapped.m[(3, 5)].to_bits(), w.m[(3, 5)].to_bits());
    }

    #[test]
    fn tampering_is_caught_at_open_even_if_never_touched() {
        let mut w = SnapshotWriter::new(9);
        w.section(1, |enc| enc.put_u64(1));
        w.section(2, |enc| enc.put_u64(2));
        let mut bytes = w.finish();
        // corrupt section 2's payload only
        let n = bytes.len();
        bytes[n - 5] ^= 0xFF;
        // the CRC gate fires at open — before any section is touched
        assert!(matches!(
            LazySnapshot::open(&bytes),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn touched_corruption_fails_typed_like_the_eager_path() {
        let b = blob();
        let mut w = SnapshotWriter::new(Blob::KIND);
        // a body section that lies about its vec length
        w.section(SECTION_BODY, |enc| {
            enc.put_usize(1_000_000);
            enc.put_f64(1.0);
        });
        let bytes = w.finish();
        // both paths agree: typed truncation, no panic, repeated on every touch
        let eager_err = from_bytes::<Blob>(&bytes).unwrap_err();
        assert!(matches!(eager_err, PersistError::Truncated { .. }));
        let snap = LazySnapshot::open(&bytes).unwrap();
        for _ in 0..2 {
            let lazy_err = snap.section_value::<Blob>(SECTION_BODY).unwrap_err();
            assert!(
                matches!(lazy_err, PersistError::Truncated { .. }),
                "lazy touch must re-fail typed: {lazy_err}"
            );
        }
        drop(b);
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed_on_io_error() {
        let dir = std::env::temp_dir().join(format!("mfod-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.mfod");
        let b = blob();
        save(&b, &path).unwrap();
        // a clean save leaves no writer temp behind, under any naming scheme
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(TMP_INFIX) || n.ends_with(".tmp"))
            .collect();
        assert!(strays.is_empty(), "stray temp files after save: {strays:?}");
        let back: Blob = load(&path).unwrap();
        assert_eq!(back.tag, b.tag);
        let missing = dir.join("missing.mfod");
        assert!(matches!(
            load::<Blob>(&missing),
            Err(PersistError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_savers_to_one_path_never_clobber_each_other() {
        let dir = std::env::temp_dir().join(format!("mfod-persist-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.mfod");
        // each saver writes a distinct payload; with unique temp names no
        // writer can rename another's half-written temp into place, so the
        // final file is always one of the complete payloads
        let payloads: Vec<Vec<u8>> = (0u8..4)
            .map(|i| {
                let mut w = SnapshotWriter::new(Blob::KIND);
                w.section(SECTION_BODY, |enc| {
                    let body: Vec<f64> = (0..512).map(|j| f64::from(i) + j as f64).collect();
                    enc.put_usize(body.len());
                    for v in &body {
                        enc.put_f64(*v);
                    }
                });
                w.finish()
            })
            .collect();
        std::thread::scope(|scope| {
            for p in &payloads {
                let path = &path;
                scope.spawn(move || {
                    for _ in 0..8 {
                        save_bytes(path, p).unwrap();
                    }
                });
            }
        });
        let on_disk = std::fs::read(&path).unwrap();
        assert!(
            payloads.contains(&on_disk),
            "final file must be one complete payload, got {} bytes",
            on_disk.len()
        );
        // and the winner still parses as a valid snapshot
        SnapshotReader::parse(&on_disk).unwrap();
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(TMP_INFIX))
            .collect();
        assert!(strays.is_empty(), "stray temp files after race: {strays:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
