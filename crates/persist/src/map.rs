//! Memory-mapped snapshot bytes and the owner-pinned [`SharedBytes`]
//! buffer behind the zero-copy decode tier.
//!
//! A [`SharedBytes`] is a read-only byte view kept alive by a
//! reference-counted owner — on unix a real `mmap(2)` of the snapshot
//! file (direct `extern "C"` FFI; no registry crates are reachable in
//! this environment), elsewhere an 8-aligned heap copy of the file.
//! Sub-views ([`SharedBytes::slice`]) and decoded [`SharedF64s`] matrix
//! payloads all hold clones of the owner `Arc`, so the mapping cannot be
//! unmapped while anything still points into it: a `ModelRegistry` entry
//! whose matrices borrow the map keeps the map alive by itself.
//!
//! ## Safety argument
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: nothing in this process
//! can write through it, and writes by other processes to the underlying
//! file are not propagated into a private mapping that has already been
//! touched. Snapshot files are written atomically (temp file + rename,
//! see [`crate::format::save_bytes`]) and never modified in place, so a
//! mapped snapshot does not change or shrink under us — truncating a
//! *live* snapshot file out from under a reader is outside the format's
//! contract, exactly as it is for `std::fs::read`.
//!
//! ## Fallback behavior
//!
//! On non-unix targets (or for empty files, which `mmap` rejects),
//! [`SharedBytes::map`] falls back to reading the file into an 8-aligned
//! heap buffer via [`SharedBytes::from_vec`]. Every downstream behavior
//! is identical — the same validation, the same zero-copy `Matrix` views
//! (alignment permitting) — only the page-cache sharing between
//! processes is lost.

use crate::error::PersistError;
use crate::wire::Decoder;
use crate::Result;
use mfod_linalg::{SharedF64s, SharedOwner};
use std::ops::Range;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// A read-only byte buffer pinned by a reference-counted owner: a mapped
/// snapshot file or an aligned heap copy. Cloning and slicing are O(1)
/// and never copy the payload.
#[derive(Clone)]
pub struct SharedBytes {
    owner: SharedOwner,
    ptr: *const u8,
    len: usize,
}

// SAFETY: the view is strictly read-only, the owner is `Send + Sync`,
// and construction pins the memory at a fixed address for the owner's
// lifetime — sharing the pointer across threads is equivalent to
// sharing a `&[u8]` borrowed from the owner.
unsafe impl Send for SharedBytes {}
unsafe impl Sync for SharedBytes {}

impl SharedBytes {
    /// Maps the file at `path` read-only. Real `mmap` on unix; an
    /// aligned heap copy elsewhere (and for empty files).
    pub fn map(path: &Path) -> Result<SharedBytes> {
        let io = |source| PersistError::Io {
            path: path.to_path_buf(),
            source,
        };
        if mfod_faultline::should_fire(mfod_faultline::points::PERSIST_READ) {
            return Err(io(std::io::Error::other("injected fault: persist.read")));
        }
        #[cfg(unix)]
        {
            if mfod_faultline::should_fire(mfod_faultline::points::PERSIST_MMAP) {
                // Injected mmap failure: take the owned-read fallback the
                // non-unix tier uses; downstream behavior is identical.
                return Ok(SharedBytes::from_vec(std::fs::read(path).map_err(io)?));
            }
            let mapped = mmap_impl::MappedFile::open(path).map_err(io)?;
            match mapped {
                Some(m) => {
                    let (ptr, len) = (m.as_ptr(), m.len());
                    Ok(SharedBytes {
                        owner: Arc::new(m),
                        ptr,
                        len,
                    })
                }
                // mmap rejects zero-length mappings; an empty buffer
                // needs no owner pinning anyway
                None => Ok(SharedBytes::from_vec(Vec::new())),
            }
        }
        #[cfg(not(unix))]
        {
            Ok(SharedBytes::from_vec(std::fs::read(path).map_err(io)?))
        }
    }

    /// Wraps owned bytes, copying them into an 8-aligned buffer so the
    /// zero-copy `f64` views work exactly as they do over a mapping
    /// (which is page-aligned).
    pub fn from_vec(bytes: Vec<u8>) -> SharedBytes {
        let len = bytes.len();
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: the destination holds `words * 8 >= len` bytes and the
        // ranges cannot overlap (distinct allocations).
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr().cast::<u8>(), len);
        }
        let owner: Arc<Vec<u64>> = Arc::new(buf);
        let ptr = owner.as_ptr().cast::<u8>();
        SharedBytes { owner, ptr, len }
    }

    /// The shared bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: upheld by construction — initialized, immutable, alive
        // and pinned as long as `owner`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view over `range`, sharing the same owner (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> SharedBytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds for {} shared bytes",
            self.len
        );
        SharedBytes {
            owner: Arc::clone(&self.owner),
            // SAFETY: start <= len, so the offset stays inside (or one
            // past) the owned allocation.
            ptr: unsafe { self.ptr.add(range.start) },
            len: range.end - range.start,
        }
    }

    /// A clone of the keep-alive owner handle, for building views
    /// (e.g. [`SharedF64s`]) that must pin this memory themselves.
    pub fn owner_handle(&self) -> SharedOwner {
        Arc::clone(&self.owner)
    }

    /// A zero-copy `f64` view over `count` values starting at byte
    /// `offset`, if the platform and layout allow it: little-endian
    /// target (the wire format is LE), in-bounds, and 8-byte aligned.
    /// Returns `None` — never an error — when the caller should fall
    /// back to copying.
    pub fn f64s_at(&self, offset: usize, count: usize) -> Option<SharedF64s> {
        if cfg!(not(target_endian = "little")) {
            return None;
        }
        let bytes = count.checked_mul(8)?;
        if offset.checked_add(bytes)? > self.len {
            return None;
        }
        // SAFETY: offset is in bounds per the check above.
        let ptr = unsafe { self.ptr.add(offset) };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return None;
        }
        // SAFETY: in-bounds, aligned, initialized, read-only and pinned
        // by the owner handle passed in.
        Some(unsafe { SharedF64s::from_raw_parts(self.owner_handle(), ptr.cast::<f64>(), count) })
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBytes")
            .field("len", &self.len)
            .finish()
    }
}

/// An owner-tier lazy section: raw mapped bytes plus a memoized decoded
/// value, for `'static` consumers (registry entries, fixtures) that hold
/// sections across call stacks. The first successful [`LazySection::touch`]
/// decodes and caches; later touches return the cached value. A failed
/// decode is **not** cached: every touch of a corrupt section re-fails
/// with the same typed error the eager path produces.
#[derive(Debug)]
pub struct LazySection<T> {
    bytes: SharedBytes,
    cell: OnceLock<T>,
}

impl<T> LazySection<T> {
    /// Wraps a section's raw bytes (see
    /// [`crate::format::LazySnapshot::shared_section`]).
    pub fn new(bytes: SharedBytes) -> Self {
        LazySection {
            bytes,
            cell: OnceLock::new(),
        }
    }

    /// The raw section bytes.
    pub fn raw(&self) -> &SharedBytes {
        &self.bytes
    }

    /// The decoded value, if some touch already succeeded.
    pub fn get(&self) -> Option<&T> {
        self.cell.get()
    }

    /// Decodes on first touch via `f` (over an owner-aware decoder, so
    /// matrix payloads stay zero-copy) and memoizes the success. Under a
    /// concurrent first touch both threads decode and one result wins —
    /// decoding is pure, so this only costs duplicated work.
    pub fn touch(&self, f: impl FnOnce(&mut Decoder<'_>) -> Result<T>) -> Result<&T> {
        if let Some(v) = self.cell.get() {
            return Ok(v);
        }
        let started = mfod_obs::active().map(|_| std::time::Instant::now());
        let mut dec = Decoder::over_shared(&self.bytes);
        let v = f(&mut dec)?;
        dec.finish()?;
        if let (Some(m), Some(t)) = (mfod_obs::active(), started) {
            m.persist_sections_lazy.add(1);
            m.persist_first_touch.record(t.elapsed().as_nanos() as u64);
        }
        Ok(self.cell.get_or_init(|| v))
    }
}

#[cfg(unix)]
mod mmap_impl {
    use std::ffi::c_void;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only private mapping of a whole file, unmapped on drop.
    pub(super) struct MappedFile {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and fixed for the struct's
    // lifetime; no interior mutability.
    unsafe impl Send for MappedFile {}
    unsafe impl Sync for MappedFile {}

    impl MappedFile {
        /// Maps `path` read-only. `Ok(None)` means the file is empty
        /// (mmap rejects zero-length mappings).
        pub(super) fn open(path: &Path) -> std::io::Result<Option<MappedFile>> {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "file exceeds address space",
                )
            })?;
            if len == 0 {
                return Ok(None);
            }
            // SAFETY: a fresh anonymous-address read-only mapping of a
            // file descriptor we own for the duration of the call; the
            // kernel validates everything else and reports MAP_FAILED.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            if let Some(m) = mfod_obs::active() {
                m.persist_mapped_bytes.add(len as u64);
            }
            Ok(Some(MappedFile { ptr, len }))
        }

        pub(super) fn as_ptr(&self) -> *const u8 {
            self.ptr.cast::<u8>().cast_const()
        }

        pub(super) fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for MappedFile {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are exactly what mmap returned; the
            // mapping is unmapped at most once. Failure is unrecoverable
            // and ignorable (the address range simply stays reserved).
            unsafe {
                munmap(self.ptr, self.len);
            }
            // The gauge saturates at zero, so a release racing a
            // recorder toggle or reset cannot wrap the level.
            if let Some(m) = mfod_obs::active() {
                m.persist_mapped_bytes.sub(self.len as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_aligned_and_faithful() {
        for n in [0usize, 1, 7, 8, 9, 4096] {
            let data: Vec<u8> = (0..n).map(|i| (i * 37 % 251) as u8).collect();
            let shared = SharedBytes::from_vec(data.clone());
            assert_eq!(shared.as_slice(), &data[..]);
            assert_eq!(shared.len(), n);
            assert_eq!(shared.is_empty(), n == 0);
            if n > 0 {
                assert_eq!(shared.as_slice().as_ptr() as usize % 8, 0);
            }
        }
    }

    #[test]
    fn map_reads_real_files_and_types_missing_ones() {
        let dir = std::env::temp_dir().join(format!("mfod-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let shared = SharedBytes::map(&path).unwrap();
        assert_eq!(shared.as_slice(), &data[..]);
        assert_eq!(shared.as_slice().as_ptr() as usize % 8, 0, "page-aligned");

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(SharedBytes::map(&empty).unwrap().is_empty());

        assert!(matches!(
            SharedBytes::map(&dir.join("missing.bin")),
            Err(PersistError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slices_share_the_owner_and_nest() {
        let shared = SharedBytes::from_vec((0..=255u8).collect());
        let mid = shared.slice(16..48);
        assert_eq!(mid.len(), 32);
        assert_eq!(mid.as_slice()[0], 16);
        let inner = mid.slice(8..16);
        assert_eq!(inner.as_slice(), &(24..32).collect::<Vec<u8>>()[..]);
        drop(shared);
        drop(mid);
        // the owner Arc keeps the bytes alive through any view
        assert_eq!(inner.as_slice()[7], 31);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let shared = SharedBytes::from_vec(vec![0; 8]);
        let _ = shared.slice(4..12);
    }

    #[test]
    fn f64_views_require_alignment_and_bounds() {
        let mut bytes = Vec::new();
        for v in [1.5f64, -0.0, f64::NAN] {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let shared = SharedBytes::from_vec(bytes);
        let view = shared.f64s_at(0, 3).expect("aligned view");
        assert_eq!(view.as_slice()[0], 1.5);
        assert_eq!(view.as_slice()[1].to_bits(), (-0.0f64).to_bits());
        assert!(view.as_slice()[2].is_nan());
        // misaligned start and out-of-bounds runs fall back to None
        assert!(shared.f64s_at(4, 1).is_none());
        assert!(shared.f64s_at(0, 4).is_none());
        assert!(shared.f64s_at(usize::MAX, 1).is_none());
    }

    #[test]
    fn lazy_section_memoizes_success_and_repeats_failure() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        let section = LazySection::<u64>::new(SharedBytes::from_vec(bytes));
        assert!(section.get().is_none());
        let mut decodes = 0;
        let v = section
            .touch(|r| {
                decodes += 1;
                r.take_u64()
            })
            .unwrap();
        assert_eq!(*v, 7);
        let v = section
            .touch(|r| {
                decodes += 1;
                r.take_u64()
            })
            .unwrap();
        assert_eq!(*v, 7);
        assert_eq!(decodes, 1, "second touch must hit the memo");
        assert_eq!(section.get(), Some(&7));

        let bad = LazySection::<u64>::new(SharedBytes::from_vec(vec![1, 2, 3]));
        for _ in 0..2 {
            let err = bad.touch(|r| r.take_u64()).unwrap_err();
            assert!(matches!(err, PersistError::Truncated { .. }), "{err}");
        }
        assert!(bad.get().is_none(), "failures are never cached");
    }
}
