//! Stable 64-bit content hashing (FNV-1a) for snapshot indexing and
//! grid-identity keys.
//!
//! The hash is **not** cryptographic — it keys caches and names
//! generations, with full equality checks guarding against collisions
//! (e.g. `SelectionPlan::covers` in `mfod-fda`'s plan cache). It is
//! deterministic across platforms: all inputs are reduced to
//! little-endian bytes first.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds one `u64` as little-endian bytes.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Feeds one `usize` (widened to `u64` for platform independence).
    pub fn update_usize(&mut self, v: usize) -> &mut Self {
        self.update_u64(v as u64)
    }

    /// Feeds one `f64` as its raw bit pattern, so `-0.0` and `0.0` (and
    /// distinct NaN payloads) hash differently — hash identity matches
    /// the bit-exactness contract of the snapshot format.
    pub fn update_f64(&mut self, v: f64) -> &mut Self {
        self.update_u64(v.to_bits())
    }

    /// Feeds a slice of `f64` bit patterns.
    pub fn update_f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.update_usize(vs.len());
        for &v in vs {
            self.update_f64(v);
        }
        self
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// One-shot hash of an `f64` slice by bit pattern (length-prefixed).
pub fn hash_f64s(vs: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    h.update_f64s(vs);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // canonical FNV-1a 64 test vectors
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn f64_hashing_is_bitwise() {
        assert_ne!(hash_f64s(&[0.0]), hash_f64s(&[-0.0]));
        assert_eq!(hash_f64s(&[1.5, 2.5]), hash_f64s(&[1.5, 2.5]));
        assert_ne!(hash_f64s(&[1.5, 2.5]), hash_f64s(&[2.5, 1.5]));
        // length prefix separates [0.0] from [0.0, 0.0] even though the
        // extra element hashes the same bytes as the prefix of nothing
        assert_ne!(hash_f64s(&[0.0]), hash_f64s(&[0.0, 0.0]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
