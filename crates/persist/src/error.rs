//! Typed failure modes of the snapshot subsystem.
//!
//! Snapshot bytes are untrusted input (a serving box loads whatever lands
//! in its model directory), so every malformed input maps to a variant
//! here — decoding never panics and never allocates unbounded memory on
//! attacker-controlled lengths.

use std::fmt;
use std::path::PathBuf;

/// Errors raised while encoding, decoding or managing model snapshots.
#[derive(Debug)]
pub enum PersistError {
    /// The file does not start with the `MFOD` snapshot magic.
    BadMagic {
        /// The four bytes actually found.
        got: [u8; 4],
    },
    /// The snapshot was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// Version found in the header.
        got: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// The snapshot holds a different artifact kind than the caller
    /// requested (e.g. a calibrator file fed to the pipeline registry).
    WrongKind {
        /// Kind tag found in the header.
        got: u32,
        /// Kind tag the caller expected.
        expected: u32,
    },
    /// The buffer ended before a read completed — a truncated file or a
    /// length field pointing past the end.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum does not match the stored CRC — bit rot or a
    /// torn write.
    ChecksumMismatch {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// A tagged-union tag has no corresponding variant in this build.
    UnknownTag {
        /// Which union was being decoded.
        what: &'static str,
        /// The unrecognized tag value.
        tag: u32,
    },
    /// A section id required by the decoder is absent from the table.
    MissingSection {
        /// The absent section id.
        id: u32,
    },
    /// Structurally valid bytes that violate a documented invariant
    /// (e.g. a matrix whose data length disagrees with its shape).
    Malformed(String),
    /// The decoded snapshot could not be turned back into a live model
    /// (e.g. an unknown mapping, or parameters failing re-validation).
    Restore(String),
    /// Filesystem failure while reading or writing a snapshot.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic { got } => {
                write!(f, "not a snapshot: bad magic {got:02x?}")
            }
            PersistError::UnsupportedVersion { got, supported } => write!(
                f,
                "snapshot format version {got} is newer than the supported {supported}"
            ),
            PersistError::WrongKind { got, expected } => {
                write!(f, "snapshot holds artifact kind {got}, expected {expected}")
            }
            PersistError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot while reading {context}: needed {needed} bytes, \
                 {available} available"
            ),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag} in snapshot")
            }
            PersistError::MissingSection { id } => {
                write!(f, "snapshot is missing required section {id}")
            }
            PersistError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            PersistError::Restore(msg) => write!(f, "snapshot restore failed: {msg}"),
            PersistError::Io { path, source } => {
                write!(f, "snapshot io on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<PersistError> = vec![
            PersistError::BadMagic { got: *b"NOPE" },
            PersistError::UnsupportedVersion {
                got: 9,
                supported: 1,
            },
            PersistError::WrongKind {
                got: 2,
                expected: 1,
            },
            PersistError::Truncated {
                context: "f64",
                needed: 8,
                available: 3,
            },
            PersistError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            PersistError::UnknownTag {
                what: "detector",
                tag: 77,
            },
            PersistError::MissingSection { id: 3 },
            PersistError::Malformed("shape".into()),
            PersistError::Restore("mapping".into()),
            PersistError::Io {
                path: PathBuf::from("/tmp/x"),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            },
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
        use std::error::Error;
        assert!(cases.last().unwrap().source().is_some());
        assert!(cases[0].source().is_none());
    }
}
