//! The append-only **deployment log** (`deploy.log`) behind
//! [`crate::store::ModelStore`] — the crash-consistency source of truth.
//!
//! Every record is framed `[len: u32][crc32(payload): u32][payload]`,
//! appended with an fsync, so the log on disk is always a valid prefix
//! of what was written plus at most one torn frame at the tail. Replay
//! stops at the first frame that fails its length or CRC gate and
//! reports the torn tail's offset instead of erroring — recovery copies
//! the tail into quarantine and truncates, it never guesses at partial
//! frames.
//!
//! Record kinds mirror the promotion protocol: an [`LogRecord::Intent`]
//! lands after the snapshot file is durable, the matching
//! [`LogRecord::Commit`] makes the generation the committed truth, and
//! [`LogRecord::Rollback`] re-points the active generation without
//! touching any snapshot bytes.

use crate::error::PersistError;
use crate::format::crc32;
use crate::manifest::ManifestEntry;
use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::Result;
use std::io::Write as _;
use std::path::Path;

/// Record tag for [`LogRecord::Intent`].
const TAG_INTENT: u8 = 1;
/// Record tag for [`LogRecord::Commit`].
const TAG_COMMIT: u8 = 2;
/// Record tag for [`LogRecord::Rollback`].
const TAG_ROLLBACK: u8 = 3;

/// One deployment-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A snapshot file is durable on disk and about to become a
    /// generation; carries the full catalog entry.
    Intent(ManifestEntry),
    /// The generation named by a prior intent is now the committed,
    /// active truth.
    Commit {
        /// Generation being committed.
        generation: u64,
    },
    /// The active generation was re-pointed at a prior committed one.
    Rollback {
        /// Generation that was active before the rollback.
        from: u64,
        /// Committed generation now active.
        to: u64,
    },
}

impl Encode for LogRecord {
    fn encode(&self, w: &mut Encoder) {
        match self {
            LogRecord::Intent(entry) => {
                w.put_u8(TAG_INTENT);
                entry.encode(w);
            }
            LogRecord::Commit { generation } => {
                w.put_u8(TAG_COMMIT);
                w.put_u64(*generation);
            }
            LogRecord::Rollback { from, to } => {
                w.put_u8(TAG_ROLLBACK);
                w.put_u64(*from);
                w.put_u64(*to);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        match r.take_u8()? {
            TAG_INTENT => Ok(LogRecord::Intent(ManifestEntry::decode(r)?)),
            TAG_COMMIT => Ok(LogRecord::Commit {
                generation: r.take_u64()?,
            }),
            TAG_ROLLBACK => Ok(LogRecord::Rollback {
                from: r.take_u64()?,
                to: r.take_u64()?,
            }),
            tag => Err(PersistError::UnknownTag {
                what: "deploy log record",
                tag: u32::from(tag),
            }),
        }
    }
}

/// A torn or corrupt tail found during [`replay`]: everything from
/// `offset` on is untrusted and should be quarantined, then truncated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the last fully valid record ends.
    pub offset: u64,
    /// Number of untrusted bytes from `offset` to end of file.
    pub len: u64,
    /// What failed: a short frame header, a frame length past EOF, a
    /// CRC mismatch, or a CRC-valid payload that would not decode.
    pub reason: String,
}

/// Outcome of replaying a deployment log.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every fully valid record, in append order.
    pub records: Vec<LogRecord>,
    /// The torn tail, if the file does not end on a frame boundary.
    pub torn: Option<TornTail>,
}

/// Serializes one record into its on-disk frame.
fn frame(record: &LogRecord) -> Vec<u8> {
    let mut enc = Encoder::new();
    record.encode(&mut enc);
    let payload = enc.into_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Appends one record to the log at `path` (created if missing) and
/// fsyncs it, so a returned `Ok` means the record is durable.
///
/// Crash point [`mfod_faultline::points::MANIFEST_APPEND_TORN`] writes
/// only a durable *prefix* of the frame before failing — the exact state
/// a power cut mid-append leaves behind — which [`replay`] must detect
/// as a torn tail.
pub fn append_record(path: &Path, record: &LogRecord) -> Result<()> {
    let io = |source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    };
    let bytes = frame(record);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(io)?;
    if mfod_faultline::should_fire(mfod_faultline::points::MANIFEST_APPEND_TORN) {
        // Injected torn append: a durable partial frame lands at the
        // tail, exactly as if the writer died mid-write. Persist it
        // *before* parking so a SIGKILL freezes the authentic state.
        let keep = (bytes.len() * 2 / 3).max(1);
        let _ = file.write_all(&bytes[..keep]);
        let _ = file.sync_all();
        mfod_faultline::park_if_requested(mfod_faultline::points::MANIFEST_APPEND_TORN);
        return Err(io(std::io::Error::other(
            "injected fault: manifest.append.torn",
        )));
    }
    file.write_all(&bytes).map_err(io)?;
    file.sync_all().map_err(io)
}

/// Replays the log at `path`, returning every valid record plus the
/// torn tail, if any. A missing file is an empty log, not an error;
/// only a genuine read failure returns `Err`.
pub fn replay(path: &Path) -> Result<Replay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(source) => {
            return Err(PersistError::Io {
                path: path.to_path_buf(),
                source,
            })
        }
    };
    let mut replay = Replay::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let torn = |reason: String| TornTail {
            offset: offset as u64,
            len: (bytes.len() - offset) as u64,
            reason,
        };
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            replay.torn = Some(torn(format!("short frame header: {} bytes", rest.len())));
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(8..8 + len) else {
            replay.torn = Some(torn(format!(
                "frame length {len} past end of file ({} bytes left)",
                rest.len() - 8
            )));
            break;
        };
        let computed = crc32(payload);
        if computed != stored_crc {
            replay.torn = Some(torn(format!(
                "frame CRC mismatch: stored {stored_crc:#010X}, computed {computed:#010X}"
            )));
            break;
        }
        let mut dec = Decoder::new(payload);
        let record = match LogRecord::decode(&mut dec).and_then(|r| dec.finish().map(|()| r)) {
            Ok(r) => r,
            Err(e) => {
                replay.torn = Some(torn(format!("undecodable record: {e}")));
                break;
            }
        };
        replay.records.push(record);
        offset += 8 + len;
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(generation: u64) -> ManifestEntry {
        ManifestEntry {
            generation,
            file: format!("gen-{generation:06}.mfod"),
            kind: 1,
            content_hash: generation * 7,
            len: 100,
            config_fingerprint: 5,
            parent: generation.checked_sub(1).filter(|&p| p > 0),
            tag: "t".into(),
        }
    }

    fn tmplog(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mfod-wal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("deploy.log")
    }

    #[test]
    fn append_then_replay_roundtrips_in_order() {
        let path = tmplog("roundtrip");
        let records = vec![
            LogRecord::Intent(entry(1)),
            LogRecord::Commit { generation: 1 },
            LogRecord::Intent(entry(2)),
            LogRecord::Commit { generation: 2 },
            LogRecord::Rollback { from: 2, to: 1 },
        ];
        for r in &records {
            append_record(&path, r).unwrap();
        }
        let replay = replay(&path).unwrap();
        assert_eq!(replay.records, records);
        assert!(replay.torn.is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn missing_log_is_empty_not_an_error() {
        let replay = replay(Path::new("/nonexistent/deploy.log")).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn.is_none());
    }

    #[test]
    fn every_truncation_of_the_tail_frame_is_a_torn_tail() {
        let path = tmplog("trunc");
        append_record(&path, &LogRecord::Intent(entry(1))).unwrap();
        append_record(&path, &LogRecord::Commit { generation: 1 }).unwrap();
        let full = std::fs::read(&path).unwrap();
        let first_len = 8 + u32::from_le_bytes(full[..4].try_into().unwrap()) as usize;
        // cut anywhere strictly inside the second frame: first record
        // must survive, the rest must be reported torn, never panic
        for cut in first_len + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = replay(&path).unwrap();
            assert_eq!(replay.records, vec![LogRecord::Intent(entry(1))]);
            let torn = replay.torn.expect("torn tail");
            assert_eq!(torn.offset, first_len as u64);
            assert_eq!(torn.len, (cut - first_len) as u64);
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn every_byte_flip_in_a_frame_is_caught() {
        let path = tmplog("flip");
        append_record(&path, &LogRecord::Commit { generation: 3 }).unwrap();
        let full = std::fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            let replay = replay(&path).unwrap();
            // a flipped byte may enlarge the len field (frame past EOF),
            // break the CRC, or corrupt the payload — all are torn, and
            // the record never silently decodes to something else
            assert!(
                replay.records.is_empty(),
                "flip at {i} silently accepted: {:?}",
                replay.records
            );
            assert!(replay.torn.is_some(), "flip at {i} not reported");
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn injected_torn_append_is_durable_and_detected() {
        let _guard = mfod_faultline::serial_guard();
        let path = tmplog("inject");
        append_record(&path, &LogRecord::Intent(entry(1))).unwrap();
        mfod_faultline::install(mfod_faultline::FaultPlan::new(7).rule(
            mfod_faultline::points::MANIFEST_APPEND_TORN,
            mfod_faultline::FaultRule::once(),
        ));
        let err = append_record(&path, &LogRecord::Commit { generation: 1 }).unwrap_err();
        mfod_faultline::disarm();
        assert!(matches!(err, PersistError::Io { .. }), "{err}");
        let replay = replay(&path).unwrap();
        assert_eq!(replay.records, vec![LogRecord::Intent(entry(1))]);
        assert!(replay.torn.is_some(), "partial frame must read as torn");
        // the log is append-only: a later healthy append lands after the
        // torn bytes, so recovery must truncate the tail first. mimic it.
        let torn = replay.torn.unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..torn.offset as usize]).unwrap();
        append_record(&path, &LogRecord::Commit { generation: 1 }).unwrap();
        let healed = super::replay(&path).unwrap();
        assert_eq!(healed.records.len(), 2);
        assert!(healed.torn.is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
