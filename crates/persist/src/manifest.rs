//! The deployment **manifest**: a catalog artifact (container KIND 6)
//! naming every generation a [`crate::store::ModelStore`] has promoted.
//!
//! Each [`ManifestEntry`] records the artifact's identity — file name,
//! artifact kind, FNV-1a content hash and byte length — plus its
//! provenance: the fit-config fingerprint, the parent generation it was
//! refit from (model lineage), and a free-form tag. The manifest itself
//! names the **active** generation, so promotion and rollback are both
//! "re-point the manifest", and an auditor can answer *which model
//! scored this batch* from the registry generation alone.
//!
//! The manifest file (`store.manifest`) is a checkpoint of the
//! append-only deployment log, not the recovery source of truth: on
//! startup [`crate::store::ModelStore::open`] replays the log and
//! rewrites the checkpoint; see the module docs of [`crate::store`] for
//! the durability contract.

use crate::error::PersistError;
use crate::format::Snapshot;
use crate::wire::{Decode, Decoder, Encode, Encoder};
use crate::Result;

/// Artifact-kind tag of the manifest container (KINDs 1–5 are taken by
/// the pipeline/frozen-scorer/calibrator/ensemble/depth-baseline
/// artifacts in the workspace crates above this one).
pub const KIND_MANIFEST: u32 = 6;

/// One promoted generation: identity + provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Store generation, assigned monotonically from 1 at promotion.
    pub generation: u64,
    /// Snapshot file name relative to the store directory
    /// (e.g. `gen-000003.mfod`).
    pub file: String,
    /// Artifact KIND of the snapshot the entry points at.
    pub kind: u32,
    /// FNV-1a 64-bit hash of the complete snapshot file bytes.
    pub content_hash: u64,
    /// Byte length of the snapshot file.
    pub len: u64,
    /// Fingerprint of the fit configuration that produced the model
    /// (caller-defined; hash of the config, not of the data).
    pub config_fingerprint: u64,
    /// Generation this model was refit from, if any — the lineage link.
    pub parent: Option<u64>,
    /// Free-form label (experiment name, variant id).
    pub tag: String,
}

impl Encode for ManifestEntry {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.generation);
        w.put_str(&self.file);
        w.put_u32(self.kind);
        w.put_u64(self.content_hash);
        w.put_u64(self.len);
        w.put_u64(self.config_fingerprint);
        match self.parent {
            Some(p) => {
                w.put_bool(true);
                w.put_u64(p);
            }
            None => w.put_bool(false),
        }
        w.put_str(&self.tag);
    }
}

impl Decode for ManifestEntry {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        let generation = r.take_u64()?;
        let file = r.take_str()?;
        let kind = r.take_u32()?;
        let content_hash = r.take_u64()?;
        let len = r.take_u64()?;
        let config_fingerprint = r.take_u64()?;
        let parent = if r.take_bool()? {
            Some(r.take_u64()?)
        } else {
            None
        };
        let tag = r.take_str()?;
        Ok(ManifestEntry {
            generation,
            file,
            kind,
            content_hash,
            len,
            config_fingerprint,
            parent,
            tag,
        })
    }
}

/// Smallest possible encoded [`ManifestEntry`]: 4×u64 + u32 + bool +
/// two empty length-prefixed strings — bounds the pre-allocation of a
/// decoded entry vector against hostile length fields.
const ENTRY_MIN_BYTES: usize = 8 + 8 + 4 + 8 + 8 + 8 + 1 + 8;

/// The deployment catalog: every promoted generation plus the active one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// The committed generation the store currently serves, if any.
    pub active: Option<u64>,
    /// Promoted generations in ascending generation order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// An empty manifest (no generations, nothing active).
    pub fn new() -> Self {
        Manifest::default()
    }

    /// The entry for `generation`, if the manifest knows it.
    pub fn entry(&self, generation: u64) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.generation == generation)
    }

    /// The entry behind [`Manifest::active`], if any.
    pub fn active_entry(&self) -> Option<&ManifestEntry> {
        self.active.and_then(|g| self.entry(g))
    }

    /// The generation a fresh promotion would get: one past the highest
    /// known generation (generations start at 1).
    pub fn next_generation(&self) -> u64 {
        self.entries.iter().map(|e| e.generation).max().unwrap_or(0) + 1
    }

    /// Inserts or replaces the entry for its generation, keeping the
    /// entry list sorted by generation.
    pub fn upsert(&mut self, entry: ManifestEntry) {
        match self
            .entries
            .binary_search_by_key(&entry.generation, |e| e.generation)
        {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
    }
}

impl Encode for Manifest {
    fn encode(&self, w: &mut Encoder) {
        match self.active {
            Some(g) => {
                w.put_bool(true);
                w.put_u64(g);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.entries.len());
        for e in &self.entries {
            e.encode(w);
        }
    }
}

impl Decode for Manifest {
    fn decode(r: &mut Decoder<'_>) -> Result<Self> {
        let active = if r.take_bool()? {
            Some(r.take_u64()?)
        } else {
            None
        };
        let count = r.take_len(ENTRY_MIN_BYTES, "manifest entries")?;
        let mut entries = Vec::with_capacity(count);
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let e = ManifestEntry::decode(r)?;
            if prev.is_some_and(|p| p >= e.generation) {
                return Err(PersistError::Malformed(format!(
                    "manifest entries out of order at generation {}",
                    e.generation
                )));
            }
            prev = Some(e.generation);
            entries.push(e);
        }
        let m = Manifest { active, entries };
        if let Some(g) = m.active {
            if m.entry(g).is_none() {
                return Err(PersistError::Malformed(format!(
                    "manifest active generation {g} has no entry"
                )));
            }
        }
        Ok(m)
    }
}

impl Snapshot for Manifest {
    const KIND: u32 = KIND_MANIFEST;
    const NAME: &'static str = "manifest";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{from_bytes, to_bytes};

    fn entry(generation: u64, parent: Option<u64>) -> ManifestEntry {
        ManifestEntry {
            generation,
            file: format!("gen-{generation:06}.mfod"),
            kind: 1,
            content_hash: 0xDEAD_BEEF ^ generation,
            len: 1024 + generation,
            config_fingerprint: 42,
            parent,
            tag: format!("variant-{generation}"),
        }
    }

    fn manifest() -> Manifest {
        let mut m = Manifest::new();
        m.upsert(entry(1, None));
        m.upsert(entry(2, Some(1)));
        m.upsert(entry(3, Some(2)));
        m.active = Some(3);
        m
    }

    #[test]
    fn roundtrip_is_exact() {
        let m = manifest();
        let back: Manifest = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(back, m);
        let empty: Manifest = from_bytes(&to_bytes(&Manifest::new())).unwrap();
        assert_eq!(empty, Manifest::new());
    }

    #[test]
    fn lineage_and_lookup() {
        let m = manifest();
        assert_eq!(m.active_entry().unwrap().generation, 3);
        assert_eq!(m.entry(2).unwrap().parent, Some(1));
        assert_eq!(m.next_generation(), 4);
        assert!(m.entry(9).is_none());
        assert_eq!(Manifest::new().next_generation(), 1);
    }

    #[test]
    fn upsert_replaces_in_place_and_keeps_order() {
        let mut m = manifest();
        let mut replacement = entry(2, Some(1));
        replacement.tag = "rewritten".into();
        m.upsert(replacement);
        assert_eq!(m.entries.len(), 3);
        assert_eq!(m.entry(2).unwrap().tag, "rewritten");
        let gens: Vec<u64> = m.entries.iter().map(|e| e.generation).collect();
        assert_eq!(gens, vec![1, 2, 3]);
    }

    #[test]
    fn dangling_active_is_rejected() {
        let mut m = manifest();
        m.active = Some(9);
        let err = from_bytes::<Manifest>(&to_bytes(&m)).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
    }

    #[test]
    fn out_of_order_entries_are_rejected() {
        // encode by hand with swapped generations to bypass upsert's sort
        let mut m = Manifest::new();
        m.entries.push(entry(2, None));
        m.entries.push(entry(1, None));
        let err = from_bytes::<Manifest>(&to_bytes(&m)).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)), "{err}");
    }
}
