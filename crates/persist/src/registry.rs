//! The serving-side model registry: load snapshot files, validate them,
//! and atomically hot-swap the active model under live traffic.
//!
//! A [`ModelRegistry`] owns one *active* `Arc<T>` slot. Scoring threads
//! call [`ModelRegistry::active`] per batch — a read-lock plus an `Arc`
//! clone, never blocked by a concurrent install for longer than the swap
//! of one pointer — while an operator (or a watcher thread) installs new
//! generations with [`ModelRegistry::install`], [`load_file`] or
//! [`load_dir`]. In-flight batches keep scoring against the `Arc` they
//! already cloned; the swap is torn-batch-free by construction.
//!
//! Files are untrusted: anything malformed (bad magic, future version,
//! truncation, checksum mismatch, wrong artifact kind, failed restore
//! validation) is rejected with a typed [`PersistError`] and the active
//! model is left untouched.
//!
//! [`load_file`]: ModelRegistry::load_file
//! [`load_dir`]: ModelRegistry::load_dir

use crate::error::PersistError;
use crate::format::{from_bytes, from_shared, Snapshot, SNAPSHOT_EXT};
use crate::map::SharedBytes;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, SystemTime};

/// A live artifact that can be rebuilt from its snapshot form.
///
/// The snapshot type carries the raw decoded state; `restore` re-runs the
/// domain validation and rebuilds any derived structures (trait objects,
/// cached operators). Splitting the two keeps [`crate::wire::Decode`]
/// infallible with respect to *domain* rules — wire errors and domain
/// errors stay distinct.
pub trait Restorable: Sized {
    /// The on-disk form of this artifact.
    type Snapshot: Snapshot;

    /// Rebuilds the live artifact; the error string is wrapped in
    /// [`PersistError::Restore`].
    fn restore(snapshot: Self::Snapshot) -> std::result::Result<Self, String>;
}

/// Outcome of a [`ModelRegistry::load_dir`] sweep.
#[derive(Debug)]
pub struct DirLoadReport {
    /// The file that became active, with its new generation number.
    pub installed: Option<(PathBuf, u64)>,
    /// The newest valid file matched the currently active install, so
    /// the sweep was a no-op (generation unchanged) — the steady state
    /// of a polling watcher loop.
    pub unchanged: Option<PathBuf>,
    /// The no-op above was decided from file metadata alone (size +
    /// mtime matched the active install), without reading a single
    /// payload byte — the steady-state watcher poll is O(1) I/O, not
    /// O(file).
    pub stat_fast_path: bool,
    /// Files that failed validation, each with its typed error.
    pub rejected: Vec<(PathBuf, PersistError)>,
    /// Candidate snapshot files considered (sorted by file name).
    pub considered: usize,
}

/// Filesystems stamp mtimes with finite granularity (ns on ext4, 2 s on
/// FAT): a file rewritten within one tick of its recorded mtime can
/// carry an identical `(len, mtime)` pair with different bytes. The stat
/// fast path is therefore only trusted once the recorded mtime was at
/// least this old at the moment the identity was hash-confirmed — any
/// later rewrite must then move the mtime forward past the recorded one.
const MTIME_GRANULARITY: Duration = Duration::from_secs(2);

/// Identity of the bytes behind the active install: file size, mtime
/// (when installed from a file) and FNV-1a content hash. The size+mtime
/// pair powers the stat-only fast path in [`ModelRegistry::load_dir`];
/// the hash is the ground truth when metadata is inconclusive.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SourceId {
    len: u64,
    mtime: Option<SystemTime>,
    hash: u64,
    /// Whether the `(len, mtime)` pair may stand in for the hash on the
    /// next poll: true only when the mtime was already at least
    /// [`MTIME_GRANULARITY`] old when this identity was recorded, closing
    /// the same-tick rewrite blind spot. While false, every poll falls
    /// back to the content hash until a confirmation observes an aged
    /// mtime.
    stat_stable: bool,
}

/// Is an mtime old enough, *right now*, for a same-tick rewrite to be
/// impossible afterwards? See [`MTIME_GRANULARITY`].
fn mtime_is_settled(mtime: Option<SystemTime>) -> bool {
    mtime.is_some_and(|m| {
        SystemTime::now()
            .duration_since(m)
            .is_ok_and(|age| age >= MTIME_GRANULARITY)
    })
}

/// An atomically hot-swappable slot holding the active model generation.
pub struct ModelRegistry<T> {
    active: RwLock<Option<Arc<T>>>,
    generation: AtomicU64,
    /// Identity of the snapshot behind the active model, when it was
    /// installed from bytes or a file — lets [`ModelRegistry::load_dir`]
    /// skip re-reading (stat fast path) and re-decoding an unchanged
    /// file on every watcher poll. `None` after a direct
    /// [`ModelRegistry::install`].
    active_source: Mutex<Option<SourceId>>,
}

impl<T> std::fmt::Debug for ModelRegistry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("loaded", &self.active().is_some())
            .field("generation", &self.generation())
            .finish()
    }
}

impl<T> Default for ModelRegistry<T> {
    fn default() -> Self {
        ModelRegistry {
            active: RwLock::new(None),
            generation: AtomicU64::new(0),
            active_source: Mutex::new(None),
        }
    }
}

impl<T> ModelRegistry<T> {
    /// An empty registry (no active model yet).
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// The active model, if any — a cheap `Arc` clone; callers hold it
    /// for the duration of one batch so a concurrent swap can never tear
    /// a batch across two models.
    pub fn active(&self) -> Option<Arc<T>> {
        self.active
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Monotone counter incremented by every successful install; 0 means
    /// nothing was ever installed.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Atomically replaces the active model, returning the new generation
    /// number. The previous model is dropped when its last in-flight
    /// batch finishes.
    pub fn install(&self, model: Arc<T>) -> u64 {
        self.install_tagged(model, None)
    }

    fn install_tagged(&self, model: Arc<T>, source: Option<SourceId>) -> u64 {
        // Take both locks in a fixed order so a concurrent load_dir's
        // identity check can never observe a source newer than the slot.
        let mut slot = self.active.write().unwrap_or_else(|p| p.into_inner());
        *self.active_source.lock().unwrap_or_else(|p| p.into_inner()) = source;
        *slot = Some(model);
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(m) = mfod_obs::active() {
            m.registry_swaps.add(1);
            m.registry_generation.set(generation);
            m.win_registry_swaps.add(1);
            mfod_obs::journal::instant("registry.swap");
        }
        generation
    }
}

impl<T: Restorable> ModelRegistry<T> {
    /// Decodes, restores and installs a snapshot byte buffer.
    pub fn install_bytes(&self, bytes: &[u8]) -> Result<u64> {
        let started = mfod_obs::active().map(|_| std::time::Instant::now());
        let snapshot = from_bytes::<T::Snapshot>(bytes)?;
        let model = T::restore(snapshot).map_err(PersistError::Restore)?;
        let generation = self.install_tagged(
            Arc::new(model),
            Some(SourceId {
                len: bytes.len() as u64,
                mtime: None,
                hash: crate::hash::fnv1a64(bytes),
                stat_stable: false,
            }),
        );
        if let (Some(m), Some(t)) = (mfod_obs::active(), started) {
            m.registry_install_time
                .record(t.elapsed().as_nanos() as u64);
        }
        Ok(generation)
    }

    /// Restores and installs a model from already-mapped snapshot bytes.
    fn install_shared(&self, shared: &SharedBytes, source: SourceId) -> Result<u64> {
        let started = mfod_obs::active().map(|_| std::time::Instant::now());
        let snapshot = from_shared::<T::Snapshot>(shared)?;
        let model = T::restore(snapshot).map_err(PersistError::Restore)?;
        let generation = self.install_tagged(Arc::new(model), Some(source));
        if let (Some(m), Some(t)) = (mfod_obs::active(), started) {
            m.registry_install_time
                .record(t.elapsed().as_nanos() as u64);
        }
        Ok(generation)
    }

    /// Memory-maps one snapshot file, validates it (header + table + CRC
    /// over the mapped slice) and hot-swaps the restored model in.
    /// Matrix payloads are served zero-copy out of the mapping wherever
    /// alignment allows; the decoded model owns the keep-alive handles,
    /// so the mapping lives exactly as long as any view into it. The
    /// active model is untouched when the file fails any validation step.
    pub fn install_mapped(&self, path: &Path) -> Result<u64> {
        let meta = std::fs::metadata(path).map_err(|source| PersistError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let shared = SharedBytes::map(path)?;
        let mtime = meta.modified().ok();
        let source = SourceId {
            len: meta.len(),
            mtime,
            hash: crate::hash::fnv1a64(shared.as_slice()),
            stat_stable: mtime_is_settled(mtime),
        };
        self.install_shared(&shared, source)
    }

    /// Loads one snapshot file and hot-swaps it in — via the mapped
    /// zero-copy path ([`ModelRegistry::install_mapped`]). The active
    /// model is untouched when the file fails any validation step.
    pub fn load_file(&self, path: &Path) -> Result<u64> {
        self.install_mapped(path)
    }

    /// Scans `dir` for `*.mfod` snapshots and installs the newest valid
    /// one, where "newest" is the lexicographically greatest file name —
    /// write snapshots with sortable names (e.g. zero-padded generation
    /// numbers or RFC-3339 timestamps) to get last-writer-wins.
    ///
    /// Invalid files are skipped with their typed errors collected in the
    /// report; they never unseat the active model.
    ///
    /// Re-running `load_dir` on an interval (a polling watcher) is the
    /// intended deployment loop, so an unchanged winner is a no-op: when
    /// the newest valid file's size and mtime match the active install
    /// the sweep skips reading the file entirely (the stat fast path,
    /// [`DirLoadReport::stat_fast_path`] — steady-state polls are O(1)
    /// I/O); when metadata is inconclusive the file is mapped and its
    /// content hash compared, skipping decode/restore on a match. Either
    /// way the file lands in [`DirLoadReport::unchanged`] and the
    /// generation counter is left alone — `generation()` counts real
    /// model changes, not polls. Installs go through the mapped
    /// zero-copy path ([`ModelRegistry::install_mapped`]).
    pub fn load_dir(&self, dir: &Path) -> Result<DirLoadReport> {
        let obs = mfod_obs::active();
        let sweep_started = obs.map(|_| std::time::Instant::now());
        let report = self.load_dir_inner(dir);
        if let (Some(m), Some(t)) = (obs, sweep_started) {
            m.registry_sweeps.add(1);
            m.registry_sweep_time.record_duration(t.elapsed());
            if let Ok(report) = &report {
                m.registry_rejected.add(report.rejected.len() as u64);
                m.win_registry_rejected.add(report.rejected.len() as u64);
                m.registry_unchanged
                    .add(u64::from(report.unchanged.is_some()));
            }
        }
        report
    }

    fn load_dir_inner(&self, dir: &Path) -> Result<DirLoadReport> {
        if mfod_faultline::should_fire(mfod_faultline::points::REGISTRY_SWEEP) {
            return Err(PersistError::Io {
                path: dir.to_path_buf(),
                source: std::io::Error::other("injected fault: registry.sweep"),
            });
        }
        let entries = std::fs::read_dir(dir).map_err(|source| PersistError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT))
            .collect();
        files.sort();
        let considered = files.len();
        let mut rejected = Vec::new();
        let mut installed = None;
        let mut unchanged = None;
        let mut stat_fast_path = false;
        // newest first; the first valid file wins
        for path in files.into_iter().rev() {
            let io = |source| PersistError::Io {
                path: path.clone(),
                source,
            };
            let meta = match std::fs::metadata(&path) {
                Ok(meta) => meta,
                Err(source) => {
                    rejected.push((path.clone(), io(source)));
                    continue;
                }
            };
            let (len, mtime) = (meta.len(), meta.modified().ok());
            let active = *self.active_source.lock().unwrap_or_else(|p| p.into_inner());
            // Stat fast path: size + mtime match the active install, so
            // the poll skips reading the file entirely. Only trusted once
            // the identity is *stat-stable* — hash-confirmed at a moment
            // when the mtime was already a full granularity tick old — so
            // a same-length rewrite inside the same mtime tick (the
            // classic `(len, mtime)` blind spot) can never be skipped:
            // until stability is confirmed, every poll hashes.
            if let Some(active) = active {
                if active.stat_stable && active.mtime == mtime && active.len == len {
                    unchanged = Some(path);
                    stat_fast_path = true;
                    break;
                }
            }
            let shared = match SharedBytes::map(&path) {
                Ok(shared) => shared,
                Err(e) => {
                    rejected.push((path, e));
                    continue;
                }
            };
            // hash over the mapped slice — no buffer copy even when the
            // metadata check was inconclusive
            let hash = crate::hash::fnv1a64(shared.as_slice());
            if active.is_some_and(|a| a.hash == hash) {
                // same content behind fresh or unconfirmed metadata:
                // refresh the identity; the stat path arms once the
                // mtime has settled (confirmed by this very hash check)
                *self.active_source.lock().unwrap_or_else(|p| p.into_inner()) = Some(SourceId {
                    len,
                    mtime,
                    hash,
                    stat_stable: mtime_is_settled(mtime),
                });
                unchanged = Some(path);
                break;
            }
            let source = SourceId {
                len,
                mtime,
                hash,
                stat_stable: mtime_is_settled(mtime),
            };
            match self.install_shared(&shared, source) {
                Ok(generation) => {
                    installed = Some((path, generation));
                    break;
                }
                Err(e) => rejected.push((path, e)),
            }
        }
        Ok(DirLoadReport {
            installed,
            unchanged,
            stat_fast_path,
            rejected,
            considered,
        })
    }
}

/// Shared stop flag of a [`WatchHandle`]: the watcher thread waits on the
/// condvar between polls, so a stop request interrupts the sleep
/// immediately instead of after the current interval.
type StopSignal = Arc<(Mutex<bool>, Condvar)>;

/// Ceiling on the exponent in the watcher backoff schedule; with the
/// default factor of 2 this caps the multiplier at 2¹⁶ before
/// [`WatchConfig::max_backoff`] clamps the interval anyway.
const MAX_BACKOFF_LEVEL: u32 = 16;

/// Tuning for a [`ModelRegistry::watch_dir_with`] watcher: the healthy
/// poll interval plus the failure backoff schedule.
///
/// Consecutive failing sweeps back the interval off exponentially —
/// `interval · factorᵏ` after `k` consecutive failures, clamped to
/// `max_backoff` — with a deterministic jitter (up to +25%, drawn from a
/// xoshiro stream seeded by `jitter_seed`) so a fleet of watchers sharing
/// a seed-per-host never thunders back in lockstep. One successful sweep
/// resets the schedule to `interval`.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Healthy steady-state poll interval.
    pub interval: Duration,
    /// Backoff multiplier per consecutive failing sweep (values < 2 are
    /// treated as 2⁰ = no growth beyond the first step... clamped to ≥1).
    pub backoff_factor: u32,
    /// Upper bound on the backed-off interval.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl WatchConfig {
    /// Defaults: factor 2, `max_backoff = 64 · interval`, jitter seed 0.
    pub fn new(interval: Duration) -> Self {
        WatchConfig {
            interval,
            backoff_factor: 2,
            max_backoff: interval.saturating_mul(64),
            jitter_seed: 0,
        }
    }
}

/// The backed-off sleep before the next sweep: `interval · factor^level`
/// clamped to `max_backoff`, stretched by `jitter_frac ∈ [0, 1)` mapped
/// onto `[1.0, 1.25)`. Level 0 (healthy) is exactly `interval`, no
/// jitter. Pure, so the schedule is unit-testable without a watcher.
fn backoff_interval(config: &WatchConfig, level: u32, jitter_frac: f64) -> Duration {
    if level == 0 {
        return config.interval;
    }
    let factor =
        u64::from(config.backoff_factor.max(1)).saturating_pow(level.min(MAX_BACKOFF_LEVEL));
    let factor = u32::try_from(factor).unwrap_or(u32::MAX);
    let base = config
        .interval
        .saturating_mul(factor)
        .min(config.max_backoff);
    base.mul_f64(1.0 + 0.25 * jitter_frac.clamp(0.0, 1.0))
        .min(config.max_backoff.mul_f64(1.25))
}

/// Point-in-time health of a watcher loop, surfaced by
/// [`WatchHandle::health`]. Failing sweeps no longer vanish: the latest
/// typed error's message, the consecutive-failure streak and the current
/// backoff posture are all readable while the watcher self-heals.
#[derive(Debug, Clone)]
pub struct RegistryHealth {
    /// Did the most recent completed sweep succeed? (`true` before the
    /// first sweep completes — no evidence of trouble yet.)
    pub healthy: bool,
    /// Length of the current consecutive-failure streak (0 when healthy).
    pub consecutive_failures: u64,
    /// Current backoff exponent (0 when healthy).
    pub backoff_level: u32,
    /// The sleep chosen before the next sweep (equals the configured
    /// interval when healthy, the jittered backed-off value otherwise).
    pub next_interval: Duration,
    /// Message of the most recent sweep error, retained across recovery
    /// for post-mortems; `None` until a sweep first fails.
    pub last_error: Option<String>,
    /// Times the watcher transitioned failing → healthy.
    pub recoveries: u64,
    /// Per-path rejection reasons from the most recent *successful*
    /// sweep that rejected anything, retained until a later sweep
    /// rejects a different set — the evidence behind quarantine
    /// decisions, readable instead of vanishing with the sweep report.
    pub last_rejections: Vec<(PathBuf, String)>,
}

/// Handle to a background directory watcher started by
/// [`ModelRegistry::watch_dir`] / [`ModelRegistry::watch_dir_with`].
/// Dropping the handle (or calling [`WatchHandle::stop`]) signals the
/// watcher thread and joins it.
pub struct WatchHandle {
    stop: StopSignal,
    polls: Arc<AtomicU64>,
    health: Arc<Mutex<RegistryHealth>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WatchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchHandle")
            .field("polls", &self.polls())
            .field("running", &self.thread.is_some())
            .finish()
    }
}

impl WatchHandle {
    /// Number of completed `load_dir` sweeps so far (hash-skipped no-op
    /// polls included; read [`ModelRegistry::generation`] for how many of
    /// them actually deployed a new model).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Acquire)
    }

    /// A snapshot of the watcher's health: last sweep outcome, failure
    /// streak, backoff posture and the most recent sweep error.
    pub fn health(&self) -> RegistryHealth {
        self.health
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Signals the watcher to stop and joins its thread. Any poll already
    /// in flight finishes first; a sleeping watcher wakes immediately.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        let (flag, signal) = &*self.stop;
        *flag.lock().unwrap_or_else(|p| p.into_inner()) = true;
        signal.notify_all();
        let _ = thread.join();
    }
}

impl Drop for WatchHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<T: Restorable + Send + Sync + 'static> ModelRegistry<T> {
    /// Starts a background thread that re-runs
    /// [`ModelRegistry::load_dir`] on `dir` every `interval` — the
    /// push-free deployment loop: an operator drops a new `*.mfod`
    /// snapshot into the directory and the next poll hot-swaps it in,
    /// with no registry call from the serving path.
    ///
    /// Polling is cheap in the steady state: an unchanged newest file
    /// stat-matches the active install (size + mtime) and the sweep ends
    /// without reading a single payload byte
    /// ([`DirLoadReport::stat_fast_path`]), so watcher polls are O(1)
    /// I/O and `generation()` keeps counting real deployments, not
    /// polls. Sweep errors (e.g. the directory briefly missing during a
    /// deploy) are non-fatal — the watcher self-heals: consecutive
    /// failures back the poll interval off exponentially with
    /// deterministic jitter (see [`WatchConfig`]), one success resets the
    /// schedule, and the latest error stays readable via
    /// [`WatchHandle::health`] instead of vanishing. Malformed snapshot
    /// *files* were already non-fatal per the `load_dir` contract.
    ///
    /// The first poll runs immediately. The returned [`WatchHandle`]
    /// owns the thread: dropping it stops the watcher.
    pub fn watch_dir(self: &Arc<Self>, dir: impl Into<PathBuf>, interval: Duration) -> WatchHandle {
        self.watch_dir_with(dir, WatchConfig::new(interval))
    }

    /// [`ModelRegistry::watch_dir`] with an explicit backoff/jitter
    /// configuration.
    pub fn watch_dir_with(
        self: &Arc<Self>,
        dir: impl Into<PathBuf>,
        config: WatchConfig,
    ) -> WatchHandle {
        let dir = dir.into();
        let registry = Arc::clone(self);
        let stop: StopSignal = Arc::new((Mutex::new(false), Condvar::new()));
        let polls = Arc::new(AtomicU64::new(0));
        let health = Arc::new(Mutex::new(RegistryHealth {
            healthy: true,
            consecutive_failures: 0,
            backoff_level: 0,
            next_interval: config.interval,
            last_error: None,
            recoveries: 0,
            last_rejections: Vec::new(),
        }));
        let thread = {
            let stop = Arc::clone(&stop);
            let polls = Arc::clone(&polls);
            let health = Arc::clone(&health);
            std::thread::Builder::new()
                .name("mfod-registry-watch".into())
                .spawn(move || {
                    let (flag, signal) = &*stop;
                    let mut jitter = StdRng::seed_from_u64(config.jitter_seed);
                    let mut level: u32 = 0;
                    loop {
                        let outcome = registry.load_dir(&dir);
                        polls.fetch_add(1, Ordering::AcqRel);
                        let sleep = {
                            let mut h = health.lock().unwrap_or_else(|p| p.into_inner());
                            match outcome {
                                Ok(report) => {
                                    if !h.healthy {
                                        h.recoveries += 1;
                                    }
                                    h.healthy = true;
                                    h.consecutive_failures = 0;
                                    level = 0;
                                    if !report.rejected.is_empty() {
                                        h.last_rejections = report
                                            .rejected
                                            .iter()
                                            .map(|(p, e)| (p.clone(), e.to_string()))
                                            .collect();
                                    }
                                }
                                Err(e) => {
                                    h.healthy = false;
                                    h.consecutive_failures += 1;
                                    h.last_error = Some(e.to_string());
                                    level = (level + 1).min(MAX_BACKOFF_LEVEL);
                                }
                            }
                            // one jitter draw per *failing* sweep keeps the
                            // stream a pure function of the failure schedule
                            let frac = if level > 0 { jitter.random() } else { 0.0 };
                            let sleep = backoff_interval(&config, level, frac);
                            h.backoff_level = level;
                            h.next_interval = sleep;
                            if let Some(m) = mfod_obs::active() {
                                let previous = m.registry_backoff.get();
                                m.registry_backoff.set(u64::from(level));
                                // Journal only *transitions*, so a healthy
                                // steady-state watcher stays silent in the
                                // trace.
                                if previous != u64::from(level) {
                                    mfod_obs::journal::instant(if u64::from(level) > previous {
                                        "registry.backoff.raise"
                                    } else {
                                        "registry.backoff.clear"
                                    });
                                }
                            }
                            sleep
                        };
                        let mut stopped = flag.lock().unwrap_or_else(|p| p.into_inner());
                        while !*stopped {
                            let (guard, timeout) = signal
                                .wait_timeout(stopped, sleep)
                                .unwrap_or_else(|p| p.into_inner());
                            stopped = guard;
                            if timeout.timed_out() {
                                break;
                            }
                        }
                        if *stopped {
                            return;
                        }
                    }
                })
                .expect("failed to spawn registry watcher")
        };
        WatchHandle {
            stop,
            polls,
            health,
            thread: Some(thread),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{save, to_bytes};
    use crate::wire::{Decode, Decoder, Encode, Encoder};

    #[derive(Debug, Clone, PartialEq)]
    struct WeightsSnapshot {
        w: Vec<f64>,
    }

    impl Encode for WeightsSnapshot {
        fn encode(&self, w: &mut Encoder) {
            self.w.encode(w);
        }
    }

    impl Decode for WeightsSnapshot {
        fn decode(r: &mut Decoder<'_>) -> Result<Self> {
            Ok(WeightsSnapshot { w: Vec::decode(r)? })
        }
    }

    impl Snapshot for WeightsSnapshot {
        const KIND: u32 = 0x77;
        const NAME: &'static str = "weights";
    }

    /// A "live" model whose restore validates finiteness.
    #[derive(Debug, PartialEq)]
    struct Weights {
        w: Vec<f64>,
    }

    impl Restorable for Weights {
        type Snapshot = WeightsSnapshot;
        fn restore(s: WeightsSnapshot) -> std::result::Result<Self, String> {
            if !s.w.iter().all(|v| v.is_finite()) {
                return Err("weights must be finite".into());
            }
            Ok(Weights { w: s.w })
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mfod-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Backdates `path`'s mtime past [`MTIME_GRANULARITY`], so the next
    /// hash confirmation marks the identity stat-stable without a sleep.
    fn age_mtime(path: &Path) {
        let old = SystemTime::now() - MTIME_GRANULARITY - Duration::from_secs(3);
        std::fs::File::options()
            .write(true)
            .open(path)
            .unwrap()
            .set_modified(old)
            .unwrap();
    }

    #[test]
    fn empty_registry_has_no_active_model() {
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        assert!(reg.active().is_none());
        assert_eq!(reg.generation(), 0);
        assert!(format!("{reg:?}").contains("generation"));
    }

    #[test]
    fn install_swaps_and_bumps_generation() {
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let g1 = reg.install(Arc::new(Weights { w: vec![1.0] }));
        assert_eq!(g1, 1);
        let held = reg.active().unwrap(); // an in-flight batch's handle
        let g2 = reg.install(Arc::new(Weights { w: vec![2.0] }));
        assert_eq!(g2, 2);
        // the in-flight handle still sees the old model; new callers the new
        assert_eq!(held.w, vec![1.0]);
        assert_eq!(reg.active().unwrap().w, vec![2.0]);
    }

    #[test]
    fn install_bytes_validates_and_restores() {
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let ok = to_bytes(&WeightsSnapshot { w: vec![3.0, 4.0] });
        reg.install_bytes(&ok).unwrap();
        assert_eq!(reg.active().unwrap().w, vec![3.0, 4.0]);
        // domain validation runs on restore
        let bad = to_bytes(&WeightsSnapshot {
            w: vec![f64::INFINITY],
        });
        assert!(matches!(
            reg.install_bytes(&bad),
            Err(PersistError::Restore(_))
        ));
        // wire corruption is typed and leaves the active model alone
        let mut corrupt = ok.clone();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0xFF;
        assert!(reg.install_bytes(&corrupt).is_err());
        assert_eq!(reg.active().unwrap().w, vec![3.0, 4.0]);
        assert_eq!(reg.generation(), 1);
    }

    #[test]
    fn load_dir_prefers_newest_valid_and_reports_rejects() {
        let dir = tmpdir("dir");
        save(&WeightsSnapshot { w: vec![1.0] }, &dir.join("gen-001.mfod")).unwrap();
        save(&WeightsSnapshot { w: vec![2.0] }, &dir.join("gen-002.mfod")).unwrap();
        // newest file is corrupt: the registry must fall back to gen-002
        let mut corrupt = to_bytes(&WeightsSnapshot { w: vec![9.0] });
        let n = corrupt.len();
        corrupt[n - 1] ^= 0xAA;
        std::fs::write(dir.join("gen-003.mfod"), &corrupt).unwrap();
        // non-snapshot files are ignored entirely
        std::fs::write(dir.join("README.txt"), b"not a model").unwrap();

        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let report = reg.load_dir(&dir).unwrap();
        assert_eq!(report.considered, 3);
        assert_eq!(report.rejected.len(), 1);
        assert!(report.rejected[0].0.ends_with("gen-003.mfod"));
        let (winner, generation) = report.installed.as_ref().unwrap();
        assert!(winner.ends_with("gen-002.mfod"));
        assert_eq!(*generation, 1);
        assert_eq!(reg.active().unwrap().w, vec![2.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_skips_unchanged_active_bytes() {
        let dir = tmpdir("unchanged");
        save(&WeightsSnapshot { w: vec![1.0] }, &dir.join("gen-001.mfod")).unwrap();
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let first = reg.load_dir(&dir).unwrap();
        assert!(first.installed.is_some());
        assert!(first.unchanged.is_none());
        assert_eq!(reg.generation(), 1);
        // watcher steady state: same file, same bytes → no-op
        for _ in 0..3 {
            let poll = reg.load_dir(&dir).unwrap();
            assert!(poll.installed.is_none());
            assert!(poll
                .unchanged
                .as_ref()
                .is_some_and(|p| p.ends_with("gen-001.mfod")));
            assert_eq!(reg.generation(), 1, "polls must not bump the generation");
        }
        // a genuinely new file still swaps
        save(&WeightsSnapshot { w: vec![2.0] }, &dir.join("gen-002.mfod")).unwrap();
        let swap = reg.load_dir(&dir).unwrap();
        assert!(swap.installed.is_some());
        assert_eq!(reg.generation(), 2);
        // a direct install (no bytes) clears the hash, so the next poll
        // conservatively re-installs from disk rather than assuming
        reg.install(Arc::new(Weights { w: vec![9.0] }));
        assert_eq!(reg.generation(), 3);
        let poll = reg.load_dir(&dir).unwrap();
        assert!(poll.installed.is_some());
        assert_eq!(reg.generation(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn steady_state_polls_take_the_stat_fast_path() {
        let dir = tmpdir("statfast");
        let path = dir.join("gen-001.mfod");
        save(&WeightsSnapshot { w: vec![1.0, 2.0] }, &path).unwrap();
        // settle the mtime so the install itself confirms stat stability
        age_mtime(&path);
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let first = reg.load_dir(&dir).unwrap();
        assert!(first.installed.is_some());
        assert!(!first.stat_fast_path);
        // second poll: size + mtime match a settled identity — decided
        // without reading bytes
        let poll = reg.load_dir(&dir).unwrap();
        assert!(poll.unchanged.is_some());
        assert!(poll.stat_fast_path, "steady-state poll must be stat-only");
        // re-write identical content: mtime moves to "now", hash still
        // matches — polls keep hashing while the mtime is fresh (the
        // same-tick rewrite window), and the stat path re-arms only once
        // the identity is confirmed over a settled mtime
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        let rehash = reg.load_dir(&dir).unwrap();
        assert!(rehash.unchanged.is_some());
        assert!(
            !rehash.stat_fast_path,
            "a fresh mtime must force the hash fallback"
        );
        let fresh = reg.load_dir(&dir).unwrap();
        assert!(fresh.unchanged.is_some());
        assert!(
            !fresh.stat_fast_path,
            "the stat path must stay disarmed while the mtime is fresh"
        );
        age_mtime(&path);
        let confirm = reg.load_dir(&dir).unwrap(); // hash poll confirms over a settled mtime
        assert!(confirm.unchanged.is_some());
        let again = reg.load_dir(&dir).unwrap();
        assert!(again.unchanged.is_some());
        assert!(again.stat_fast_path, "stat path must re-arm after settling");
        assert_eq!(reg.generation(), 1, "no-op polls never bump the generation");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: the `(len, mtime)` stat fast path used to silently
    /// skip a snapshot rewritten in place with identical length inside
    /// one mtime tick. With stat stability the unsettled identity falls
    /// back to the content hash and catches the new bytes.
    #[test]
    fn same_tick_equal_length_rewrite_is_caught_by_hash_fallback() {
        let dir = tmpdir("sametick");
        let path = dir.join("gen-001.mfod");
        save(&WeightsSnapshot { w: vec![1.0, 2.0] }, &path).unwrap();
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        reg.load_dir(&dir).unwrap();
        assert_eq!(reg.active().unwrap().w, vec![1.0, 2.0]);
        let recorded_mtime = std::fs::metadata(&path).unwrap().modified().unwrap();

        // in-place rewrite: different bytes, same length, and the mtime
        // pinned to the recorded value — exactly the blind spot
        let rewritten = to_bytes(&WeightsSnapshot { w: vec![5.0, 6.0] });
        assert_eq!(
            rewritten.len() as u64,
            std::fs::metadata(&path).unwrap().len(),
            "test requires an equal-length rewrite"
        );
        std::fs::write(&path, &rewritten).unwrap();
        std::fs::File::options()
            .write(true)
            .open(&path)
            .unwrap()
            .set_modified(recorded_mtime)
            .unwrap();

        let poll = reg.load_dir(&dir).unwrap();
        assert!(!poll.stat_fast_path, "unsettled identity must hash");
        assert!(poll.installed.is_some(), "rewrite must be detected");
        assert_eq!(reg.generation(), 2);
        assert_eq!(reg.active().unwrap().w, vec![5.0, 6.0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backoff_schedule_is_exponential_capped_and_jittered() {
        let config = WatchConfig::new(Duration::from_millis(10));
        // healthy: exactly the interval, jitter ignored
        assert_eq!(backoff_interval(&config, 0, 0.9), config.interval);
        // exponential growth, deterministic at zero jitter
        assert_eq!(backoff_interval(&config, 1, 0.0), Duration::from_millis(20));
        assert_eq!(backoff_interval(&config, 3, 0.0), Duration::from_millis(80));
        // cap: 64 · interval by default
        assert_eq!(
            backoff_interval(&config, 16, 0.0),
            Duration::from_millis(640)
        );
        // jitter stretches by at most +25%
        let jittered = backoff_interval(&config, 1, 1.0);
        assert!(jittered >= Duration::from_millis(20) && jittered <= Duration::from_millis(25));
        // a huge level saturates instead of overflowing
        let wide = WatchConfig {
            backoff_factor: u32::MAX,
            ..WatchConfig::new(Duration::from_secs(1))
        };
        assert_eq!(backoff_interval(&wide, 16, 0.0), wide.max_backoff);
    }

    #[test]
    fn watcher_backs_off_on_failures_and_heals_on_recovery() {
        let dir = tmpdir("heal");
        let gone = dir.join("not-yet-there");
        let reg: Arc<ModelRegistry<Weights>> = Arc::new(ModelRegistry::new());
        let handle = reg.watch_dir_with(
            &gone,
            WatchConfig {
                interval: Duration::from_millis(2),
                backoff_factor: 2,
                max_backoff: Duration::from_millis(20),
                jitter_seed: 7,
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        // failing sweeps: unhealthy, streak grows, backoff engages, the
        // error is surfaced instead of vanishing
        while handle.health().consecutive_failures < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let sick = handle.health();
        assert!(!sick.healthy);
        assert!(sick.consecutive_failures >= 3);
        assert!(sick.backoff_level >= 3);
        assert!(sick.next_interval > Duration::from_millis(2));
        assert!(sick
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("not-yet-there")));
        // the directory appears with a valid snapshot: the watcher must
        // recover hands-free and reset the schedule
        std::fs::create_dir_all(&gone).unwrap();
        save(
            &WeightsSnapshot { w: vec![4.0] },
            &gone.join("gen-001.mfod"),
        )
        .unwrap();
        while !handle.health().healthy && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let well = handle.health();
        assert!(well.healthy, "watcher must self-heal");
        assert_eq!(well.consecutive_failures, 0);
        assert_eq!(well.backoff_level, 0);
        assert_eq!(well.next_interval, Duration::from_millis(2));
        assert!(well.recoveries >= 1);
        assert!(well.last_error.is_some(), "history survives recovery");
        while reg.generation() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reg.active().unwrap().w, vec![4.0]);
        handle.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watcher_surfaces_per_path_rejection_reasons() {
        let dir = tmpdir("rejections");
        save(&WeightsSnapshot { w: vec![1.0] }, &dir.join("gen-001.mfod")).unwrap();
        // a corrupt upload lands next to the good generation
        let mut corrupt = std::fs::read(dir.join("gen-001.mfod")).unwrap();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0xFF;
        let bad = dir.join("gen-002.mfod");
        std::fs::write(&bad, &corrupt).unwrap();

        let reg: Arc<ModelRegistry<Weights>> = Arc::new(ModelRegistry::new());
        let handle = reg.watch_dir_with(
            &dir,
            WatchConfig {
                interval: Duration::from_millis(2),
                ..WatchConfig::new(Duration::from_millis(2))
            },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while (reg.generation() < 1 || handle.health().last_rejections.is_empty())
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        // the corrupt file never unseated the good model, and its typed
        // rejection reason is on the health surface, keyed by path
        assert_eq!(reg.active().unwrap().w, vec![1.0]);
        let health = handle.health();
        let (path, why) = health
            .last_rejections
            .first()
            .expect("rejection must surface");
        assert!(path.ends_with("gen-002.mfod"), "{path:?}");
        assert!(why.contains("checksum"), "{why}");
        // once the bad file is gone, clean sweeps retain the last
        // non-empty evidence for post-mortems
        std::fs::remove_file(&bad).unwrap();
        let polls = handle.polls();
        while handle.polls() < polls + 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!handle.health().last_rejections.is_empty());
        handle.stop();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn install_mapped_swaps_from_a_mapped_file() {
        let dir = tmpdir("mapped");
        let path = dir.join("gen-001.mfod");
        save(&WeightsSnapshot { w: vec![7.0, 8.0] }, &path).unwrap();
        age_mtime(&path); // settle so the install arms the stat path
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let generation = reg.install_mapped(&path).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(reg.active().unwrap().w, vec![7.0, 8.0]);
        // the mapped install arms the stat fast path for the watcher loop
        let poll = reg.load_dir(&dir).unwrap();
        assert!(poll.unchanged.is_some());
        assert!(poll.stat_fast_path);
        // corrupt file: typed error, active model untouched
        let mut corrupt = std::fs::read(&path).unwrap();
        let n = corrupt.len();
        corrupt[n / 2] ^= 0xFF;
        let bad = dir.join("gen-002.mfod");
        std::fs::write(&bad, &corrupt).unwrap();
        assert!(reg.install_mapped(&bad).is_err());
        assert_eq!(reg.active().unwrap().w, vec![7.0, 8.0]);
        assert!(matches!(
            reg.install_mapped(&dir.join("missing.mfod")),
            Err(PersistError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_with_no_valid_files_installs_nothing() {
        let dir = tmpdir("empty");
        std::fs::write(dir.join("junk.mfod"), b"garbage").unwrap();
        let reg: ModelRegistry<Weights> = ModelRegistry::new();
        let report = reg.load_dir(&dir).unwrap();
        assert!(report.installed.is_none());
        assert_eq!(report.rejected.len(), 1);
        assert!(reg.active().is_none());
        // a missing directory is a typed io error
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(reg.load_dir(&dir), Err(PersistError::Io { .. })));
    }

    #[test]
    fn watcher_hot_swaps_new_snapshots_and_stops_cleanly() {
        let dir = tmpdir("watch");
        save(&WeightsSnapshot { w: vec![1.0] }, &dir.join("gen-001.mfod")).unwrap();
        let reg: Arc<ModelRegistry<Weights>> = Arc::new(ModelRegistry::new());
        let handle = reg.watch_dir(&dir, Duration::from_millis(5));
        // the first (immediate) poll installs generation 1
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while reg.generation() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reg.generation(), 1, "watcher must install the snapshot");
        assert_eq!(reg.active().unwrap().w, vec![1.0]);
        // steady-state polls are hash-skipped no-ops
        let polled = handle.polls();
        while handle.polls() < polled + 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reg.generation(), 1, "no-op polls must not bump generation");
        // a new snapshot lands: the next poll hot-swaps, hands-free
        save(&WeightsSnapshot { w: vec![2.0] }, &dir.join("gen-002.mfod")).unwrap();
        while reg.generation() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reg.generation(), 2, "watcher must pick up the new file");
        assert_eq!(reg.active().unwrap().w, vec![2.0]);
        assert!(format!("{handle:?}").contains("polls"));
        // stop joins; no further polls land afterwards
        handle.stop();
        let polls_after_stop = {
            // re-create a handle-less count by watching generation: a
            // third snapshot must NOT be installed once stopped
            save(&WeightsSnapshot { w: vec![3.0] }, &dir.join("gen-003.mfod")).unwrap();
            std::thread::sleep(Duration::from_millis(30));
            reg.generation()
        };
        assert_eq!(polls_after_stop, 2, "a stopped watcher must not swap");
        // a watcher on a missing directory survives and keeps polling
        let missing = dir.join("not-there");
        let lost = reg.watch_dir(&missing, Duration::from_millis(5));
        while lost.polls() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(lost.polls() >= 2, "sweep errors must not kill the watcher");
        drop(lost); // drop also stops
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_during_swaps_never_tear() {
        let reg: Arc<ModelRegistry<Weights>> = Arc::new(ModelRegistry::new());
        reg.install(Arc::new(Weights { w: vec![0.0; 4] }));
        std::thread::scope(|scope| {
            let writer = {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for g in 1..50u64 {
                        reg.install(Arc::new(Weights {
                            w: vec![g as f64; 4],
                        }));
                    }
                })
            };
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let m = reg.active().unwrap();
                        // a model is always internally consistent
                        assert!(m.w.iter().all(|&v| v == m.w[0]));
                    }
                });
            }
            writer.join().unwrap();
        });
        assert_eq!(reg.generation(), 50);
    }
}
